#pragma once

/// \file block_store.hpp
/// Writer and reader for the `.lsblk` container (storage/format.hpp).
///
/// BlockStoreWriter streams any number of columns concurrently with
/// bounded RAM: one block_bytes buffer per column; a full buffer is
/// appended to the file immediately and only its u64 offset is retained.
/// finish() flushes partial blocks and writes offset tables + directory
/// + metadata blob, then patches the header.
///
/// BlockStore mmap-free reads: read_block() pread()s one block into a
/// caller buffer. Opening is cheap — header, directory, offset tables,
/// and the metadata blob only. Each open store gets a process-unique
/// generation id, which keys the global block cache and the thread-local
/// cursors (storage/column.hpp), so a recycled address can never alias a
/// dead store's cached blocks.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/storage/format.hpp"

namespace logstruct::trace::storage {

class BlockStoreWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// I/O failure, here and in append/finish.
  BlockStoreWriter(const std::string& path, std::uint32_t block_bytes);
  ~BlockStoreWriter();

  BlockStoreWriter(const BlockStoreWriter&) = delete;
  BlockStoreWriter& operator=(const BlockStoreWriter&) = delete;

  /// Append `bytes` of raw elements to a column. Interleaving appends to
  /// different columns is the intended use.
  void append(ColumnId col, const void* data, std::size_t bytes);

  /// Record the element size of a column before its first append. Blocks
  /// carry floor(block_bytes / elem_bytes) * elem_bytes payload bytes so
  /// no element ever straddles a block boundary.
  void set_elem_bytes(ColumnId col, std::uint32_t elem_bytes);

  /// Flush partials, write tables + directory + `metadata`, patch the
  /// header, fsync-free close. No append() after finish().
  void finish(const std::string& metadata);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct ColState {
    std::vector<char> buffer;
    std::vector<std::uint64_t> block_offsets;
    std::uint64_t byte_size = 0;
    std::uint32_t elem_bytes = 0;
    std::uint32_t payload = 0;  ///< bytes per full block, elem-aligned
  };

  void flush_block(ColState& col);
  void write_raw(const void* data, std::size_t bytes);

  std::string path_;
  int fd_ = -1;
  std::uint32_t block_bytes_ = 0;
  std::uint64_t file_pos_ = 0;
  bool finished_ = false;
  ColState cols_[kNumColumns];
};

class BlockStore {
 public:
  /// Opens an existing container. Throws std::runtime_error on a missing
  /// file, bad magic, or unsupported version.
  explicit BlockStore(const std::string& path);
  ~BlockStore();

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Unlink the backing file now; the open fd keeps the data readable.
  /// Used for freeze-time spill stores so crashes never leak temp files.
  void unlink_backing_file();

  [[nodiscard]] std::uint32_t block_bytes() const { return block_bytes_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] const std::string& metadata() const { return metadata_; }

  [[nodiscard]] std::uint64_t column_bytes(ColumnId col) const {
    return cols_[static_cast<std::uint32_t>(col)].byte_size;
  }
  [[nodiscard]] std::uint32_t column_elem_bytes(ColumnId col) const {
    return cols_[static_cast<std::uint32_t>(col)].elem_bytes;
  }
  /// Payload bytes per full block of this column (element-aligned).
  [[nodiscard]] std::uint32_t column_payload(ColumnId col) const {
    return cols_[static_cast<std::uint32_t>(col)].payload;
  }

  /// Bytes in one block: column_payload() except a column's last block.
  [[nodiscard]] std::uint32_t block_size(ColumnId col,
                                         std::uint32_t block) const;
  [[nodiscard]] std::uint32_t num_blocks(ColumnId col) const {
    return static_cast<std::uint32_t>(
        cols_[static_cast<std::uint32_t>(col)].block_offsets.size());
  }

  /// pread one whole block into `out` (must hold block_size()). Throws
  /// on short reads. Thread-safe (stateless pread).
  void read_block(ColumnId col, std::uint32_t block, void* out) const;

 private:
  struct ColState {
    std::vector<std::uint64_t> block_offsets;
    std::uint64_t byte_size = 0;
    std::uint32_t elem_bytes = 0;
    std::uint32_t payload = 0;
  };

  int fd_ = -1;
  std::string path_;
  std::uint32_t block_bytes_ = 0;
  std::uint64_t generation_ = 0;
  std::string metadata_;
  ColState cols_[kNumColumns];
};

}  // namespace logstruct::trace::storage
