#pragma once

/// \file block_store.hpp
/// Writer and reader for the `.lsblk` container (storage/format.hpp).
///
/// BlockStoreWriter streams any number of columns concurrently with
/// bounded RAM: one block_bytes buffer per column; a full buffer is
/// CRC32C-summed, appended to the file immediately, and only its u64
/// offset + u32 checksum are retained. finish() makes the container
/// crash-safe: fsync the data blocks, write offset tables + CRC tables +
/// directory + metadata blob and patch the header, fsync again, then
/// write + fsync the commit footer and fsync the parent directory — a
/// valid footer proves a complete commit across power loss.
///
/// BlockStore mmap-free reads: read_block() pread()s one block into a
/// caller buffer and verifies its checksum (v2) before returning, so
/// corrupt bytes can never reach the block cache or a pinned span.
/// Opening is cheap — header, footer, directory, offset + CRC tables,
/// and the metadata blob only. All I/O goes through the process
/// IoEngine (storage/io_engine.hpp): transient faults retry with
/// backoff; terminal failures throw StorageError with full context.
///
/// Recovering opens (OpenOptions::recover) never throw on corrupt
/// *content*: problems become RecoveryReport diagnostics, unreadable or
/// checksum-failing blocks are quarantined by scan_blocks(), and
/// salvageable() says whether enough survived (header + directory +
/// metadata) to rebuild a trace from the surviving blocks.
///
/// Each open store gets a process-unique generation id, which keys the
/// global block cache and the thread-local cursors (storage/column.hpp),
/// so a recycled address can never alias a dead store's cached blocks.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/diagnostics.hpp"
#include "trace/storage/format.hpp"
#include "trace/storage/io_engine.hpp"

namespace logstruct::trace::storage {

class BlockStoreWriter {
 public:
  /// Opens `path` for writing (truncates). Throws StorageError on I/O
  /// failure, here and in append/finish. `version` selects the on-disk
  /// format; v1 (no checksums, no footer) exists for compatibility
  /// tests only.
  BlockStoreWriter(const std::string& path, std::uint32_t block_bytes,
                   std::uint32_t version = kFormatVersion);
  ~BlockStoreWriter();

  BlockStoreWriter(const BlockStoreWriter&) = delete;
  BlockStoreWriter& operator=(const BlockStoreWriter&) = delete;

  /// Append `bytes` of raw elements to a column. Interleaving appends to
  /// different columns is the intended use.
  void append(ColumnId col, const void* data, std::size_t bytes);

  /// Record the element size of a column before its first append. Blocks
  /// carry floor(block_bytes / elem_bytes) * elem_bytes payload bytes so
  /// no element ever straddles a block boundary.
  void set_elem_bytes(ColumnId col, std::uint32_t elem_bytes);

  /// Commit: flush partials, fsync data, write tables + directory +
  /// `metadata`, patch the header, fsync, write + fsync the footer,
  /// fsync the parent directory. No append() after finish().
  void finish(const std::string& metadata);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct ColState {
    std::vector<char> buffer;
    std::vector<std::uint64_t> block_offsets;
    std::vector<std::uint32_t> block_crcs;
    std::uint64_t byte_size = 0;
    std::uint32_t elem_bytes = 0;
    std::uint32_t payload = 0;  ///< bytes per full block, elem-aligned
  };

  void flush_block(ColState& col);
  void write_raw(const void* data, std::size_t bytes);
  /// write_raw that also folds the bytes into the running tail CRC.
  void write_tail(const void* data, std::size_t bytes);

  IoEngine* io_ = nullptr;
  std::string path_;
  int fd_ = -1;
  std::uint32_t block_bytes_ = 0;
  std::uint32_t version_ = kFormatVersion;
  std::uint64_t file_pos_ = 0;
  std::uint32_t tail_crc_ = 0;
  bool finished_ = false;
  ColState cols_[kNumColumns];
};

/// How BlockStore treats a damaged container.
struct OpenOptions {
  /// false (default): strict — throw StorageError at the first problem.
  /// true: recover — collect diagnostics into `report`, keep whatever
  /// parses; the caller checks salvageable() before reading.
  bool recover = false;
  /// Required in recover mode: where structural diagnostics land.
  RecoveryReport* report = nullptr;

  [[nodiscard]] static OpenOptions strict() { return {}; }
  [[nodiscard]] static OpenOptions recovering(RecoveryReport* report) {
    OpenOptions o;
    o.recover = true;
    o.report = report;
    return o;
  }
};

/// Verification status of one block (fsck surface).
enum class BlockStatus : std::uint8_t {
  Ok = 0,              ///< readable; checksum matched (or v1: no checksum)
  ChecksumAbsent = 1,  ///< readable; v1 container carries no checksums
  ChecksumMismatch = 2,
  Unreadable = 3,
};

class BlockStore {
 public:
  /// Opens an existing container. Strict mode throws StorageError on a
  /// missing file, bad magic/version, torn tail, or invalid footer;
  /// recover mode records diagnostics instead (see OpenOptions).
  explicit BlockStore(const std::string& path,
                      const OpenOptions& options = {});
  ~BlockStore();

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Unlink the backing file now; the open fd keeps the data readable.
  /// Used for freeze-time spill stores so crashes never leak temp files.
  void unlink_backing_file();

  [[nodiscard]] std::uint32_t block_bytes() const { return block_bytes_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] const std::string& metadata() const { return metadata_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// On-disk format version (1 or 2).
  [[nodiscard]] std::uint32_t version() const { return version_; }
  /// True when the container carries per-block CRC32C tables (v2).
  [[nodiscard]] bool checksums_present() const { return version_ >= 2; }
  /// True when a valid commit footer proved a complete commit (v2 only;
  /// always false for v1 files).
  [[nodiscard]] bool footer_valid() const { return footer_valid_; }
  /// Recover mode: true when header + directory + metadata parsed well
  /// enough to serve reads. Strict opens are always salvageable (they
  /// would have thrown otherwise).
  [[nodiscard]] bool salvageable() const { return salvageable_; }

  [[nodiscard]] std::uint64_t column_bytes(ColumnId col) const {
    return cols_[static_cast<std::uint32_t>(col)].byte_size;
  }
  [[nodiscard]] std::uint32_t column_elem_bytes(ColumnId col) const {
    return cols_[static_cast<std::uint32_t>(col)].elem_bytes;
  }
  /// Payload bytes per full block of this column (element-aligned).
  [[nodiscard]] std::uint32_t column_payload(ColumnId col) const {
    return cols_[static_cast<std::uint32_t>(col)].payload;
  }

  /// Bytes in one block: column_payload() except a column's last block.
  [[nodiscard]] std::uint32_t block_size(ColumnId col,
                                         std::uint32_t block) const;
  [[nodiscard]] std::uint32_t num_blocks(ColumnId col) const {
    return static_cast<std::uint32_t>(
        cols_[static_cast<std::uint32_t>(col)].block_offsets.size());
  }

  /// pread one whole block into `out` (must hold block_size()) and
  /// verify its checksum (v2; a mismatch is re-read once before it
  /// counts). Throws StorageError — BlockChecksumMismatch,
  /// BlockUnreadable, or ContainerTruncated — instead of ever returning
  /// corrupt bytes. Thread-safe (stateless pread).
  void read_block(ColumnId col, std::uint32_t block, void* out) const;

  /// Verify one block without keeping the bytes (fsck / scan surface).
  [[nodiscard]] BlockStatus verify_block(ColumnId col,
                                         std::uint32_t block) const;

  /// Verify every block of every column; quarantine the bad ones (their
  /// read_block() then fails fast without I/O) and record one Error
  /// diagnostic each into `report` (when non-null). Returns the number
  /// of quarantined blocks. Idempotent.
  std::int64_t scan_blocks(RecoveryReport* report);

  /// True when scan_blocks() quarantined this block.
  [[nodiscard]] bool is_quarantined(ColumnId col,
                                    std::uint32_t block) const {
    const auto& q = cols_[static_cast<std::uint32_t>(col)].quarantined;
    return block < q.size() && q[block] != 0;
  }
  [[nodiscard]] std::int64_t num_quarantined() const {
    return quarantined_count_;
  }

 private:
  struct ColState {
    std::vector<std::uint64_t> block_offsets;
    std::vector<std::uint32_t> block_crcs;    ///< empty for v1
    std::vector<std::uint8_t> quarantined;    ///< filled by scan_blocks
    /// Verify-once-per-open memo (v2): set after a block's checksum
    /// first verifies. The file is immutable while open, so a cache
    /// re-fault of an already-verified block serves the same committed
    /// bytes and skips the CRC — otherwise a starved cache would pay
    /// the full checksum rate on every eviction cycle. The audit
    /// surfaces (verify_block / scan_blocks) always re-check.
    std::unique_ptr<std::atomic<std::uint8_t>[]> verified;
    std::uint64_t byte_size = 0;
    std::uint32_t elem_bytes = 0;
    std::uint32_t payload = 0;
  };

  void open_impl(const OpenOptions& options);
  /// Core of read_block without the quarantine fast-fail (scan uses
  /// it). `audit` forces the checksum even when the verify-once memo
  /// says this block already passed.
  void read_block_checked(ColumnId col, std::uint32_t block, void* out,
                          bool audit = false) const;

  IoEngine* io_ = nullptr;
  int fd_ = -1;
  std::string path_;
  std::uint32_t block_bytes_ = 0;
  std::uint32_t version_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t data_limit_ = 0;  ///< every data block ends at/before this
  bool footer_valid_ = false;
  bool salvageable_ = false;
  std::int64_t quarantined_count_ = 0;
  std::string metadata_;
  ColState cols_[kNumColumns];
};

}  // namespace logstruct::trace::storage
