#pragma once

/// \file io_engine.hpp
/// The I/O seam of the blocked storage layer (docs/ROBUSTNESS.md).
///
/// Every open/pread/pwrite/fsync the `.lsblk` reader, writer, and the
/// external sorter issue goes through an IoEngine, so fault injection is
/// a link-free swap: the default engine forwards to the raw syscalls;
/// FaultyIoEngine wraps any engine and injects deterministic, seed-driven
/// faults (EINTR storms, transient EIO, ENOSPC, short reads/writes,
/// post-read bit flips, truncate-at-offset). `LOGSTRUCT_IO_FAULTS=<spec>`
/// installs a fault engine process-wide, which is how the io-faults CI
/// job runs the entire blocked-storage suite against a hostile disk.
///
/// The pread_all/pwrite_all helpers add the robustness policy on top of
/// the engine: EINTR is always resumed, transient-class errno (EIO,
/// EAGAIN) is retried with bounded exponential backoff (obs counters
/// `trace/storage/io/retries` and `trace/storage/io/gave_up`), and every
/// terminal failure throws a StorageError carrying a structured DiagCode
/// plus full context — path, column, block, offset, bytes remaining.
///
/// Fault spec grammar: comma/semicolon-separated `key=value` pairs.
///   seed=N         SplitMix64 seed; faults are a pure function of it
///   eintr=P        probability a pread/pwrite attempt returns EINTR
///   eio=P          probability of a *transient* EIO (a retry re-rolls)
///   short_read=P   probability a pread returns only part of the range
///   short_write=P  probability a pwrite accepts only part of the range
///   bitflip=P      per-64-byte-cell probability of a *persistent*
///                  post-read bit flip (keyed on file offset, so every
///                  re-read sees the same corruption — checksum fodder)
///   enospc_at=N    writes fail with ENOSPC once the engine has written
///                  N bytes total (the crash-during-freeze torture knob)
///   truncate_at=N  reads at offsets >= N hit EOF (a torn file's tail)

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "trace/diagnostics.hpp"

namespace logstruct::trace::storage {

/// A storage-layer failure with machine-readable provenance. The code is
/// one of the reader DiagCodes (IoError, ContainerTruncated,
/// BlockUnreadable, BlockChecksumMismatch, BadHeader), so recovering
/// opens can convert catches into RecoveryReport entries verbatim.
class StorageError : public std::runtime_error {
 public:
  StorageError(DiagCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] DiagCode code() const { return code_; }

 private:
  DiagCode code_;
};

/// Virtual syscall surface. Implementations must be thread-safe (the
/// block cache preads concurrently). Raw results follow POSIX
/// conventions: negative return = errno is set.
class IoEngine {
 public:
  virtual ~IoEngine() = default;

  virtual int open(const char* path, int flags, int mode) = 0;
  virtual int close(int fd) = 0;
  virtual long pread(int fd, void* buf, std::size_t bytes,
                     std::uint64_t offset) = 0;
  virtual long pwrite(int fd, const void* buf, std::size_t bytes,
                      std::uint64_t offset) = 0;
  virtual int fsync(int fd) = 0;
  /// Size of the open file, or -1 with errno set.
  virtual std::int64_t file_size(int fd) = 0;

  /// The raw-syscall engine (process singleton).
  static IoEngine& system();

  /// The engine storage uses by default: system(), unless
  /// LOGSTRUCT_IO_FAULTS installed a fault engine at first use or a test
  /// called set_current().
  static IoEngine& current();

  /// Override the process-wide engine (nullptr restores the default).
  /// Not thread-safe against in-flight I/O; tests install before work.
  static void set_current(IoEngine* engine);
};

/// Parsed LOGSTRUCT_IO_FAULTS spec (grammar in the file comment).
struct FaultSpec {
  std::uint64_t seed = 1;
  double eintr = 0.0;
  double eio = 0.0;
  double short_read = 0.0;
  double short_write = 0.0;
  double bitflip = 0.0;
  std::uint64_t enospc_at = 0;    ///< 0 = unlimited
  std::uint64_t truncate_at = 0;  ///< 0 = no truncation

  /// Parse "seed=7,eio=0.05,...". Unknown keys / garbled values throw
  /// std::invalid_argument so a typo in CI never silently disables the
  /// fault matrix.
  static FaultSpec parse(const std::string& spec);
};

/// Deterministic fault-injecting wrapper. Transient faults (eintr, eio,
/// short_*) are keyed on a monotone call counter, so a retry re-rolls;
/// persistent faults (bitflip, truncate_at, enospc_at) are keyed on file
/// offset or cumulative bytes, so retries keep failing — exactly the
/// split the retry/quarantine policy needs to be testable.
class FaultyIoEngine : public IoEngine {
 public:
  explicit FaultyIoEngine(const FaultSpec& spec,
                          IoEngine* inner = nullptr);

  int open(const char* path, int flags, int mode) override;
  int close(int fd) override;
  long pread(int fd, void* buf, std::size_t bytes,
             std::uint64_t offset) override;
  long pwrite(int fd, const void* buf, std::size_t bytes,
              std::uint64_t offset) override;
  int fsync(int fd) override;
  std::int64_t file_size(int fd) override;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  /// Faults injected so far (any class).
  [[nodiscard]] std::uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }
  /// Cumulative bytes accepted by pwrite (the enospc_at budget meter).
  [[nodiscard]] std::uint64_t bytes_written() const {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  bool roll(double p, std::uint64_t stream);
  FaultSpec spec_;
  IoEngine* inner_;
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> faults_{0};
};

/// Context threaded into the retry helpers so every failure message and
/// StorageError names exactly what was being touched.
struct IoContext {
  const char* op = "io";          ///< "read block", "write header", ...
  const std::string* path = nullptr;
  std::int32_t column = -1;       ///< ColumnId, when one applies
  std::int64_t block = -1;        ///< block index within the column
};

/// Read exactly `bytes` at `offset`, resuming EINTR and short reads,
/// retrying transient errno with exponential backoff. Throws
/// StorageError(BlockUnreadable) when retries are exhausted and
/// StorageError(ContainerTruncated) on EOF before `bytes`.
void pread_all(IoEngine& io, int fd, void* data, std::size_t bytes,
               std::uint64_t offset, const IoContext& ctx);

/// Write exactly `bytes` at `offset` under the same policy; ENOSPC is
/// terminal (StorageError(IoError)) — no backoff can conjure disk space.
void pwrite_all(IoEngine& io, int fd, const void* data, std::size_t bytes,
                std::uint64_t offset, const IoContext& ctx);

/// fsync with transient retry; terminal failure throws
/// StorageError(IoError).
void fsync_all(IoEngine& io, int fd, const IoContext& ctx);

/// fsync the directory containing `path` so a fresh file's directory
/// entry is durable (a no-op when the parent cannot be opened — some
/// filesystems refuse O_RDONLY on directories; creation is best-effort
/// there).
void fsync_parent_dir(IoEngine& io, const std::string& path);

}  // namespace logstruct::trace::storage
