#pragma once

/// \file blocked_data.hpp
/// The blocked backend of trace::Trace: one open `.lsblk` store plus a
/// typed BlockedColumn per on-disk column. Owned by the Trace through a
/// shared_ptr (copying a Trace shares the immutable backend); the store
/// is declared first so the columns it backs are torn down before it.

#include <memory>

#include "trace/event.hpp"
#include "trace/storage/column.hpp"

namespace logstruct::trace::storage {

struct BlockedTraceData {
  std::unique_ptr<BlockStore> store;

  BlockedColumn<Event> events;
  BlockedColumn<SerialBlock> blocks;
  BlockedColumn<IdleSpan> idles;
  BlockedColumn<EventId> dep_send;
  BlockedColumn<EventId> dep_recv;
  BlockedColumn<DepKind> dep_kind;
  BlockedColumn<std::int32_t> dep_begin;
  BlockedColumn<EventId> block_events;
  BlockedColumn<std::int64_t> block_ev_begin;
  BlockedColumn<EventId> chare_events;
  BlockedColumn<BlockId> chare_blocks;
  BlockedColumn<BlockId> proc_blocks;

  /// Point every column at `store` (which must already be set).
  void bind_columns() {
    const BlockStore* s = store.get();
    events = {s, ColumnId::Events};
    blocks = {s, ColumnId::Blocks};
    idles = {s, ColumnId::Idles};
    dep_send = {s, ColumnId::DepSend};
    dep_recv = {s, ColumnId::DepRecv};
    dep_kind = {s, ColumnId::DepKind};
    dep_begin = {s, ColumnId::DepBegin};
    block_events = {s, ColumnId::BlockEvents};
    block_ev_begin = {s, ColumnId::BlockEvBegin};
    chare_events = {s, ColumnId::ChareEvents};
    chare_blocks = {s, ColumnId::ChareBlocks};
    proc_blocks = {s, ColumnId::ProcBlocks};
  }
};

}  // namespace logstruct::trace::storage
