#pragma once

/// \file skew.hpp
/// Per-processor clock skew injection.
///
/// The paper (§4, Idle Experienced) notes that cross-processor time
/// comparisons are vulnerable to clock synchronization error. We inject
/// controlled skew into otherwise perfectly synchronized simulator traces to
/// test that sensitivity.

#include <span>

#include "trace/trace.hpp"

namespace logstruct::trace {

/// Returns a copy of trace with all timestamps on proc p shifted by
/// delta[p] (block begins/ends, events, idle spans). delta.size() must be
/// >= num_procs.
Trace apply_clock_skew(const Trace& trace, std::span<const TimeNs> delta);

}  // namespace logstruct::trace
