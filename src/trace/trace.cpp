#include "trace/trace.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace logstruct::trace {

std::span<const EventId> Trace::fanout(EventId send) const {
  auto it = fanout_.find(send);
  if (it == fanout_.end()) return {};
  return it->second;
}

std::vector<EventId> Trace::receivers(EventId send) const {
  std::vector<EventId> out;
  const Event& e = event(send);
  LS_CHECK(e.kind == EventKind::Send);
  if (e.partner != kNone) out.push_back(e.partner);
  auto extra = fanout(send);
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

void Trace::for_each_dependency(
    const std::function<void(EventId, EventId)>& fn) const {
  for (EventId id = 0; id < num_events(); ++id) {
    const Event& e = events_[static_cast<std::size_t>(id)];
    if (e.kind != EventKind::Send) continue;
    if (e.partner != kNone) fn(id, e.partner);
    auto it = fanout_.find(id);
    if (it != fanout_.end()) {
      for (EventId r : it->second) fn(id, r);
    }
  }
  for (const Collective& coll : collectives_) {
    for (EventId s : coll.sends) {
      for (EventId r : coll.recvs) fn(s, r);
    }
  }
}

bool Trace::is_runtime_event(EventId id) const {
  const Event& e = event(id);
  if (chares_[static_cast<std::size_t>(e.chare)].runtime) return true;
  if (e.partner != kNone) {
    const Event& p = event(e.partner);
    if (chares_[static_cast<std::size_t>(p.chare)].runtime) return true;
  }
  if (e.kind == EventKind::Send) {
    auto it = fanout_.find(id);
    if (it != fanout_.end()) {
      for (EventId r : it->second) {
        if (chares_[static_cast<std::size_t>(event(r).chare)].runtime)
          return true;
      }
    }
  }
  return false;
}

TimeNs Trace::total_idle(ProcId p) const {
  TimeNs total = 0;
  for (const IdleSpan& span : idles_) {
    if (span.proc == p) total += span.end - span.begin;
  }
  return total;
}

TimeNs Trace::end_time() const {
  TimeNs t = 0;
  for (const SerialBlock& b : blocks_) t = std::max(t, b.end);
  for (const IdleSpan& s : idles_) t = std::max(t, s.end);
  return t;
}

void Trace::freeze() {
  chare_blocks_.assign(chares_.size(), {});
  proc_blocks_.assign(static_cast<std::size_t>(num_procs_), {});
  chare_events_.assign(chares_.size(), {});

  for (BlockId b = 0; b < num_blocks(); ++b) {
    const SerialBlock& blk = blocks_[static_cast<std::size_t>(b)];
    chare_blocks_[static_cast<std::size_t>(blk.chare)].push_back(b);
    if (blk.proc >= 0 && blk.proc < num_procs_)
      proc_blocks_[static_cast<std::size_t>(blk.proc)].push_back(b);
  }
  auto by_begin = [this](BlockId a, BlockId b) {
    const SerialBlock& ba = blocks_[static_cast<std::size_t>(a)];
    const SerialBlock& bb = blocks_[static_cast<std::size_t>(b)];
    if (ba.begin != bb.begin) return ba.begin < bb.begin;
    return a < b;
  };
  for (auto& list : chare_blocks_) std::sort(list.begin(), list.end(), by_begin);
  for (auto& list : proc_blocks_) std::sort(list.begin(), list.end(), by_begin);

  for (EventId e = 0; e < num_events(); ++e)
    chare_events_[static_cast<std::size_t>(
                      events_[static_cast<std::size_t>(e)].chare)]
        .push_back(e);
  auto by_time = [this](EventId a, EventId b) {
    const Event& ea = events_[static_cast<std::size_t>(a)];
    const Event& eb = events_[static_cast<std::size_t>(b)];
    if (ea.time != eb.time) return ea.time < eb.time;
    return a < b;
  };
  for (auto& list : chare_events_) std::sort(list.begin(), list.end(), by_time);

  // Events inside each block must be in time order for the pipeline.
  for (auto& blk : blocks_) {
    std::sort(blk.events.begin(), blk.events.end(), by_time);
  }
}

}  // namespace logstruct::trace
