#include "trace/trace.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::trace {

std::span<const EventId> Trace::fanout(EventId send) const {
  auto it = fanout_.find(send);
  if (it == fanout_.end()) return {};
  return it->second;
}

std::span<const EventId> Trace::receivers(EventId send) const {
  const Event& e = event(send);
  LS_CHECK(e.kind == EventKind::Send);
  auto lo = static_cast<std::size_t>(dep_begin_[static_cast<std::size_t>(send)]);
  auto hi =
      static_cast<std::size_t>(dep_begin_[static_cast<std::size_t>(send) + 1]);
  return std::span<const EventId>(dep_recv_).subspan(lo, hi - lo);
}

bool Trace::is_runtime_event(EventId id) const {
  const Event& e = event(id);
  if (chares_[static_cast<std::size_t>(e.chare)].runtime) return true;
  if (e.partner != kNone) {
    const Event& p = event(e.partner);
    if (chares_[static_cast<std::size_t>(p.chare)].runtime) return true;
  }
  if (e.kind == EventKind::Send) {
    for (EventId r : receivers(id)) {
      if (chares_[static_cast<std::size_t>(event(r).chare)].runtime)
        return true;
    }
  }
  return false;
}

TimeNs Trace::total_idle(ProcId p) const {
  TimeNs total = 0;
  for (const IdleSpan& span : idles_) {
    if (span.proc == p) total += span.end - span.begin;
  }
  return total;
}

std::int32_t Trace::num_degraded_chares() const {
  std::int32_t n = 0;
  for (std::uint8_t d : degraded_chare_) n += d != 0;
  return n;
}

TimeNs Trace::end_time() const {
  TimeNs t = 0;
  for (const SerialBlock& b : blocks_) t = std::max(t, b.end);
  for (const IdleSpan& s : idles_) t = std::max(t, s.end);
  return t;
}

void Trace::freeze(int threads) {
  threads = util::resolve_threads(threads);
  chare_blocks_.assign(chares_.size(), {});
  proc_blocks_.assign(static_cast<std::size_t>(num_procs_), {});
  chare_events_.assign(chares_.size(), {});

  for (BlockId b = 0; b < num_blocks(); ++b) {
    const SerialBlock& blk = blocks_[static_cast<std::size_t>(b)];
    chare_blocks_[static_cast<std::size_t>(blk.chare)].push_back(b);
    if (blk.proc >= 0 && blk.proc < num_procs_)
      proc_blocks_[static_cast<std::size_t>(blk.proc)].push_back(b);
  }
  auto by_begin = [this](BlockId a, BlockId b) {
    const SerialBlock& ba = blocks_[static_cast<std::size_t>(a)];
    const SerialBlock& bb = blocks_[static_cast<std::size_t>(b)];
    if (ba.begin != bb.begin) return ba.begin < bb.begin;
    return a < b;
  };
  // Each list sorts independently (total-order comparators), so the sort
  // sweeps fan out per list with bit-identical results.
  util::parallel_for(
      threads, static_cast<std::int64_t>(chare_blocks_.size()),
      [&](std::int64_t c) {
        auto& list = chare_blocks_[static_cast<std::size_t>(c)];
        std::sort(list.begin(), list.end(), by_begin);
      });
  util::parallel_for(
      threads, static_cast<std::int64_t>(proc_blocks_.size()),
      [&](std::int64_t p) {
        auto& list = proc_blocks_[static_cast<std::size_t>(p)];
        std::sort(list.begin(), list.end(), by_begin);
      });

  for (EventId e = 0; e < num_events(); ++e)
    chare_events_[static_cast<std::size_t>(
                      events_[static_cast<std::size_t>(e)].chare)]
        .push_back(e);
  auto by_time = [this](EventId a, EventId b) {
    const Event& ea = events_[static_cast<std::size_t>(a)];
    const Event& eb = events_[static_cast<std::size_t>(b)];
    if (ea.time != eb.time) return ea.time < eb.time;
    return a < b;
  };
  util::parallel_for(
      threads, static_cast<std::int64_t>(chare_events_.size()),
      [&](std::int64_t c) {
        auto& list = chare_events_[static_cast<std::size_t>(c)];
        std::sort(list.begin(), list.end(), by_time);
      });

  // Events inside each block must be in time order for the pipeline.
  util::parallel_for(threads, static_cast<std::int64_t>(blocks_.size()),
                     [&](std::int64_t b) {
                       auto& blk = blocks_[static_cast<std::size_t>(b)];
                       std::sort(blk.events.begin(), blk.events.end(),
                                 by_time);
                     });

  // Flat dependency table. The p2p prefix is emitted in send-id order
  // (partner first, then fanout receivers), matching the historical
  // for_each_dependency enumeration order exactly; dep_begin_ indexes it
  // CSR-style so receivers() is a span lookup. Collective cross-product
  // rows follow.
  // Two-pass build so the p2p prefix fills in parallel: count each send's
  // rows (parallel, index-owned), prefix-sum into dep_begin_ (serial),
  // then write every send's rows at its deterministic offset (parallel).
  // The row order per send — partner first, then fanout receivers —
  // matches the historical for_each_dependency enumeration exactly.
  dep_begin_.assign(events_.size() + 1, 0);
  util::parallel_for(threads, num_events(), [&](std::int64_t id) {
    const Event& e = events_[static_cast<std::size_t>(id)];
    if (e.kind != EventKind::Send) return;
    std::int32_t rows = e.partner != kNone ? 1 : 0;
    auto it = fanout_.find(static_cast<EventId>(id));
    if (it != fanout_.end())
      rows += static_cast<std::int32_t>(it->second.size());
    dep_begin_[static_cast<std::size_t>(id) + 1] = rows;
  });
  for (std::size_t i = 1; i <= events_.size(); ++i)
    dep_begin_[i] += dep_begin_[i - 1];

  std::int64_t coll_rows = 0;
  for (const Collective& coll : collectives_)
    coll_rows += static_cast<std::int64_t>(coll.sends.size()) *
                 static_cast<std::int64_t>(coll.recvs.size());
  const auto p2p_rows =
      static_cast<std::int64_t>(dep_begin_[events_.size()]);
  dep_send_.assign(static_cast<std::size_t>(p2p_rows + coll_rows), 0);
  dep_recv_.assign(static_cast<std::size_t>(p2p_rows + coll_rows), 0);
  dep_kind_.assign(static_cast<std::size_t>(p2p_rows + coll_rows),
                   DepKind::Match);
  util::parallel_for(threads, num_events(), [&](std::int64_t id) {
    const Event& e = events_[static_cast<std::size_t>(id)];
    if (e.kind != EventKind::Send) return;
    auto at = static_cast<std::size_t>(
        dep_begin_[static_cast<std::size_t>(id)]);
    auto put = [&](EventId r, DepKind k) {
      dep_send_[at] = static_cast<EventId>(id);
      dep_recv_[at] = r;
      dep_kind_[at] = k;
      ++at;
    };
    if (e.partner != kNone) put(e.partner, DepKind::Match);
    auto it = fanout_.find(static_cast<EventId>(id));
    if (it != fanout_.end()) {
      for (EventId r : it->second) put(r, DepKind::Fanout);
    }
  });
  // Collective cross-product rows follow the CSR prefix; serial, they
  // are a small tail.
  auto at = static_cast<std::size_t>(p2p_rows);
  for (const Collective& coll : collectives_) {
    for (EventId s : coll.sends) {
      for (EventId r : coll.recvs) {
        dep_send_[at] = s;
        dep_recv_[at] = r;
        dep_kind_[at] = DepKind::Collective;
        ++at;
      }
    }
  }

  // Memory accounting for the frozen table: the dominant per-trace
  // allocation after events themselves. A gauge (not a counter) because
  // re-freezing a bigger trace should report the new footprint.
  OBS_GAUGE_SET(
      "trace/dep_table_bytes",
      static_cast<std::int64_t>(
          dep_send_.capacity() * sizeof(EventId) +
          dep_recv_.capacity() * sizeof(EventId) +
          dep_kind_.capacity() * sizeof(DepKind) +
          dep_begin_.capacity() * sizeof(std::int32_t)));
}

}  // namespace logstruct::trace
