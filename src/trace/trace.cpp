#include "trace/trace.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace logstruct::trace {

std::span<const EventId> Trace::fanout(EventId send) const {
  auto it = fanout_.find(send);
  if (it == fanout_.end()) return {};
  return it->second;
}

std::span<const EventId> Trace::receivers(EventId send) const {
  const Event& e = event(send);
  LS_CHECK(e.kind == EventKind::Send);
  auto lo = static_cast<std::size_t>(dep_begin_[static_cast<std::size_t>(send)]);
  auto hi =
      static_cast<std::size_t>(dep_begin_[static_cast<std::size_t>(send) + 1]);
  return std::span<const EventId>(dep_recv_).subspan(lo, hi - lo);
}

bool Trace::is_runtime_event(EventId id) const {
  const Event& e = event(id);
  if (chares_[static_cast<std::size_t>(e.chare)].runtime) return true;
  if (e.partner != kNone) {
    const Event& p = event(e.partner);
    if (chares_[static_cast<std::size_t>(p.chare)].runtime) return true;
  }
  if (e.kind == EventKind::Send) {
    for (EventId r : receivers(id)) {
      if (chares_[static_cast<std::size_t>(event(r).chare)].runtime)
        return true;
    }
  }
  return false;
}

TimeNs Trace::total_idle(ProcId p) const {
  TimeNs total = 0;
  for (const IdleSpan& span : idles_) {
    if (span.proc == p) total += span.end - span.begin;
  }
  return total;
}

TimeNs Trace::end_time() const {
  TimeNs t = 0;
  for (const SerialBlock& b : blocks_) t = std::max(t, b.end);
  for (const IdleSpan& s : idles_) t = std::max(t, s.end);
  return t;
}

void Trace::freeze() {
  chare_blocks_.assign(chares_.size(), {});
  proc_blocks_.assign(static_cast<std::size_t>(num_procs_), {});
  chare_events_.assign(chares_.size(), {});

  for (BlockId b = 0; b < num_blocks(); ++b) {
    const SerialBlock& blk = blocks_[static_cast<std::size_t>(b)];
    chare_blocks_[static_cast<std::size_t>(blk.chare)].push_back(b);
    if (blk.proc >= 0 && blk.proc < num_procs_)
      proc_blocks_[static_cast<std::size_t>(blk.proc)].push_back(b);
  }
  auto by_begin = [this](BlockId a, BlockId b) {
    const SerialBlock& ba = blocks_[static_cast<std::size_t>(a)];
    const SerialBlock& bb = blocks_[static_cast<std::size_t>(b)];
    if (ba.begin != bb.begin) return ba.begin < bb.begin;
    return a < b;
  };
  for (auto& list : chare_blocks_) std::sort(list.begin(), list.end(), by_begin);
  for (auto& list : proc_blocks_) std::sort(list.begin(), list.end(), by_begin);

  for (EventId e = 0; e < num_events(); ++e)
    chare_events_[static_cast<std::size_t>(
                      events_[static_cast<std::size_t>(e)].chare)]
        .push_back(e);
  auto by_time = [this](EventId a, EventId b) {
    const Event& ea = events_[static_cast<std::size_t>(a)];
    const Event& eb = events_[static_cast<std::size_t>(b)];
    if (ea.time != eb.time) return ea.time < eb.time;
    return a < b;
  };
  for (auto& list : chare_events_) std::sort(list.begin(), list.end(), by_time);

  // Events inside each block must be in time order for the pipeline.
  for (auto& blk : blocks_) {
    std::sort(blk.events.begin(), blk.events.end(), by_time);
  }

  // Flat dependency table. The p2p prefix is emitted in send-id order
  // (partner first, then fanout receivers), matching the historical
  // for_each_dependency enumeration order exactly; dep_begin_ indexes it
  // CSR-style so receivers() is a span lookup. Collective cross-product
  // rows follow.
  dep_send_.clear();
  dep_recv_.clear();
  dep_kind_.clear();
  dep_begin_.assign(events_.size() + 1, 0);
  auto push_dep = [this](EventId s, EventId r, DepKind k) {
    dep_send_.push_back(s);
    dep_recv_.push_back(r);
    dep_kind_.push_back(k);
  };
  for (EventId id = 0; id < num_events(); ++id) {
    dep_begin_[static_cast<std::size_t>(id)] =
        static_cast<std::int32_t>(dep_send_.size());
    const Event& e = events_[static_cast<std::size_t>(id)];
    if (e.kind != EventKind::Send) continue;
    if (e.partner != kNone) push_dep(id, e.partner, DepKind::Match);
    auto it = fanout_.find(id);
    if (it != fanout_.end()) {
      for (EventId r : it->second) push_dep(id, r, DepKind::Fanout);
    }
  }
  dep_begin_[events_.size()] = static_cast<std::int32_t>(dep_send_.size());
  for (const Collective& coll : collectives_) {
    for (EventId s : coll.sends) {
      for (EventId r : coll.recvs) push_dep(s, r, DepKind::Collective);
    }
  }

  // Memory accounting for the frozen table: the dominant per-trace
  // allocation after events themselves. A gauge (not a counter) because
  // re-freezing a bigger trace should report the new footprint.
  OBS_GAUGE_SET(
      "trace/dep_table_bytes",
      static_cast<std::int64_t>(
          dep_send_.capacity() * sizeof(EventId) +
          dep_recv_.capacity() * sizeof(EventId) +
          dep_kind_.capacity() * sizeof(DepKind) +
          dep_begin_.capacity() * sizeof(std::int32_t)));
}

}  // namespace logstruct::trace
