#include "trace/trace.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::trace {

// Blocked arms of the inline accessors in trace.hpp. Kept out of line
// (and never inlined) so the mem fast paths compile down to a predicted
// branch plus a direct vector load at every call site.
#if defined(__GNUC__) || defined(__clang__)
#define LS_NOINLINE __attribute__((noinline))
#else
#define LS_NOINLINE
#endif

LS_NOINLINE Event Trace::event_blocked(EventId id) const {
  return blocked_->events.get(static_cast<std::size_t>(id));
}

LS_NOINLINE SerialBlock Trace::block_blocked(BlockId id) const {
  return blocked_->blocks.get(static_cast<std::size_t>(id));
}

LS_NOINLINE storage::PinnedSpan<EventId> Trace::events_of_block_blocked(
    BlockId b) const {
  const auto lo = blocked_->block_ev_begin.get(static_cast<std::size_t>(b));
  const auto hi =
      blocked_->block_ev_begin.get(static_cast<std::size_t>(b) + 1);
  return blocked_->block_events.pin(static_cast<std::size_t>(lo),
                                    static_cast<std::size_t>(hi));
}

LS_NOINLINE std::int32_t Trace::dep_begin_blocked(std::size_t i) const {
  return blocked_->dep_begin.get(i);
}

LS_NOINLINE std::int64_t Trace::block_ev_begin_blocked(std::size_t i) const {
  return blocked_->block_ev_begin.get(i);
}

template <typename T>
LS_NOINLINE storage::PinnedSpan<T> Trace::pin_blocked(
    const storage::BlockedColumn<T>& col, std::int64_t lo, std::int64_t hi) {
  return col.pin(static_cast<std::size_t>(lo), static_cast<std::size_t>(hi));
}

template storage::PinnedSpan<std::int32_t> Trace::pin_blocked(
    const storage::BlockedColumn<std::int32_t>& col, std::int64_t lo,
    std::int64_t hi);

storage::PinnedSpan<EventId> Trace::fanout(EventId send) const {
  const Event e = event(send);
  auto lo = static_cast<std::size_t>(
      dep_begin_at(static_cast<std::size_t>(send)));
  const auto hi = static_cast<std::size_t>(
      dep_begin_at(static_cast<std::size_t>(send) + 1));
  if (e.partner != kNone && lo < hi) ++lo;  // skip the partner row
  if (blocked_) return blocked_->dep_recv.pin(lo, hi);
  return {{}, dep_recv_.data() + lo, hi - lo};
}

storage::PinnedSpan<EventId> Trace::receivers(EventId send) const {
  LS_CHECK(event(send).kind == EventKind::Send);
  const auto lo = static_cast<std::size_t>(
      dep_begin_at(static_cast<std::size_t>(send)));
  const auto hi = static_cast<std::size_t>(
      dep_begin_at(static_cast<std::size_t>(send) + 1));
  if (blocked_) return blocked_->dep_recv.pin(lo, hi);
  return {{}, dep_recv_.data() + lo, hi - lo};
}

bool Trace::is_runtime_event(EventId id) const {
  const Event e = event(id);
  if (chares_[static_cast<std::size_t>(e.chare)].runtime) return true;
  if (e.partner != kNone) {
    const Event p = event(e.partner);
    if (chares_[static_cast<std::size_t>(p.chare)].runtime) return true;
  }
  if (e.kind == EventKind::Send) {
    for (EventId r : receivers(id)) {
      if (chares_[static_cast<std::size_t>(event(r).chare)].runtime)
        return true;
    }
  }
  return false;
}

std::int32_t Trace::num_degraded_chares() const {
  std::int32_t n = 0;
  for (std::uint8_t d : degraded_chare_) n += d != 0;
  return n;
}

void Trace::freeze(int threads) {
  threads = util::resolve_threads(threads);

  // Caches shared by both backends, computed from the staging vectors.
  end_time_ = 0;
  for (const SerialBlock& b : blocks_) end_time_ = std::max(end_time_, b.end);
  for (const IdleSpan& s : idles_) end_time_ = std::max(end_time_, s.end);
  idle_total_.clear();
  for (const IdleSpan& s : idles_) {
    if (s.proc < 0) continue;
    if (idle_total_.size() <= static_cast<std::size_t>(s.proc))
      idle_total_.resize(static_cast<std::size_t>(s.proc) + 1, 0);
    idle_total_[static_cast<std::size_t>(s.proc)] += s.end - s.begin;
  }

  if (storage::default_options().kind == storage::BackendKind::Blocked) {
    storage::freeze_blocked(*this, threads);
    return;
  }
  freeze_mem(threads);
}

void Trace::freeze_mem(int threads) {
  const std::size_t num_events = events_.size();
  const std::size_t num_blocks = blocks_.size();
  const std::size_t num_chares = chares_.size();
  const std::size_t num_procs = static_cast<std::size_t>(num_procs_);

  // Per-chare / per-PE block lists as flat CSR groupings: count, prefix
  // sum, then scatter in block-id order so each group starts id-sorted.
  chare_blocks_begin_.assign(num_chares + 1, 0);
  proc_blocks_begin_.assign(num_procs + 1, 0);
  for (const SerialBlock& b : blocks_) {
    ++chare_blocks_begin_[static_cast<std::size_t>(b.chare) + 1];
    if (b.proc >= 0 && b.proc < num_procs_)
      ++proc_blocks_begin_[static_cast<std::size_t>(b.proc) + 1];
  }
  for (std::size_t i = 1; i <= num_chares; ++i)
    chare_blocks_begin_[i] += chare_blocks_begin_[i - 1];
  for (std::size_t i = 1; i <= num_procs; ++i)
    proc_blocks_begin_[i] += proc_blocks_begin_[i - 1];
  chare_blocks_.assign(static_cast<std::size_t>(chare_blocks_begin_.back()),
                       0);
  proc_blocks_.assign(static_cast<std::size_t>(proc_blocks_begin_.back()), 0);
  {
    std::vector<std::int64_t> ccur(chare_blocks_begin_.begin(),
                                   chare_blocks_begin_.end() - 1);
    std::vector<std::int64_t> pcur(proc_blocks_begin_.begin(),
                                   proc_blocks_begin_.end() - 1);
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const SerialBlock& blk = blocks_[b];
      chare_blocks_[static_cast<std::size_t>(
          ccur[static_cast<std::size_t>(blk.chare)]++)] =
          static_cast<BlockId>(b);
      if (blk.proc >= 0 && blk.proc < num_procs_)
        proc_blocks_[static_cast<std::size_t>(
            pcur[static_cast<std::size_t>(blk.proc)]++)] =
            static_cast<BlockId>(b);
    }
  }
  auto by_begin = [this](BlockId a, BlockId b) {
    const SerialBlock& ba = blocks_[static_cast<std::size_t>(a)];
    const SerialBlock& bb = blocks_[static_cast<std::size_t>(b)];
    if (ba.begin != bb.begin) return ba.begin < bb.begin;
    return a < b;
  };
  // Each group sorts independently (total-order comparators), so the
  // sort sweeps fan out per group with bit-identical results.
  util::parallel_for(
      threads, static_cast<std::int64_t>(num_chares), [&](std::int64_t c) {
        std::sort(chare_blocks_.begin() + chare_blocks_begin_[c],
                  chare_blocks_.begin() + chare_blocks_begin_[c + 1],
                  by_begin);
      });
  util::parallel_for(
      threads, static_cast<std::int64_t>(num_procs), [&](std::int64_t p) {
        std::sort(proc_blocks_.begin() + proc_blocks_begin_[p],
                  proc_blocks_.begin() + proc_blocks_begin_[p + 1], by_begin);
      });

  // Per-chare and per-block event lists, same count / scatter / per-group
  // sort recipe keyed by the event's chare and owning block.
  chare_events_begin_.assign(num_chares + 1, 0);
  block_ev_begin_.assign(num_blocks + 1, 0);
  for (const Event& e : events_) {
    ++chare_events_begin_[static_cast<std::size_t>(e.chare) + 1];
    if (e.block != kNone)
      ++block_ev_begin_[static_cast<std::size_t>(e.block) + 1];
  }
  for (std::size_t i = 1; i <= num_chares; ++i)
    chare_events_begin_[i] += chare_events_begin_[i - 1];
  for (std::size_t i = 1; i <= num_blocks; ++i)
    block_ev_begin_[i] += block_ev_begin_[i - 1];
  chare_events_.assign(static_cast<std::size_t>(chare_events_begin_.back()),
                       0);
  block_events_.assign(static_cast<std::size_t>(block_ev_begin_.back()), 0);
  {
    std::vector<std::int64_t> ccur(chare_events_begin_.begin(),
                                   chare_events_begin_.end() - 1);
    std::vector<std::int64_t> bcur(block_ev_begin_.begin(),
                                   block_ev_begin_.end() - 1);
    for (std::size_t e = 0; e < num_events; ++e) {
      const Event& ev = events_[e];
      chare_events_[static_cast<std::size_t>(
          ccur[static_cast<std::size_t>(ev.chare)]++)] =
          static_cast<EventId>(e);
      if (ev.block != kNone)
        block_events_[static_cast<std::size_t>(
            bcur[static_cast<std::size_t>(ev.block)]++)] =
            static_cast<EventId>(e);
    }
  }
  auto by_time = [this](EventId a, EventId b) {
    const Event& ea = events_[static_cast<std::size_t>(a)];
    const Event& eb = events_[static_cast<std::size_t>(b)];
    if (ea.time != eb.time) return ea.time < eb.time;
    return a < b;
  };
  util::parallel_for(
      threads, static_cast<std::int64_t>(num_chares), [&](std::int64_t c) {
        std::sort(chare_events_.begin() + chare_events_begin_[c],
                  chare_events_.begin() + chare_events_begin_[c + 1],
                  by_time);
      });
  util::parallel_for(
      threads, static_cast<std::int64_t>(num_blocks), [&](std::int64_t b) {
        std::sort(block_events_.begin() + block_ev_begin_[b],
                  block_events_.begin() + block_ev_begin_[b + 1], by_time);
      });

  // Flat dependency table, rebuilt entirely from the recv-side partner
  // fields: every recv naming send s is one row of s, in recv-id order.
  // The partner recv is always the lowest id (first matched), so the p2p
  // prefix comes out grouped by send with the Match row first and the
  // fanout rows after — the historical enumeration order exactly.
  // dep_begin_ indexes the prefix CSR-style so receivers() is a span
  // lookup; collective cross-product rows follow.
  dep_begin_.assign(num_events + 1, 0);
  for (const Event& e : events_) {
    if (e.kind == EventKind::Recv && e.partner != kNone)
      ++dep_begin_[static_cast<std::size_t>(e.partner) + 1];
  }
  for (std::size_t i = 1; i <= num_events; ++i)
    dep_begin_[i] += dep_begin_[i - 1];

  std::int64_t coll_rows = 0;
  for (const Collective& coll : collectives_)
    coll_rows += static_cast<std::int64_t>(coll.sends.size()) *
                 static_cast<std::int64_t>(coll.recvs.size());
  const auto p2p_rows = static_cast<std::int64_t>(dep_begin_[num_events]);
  dep_send_.assign(static_cast<std::size_t>(p2p_rows + coll_rows), 0);
  dep_recv_.assign(static_cast<std::size_t>(p2p_rows + coll_rows), 0);
  dep_kind_.assign(static_cast<std::size_t>(p2p_rows + coll_rows),
                   DepKind::Match);
  {
    std::vector<std::int32_t> cur(dep_begin_.begin(), dep_begin_.end() - 1);
    for (std::size_t r = 0; r < num_events; ++r) {
      const Event& e = events_[r];
      if (e.kind != EventKind::Recv || e.partner == kNone) continue;
      const auto s = static_cast<std::size_t>(e.partner);
      const auto at = static_cast<std::size_t>(cur[s]++);
      dep_send_[at] = e.partner;
      dep_recv_[at] = static_cast<EventId>(r);
      dep_kind_[at] = events_[s].partner == static_cast<EventId>(r)
                          ? DepKind::Match
                          : DepKind::Fanout;
    }
  }
  // Collective cross-product rows follow the CSR prefix; serial, they
  // are a small tail.
  auto at = static_cast<std::size_t>(p2p_rows);
  for (const Collective& coll : collectives_) {
    for (EventId s : coll.sends) {
      for (EventId r : coll.recvs) {
        dep_send_[at] = s;
        dep_recv_[at] = r;
        dep_kind_[at] = DepKind::Collective;
        ++at;
      }
    }
  }

  // Memory accounting for the frozen table: the dominant per-trace
  // allocation after events themselves. A gauge (not a counter) because
  // re-freezing a bigger trace should report the new footprint.
  OBS_GAUGE_SET(
      "trace/dep_table_bytes",
      static_cast<std::int64_t>(
          dep_send_.capacity() * sizeof(EventId) +
          dep_recv_.capacity() * sizeof(EventId) +
          dep_kind_.capacity() * sizeof(DepKind) +
          dep_begin_.capacity() * sizeof(std::int32_t)));
}

}  // namespace logstruct::trace
