#pragma once

/// \file repair.hpp
/// Salvage-to-well-formedness: the RawTrace intermediate and repair().
///
/// A recovering reader (io.hpp, projections.hpp in ReadOptions::recover
/// mode) parses whatever lines survive into a RawTrace — records keep the
/// ids the file claimed, so dropped/duplicated/reordered lines are visible
/// as gaps and collisions. repair() then turns that salvage into data the
/// strict pipeline can trust:
///
///   - duplicate ids            -> later copies dropped (first one wins)
///   - gaps in metadata tables  -> placeholder arrays/chares/entries so
///                                 surviving references stay valid
///   - gaps in block/event ids  -> dense renumbering; references remapped
///   - dangling references      -> events of lost blocks dropped; lost
///                                 send/recv partners become kNone (the
///                                 untraced-dependency case the pipeline
///                                 already handles); the affected chares
///                                 are flagged degraded
///   - missing/invalid block end-> synthesized from the block's events
///   - out-of-order timestamps  -> clamped into the block span / after
///                                 the matching send
///   - duplicate idle spans and overlapping idles -> deduplicated/clamped
///
/// Every fix is counted in the RecoveryReport (and, via
/// RecoveryReport::export_counters, in the `trace/recovery/*` obs
/// counters). For well-formed input repair() is the identity and
/// build_trace() reproduces the strict reader's Trace bit-for-bit.

#include <cstdint>
#include <vector>

#include "trace/diagnostics.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace logstruct::trace {

/// One metadata record as read, with the id the file claimed.
template <typename Info>
struct RawRecord {
  std::int64_t id = -1;
  Info info;
};

/// A serial block as read. `has_end` is false when the end marker was
/// lost (truncated PE log).
struct RawBlock {
  std::int64_t id = -1;
  std::int64_t chare = -1;
  ProcId proc = -1;
  std::int64_t entry = -1;
  TimeNs begin = 0;
  TimeNs end = 0;
  bool has_end = true;
};

/// A dependency event as read. `block` and `partner` are file-claimed ids.
struct RawEvent {
  std::int64_t id = -1;
  EventKind kind = EventKind::Send;
  TimeNs time = 0;
  std::int64_t block = -1;
  std::int64_t partner = -1;
};

/// A collective as read; members are file-claimed event ids.
struct RawCollective {
  std::vector<std::int64_t> sends;
  std::vector<std::int64_t> recvs;
};

/// The mutable pre-freeze representation both recovering readers fill.
struct RawTrace {
  std::int32_t num_procs = 0;
  std::vector<RawRecord<ArrayInfo>> arrays;
  std::vector<RawRecord<ChareInfo>> chares;
  std::vector<RawRecord<EntryInfo>> entries;
  std::vector<RawBlock> blocks;
  std::vector<RawEvent> events;
  std::vector<IdleSpan> idles;
  std::vector<RawCollective> collectives;
  /// Chares flagged degraded by the reader (repair() adds its own).
  std::vector<std::int64_t> degraded_chares;
};

/// Repair `raw` in place until it satisfies every structural rule
/// trace::validate() checks, recording one diagnostic per fix. Safe on
/// arbitrary salvage; a no-op (zero fixes) on well-formed input.
void repair(RawTrace& raw, RecoveryReport& report);

/// Freeze a *repaired* RawTrace into a Trace. Precondition: repair() ran
/// (or the raw data came from a well-formed file); violations of the
/// structural rules here are programming errors, not input errors.
/// `threads` fans out the freeze (0 = default parallelism).
Trace build_trace(RawTrace&& raw, int threads = 0);

}  // namespace logstruct::trace
