#pragma once

/// \file builder.hpp
/// Mutable construction interface for traces.
///
/// The simulators' tracing hooks call into a TraceBuilder; finish() freezes
/// the result. The builder enforces the cheap structural rules at insertion
/// time (events belong to open blocks, matched partners are send/recv pairs)
/// and leaves global validation to trace::validate().

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace logstruct::trace {

class TraceBuilder {
 public:
  // --- static tables ----------------------------------------------------
  ArrayId add_array(std::string name, bool runtime = false);

  ChareId add_chare(std::string name, ArrayId array = kNone,
                    std::int32_t index = -1, ProcId home = kNone,
                    bool runtime = false);

  EntryId add_entry(std::string name, bool runtime = false,
                    std::int32_t sdag_serial = -1,
                    std::vector<EntryId> when_entries = {});

  // --- dynamic recording -------------------------------------------------
  /// Open a serial block (entry-method execution begins).
  BlockId begin_block(ChareId chare, ProcId proc, EntryId entry, TimeNs t);

  /// Record the receive that awakened an open block. send may be kNone for
  /// untraced dependencies. Returns the Recv event id.
  EventId add_recv(BlockId block, TimeNs t, EventId send = kNone);

  /// Record a remote-invocation send inside an open block.
  EventId add_send(BlockId block, TimeNs t);

  /// Close a serial block.
  void end_block(BlockId block, TimeNs t);

  /// Record a scheduler idle span on a processor.
  void add_idle(ProcId proc, TimeNs begin, TimeNs end);

  /// Flag a chare as degraded: a recovering reader repaired one of its
  /// dependencies away (Trace::is_degraded_chare). No-op on invalid ids.
  void mark_degraded(ChareId chare);

  // --- collectives (MPI model) -------------------------------------------
  CollectiveId begin_collective();
  EventId add_collective_send(CollectiveId c, BlockId block, TimeNs t);
  EventId add_collective_recv(CollectiveId c, BlockId block, TimeNs t);

  /// Number of events recorded so far.
  [[nodiscard]] std::int32_t num_events() const {
    return static_cast<std::int32_t>(trace_.events_.size());
  }

  /// Freeze and return the trace. The builder is left empty. `threads`
  /// fans the freeze's index builds out over the shared pool (0 =
  /// util::default_parallelism()); the result is identical for any value.
  Trace finish(std::int32_t num_procs, int threads = 0);

 private:
  EventId add_event(BlockId block, EventKind kind, TimeNs t);

  Trace trace_;
  std::vector<bool> block_open_;
};

}  // namespace logstruct::trace
