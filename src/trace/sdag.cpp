#include "trace/sdag.hpp"

#include <algorithm>

namespace logstruct::trace {

std::vector<BlockId> compute_sdag_absorption(const Trace& trace) {
  std::vector<BlockId> rep(static_cast<std::size_t>(trace.num_blocks()));
  for (BlockId b = 0; b < trace.num_blocks(); ++b)
    rep[static_cast<std::size_t>(b)] = b;

  for (ChareId c = 0; c < trace.num_chares(); ++c) {
    auto blocks = trace.blocks_of_chare(c);
    for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
      BlockId cur = blocks[i];
      BlockId next = blocks[i + 1];
      const SerialBlock& cb = trace.block(cur);
      const SerialBlock& nb = trace.block(next);
      const EntryInfo& ne = trace.entry(nb.entry);
      if (ne.sdag_serial < 0) continue;  // next is not a serial
      if (cb.proc != nb.proc) continue;  // must be the same scheduler
      bool is_when = std::find(ne.when_entries.begin(), ne.when_entries.end(),
                               cb.entry) != ne.when_entries.end();
      // "occurs right before a serial": contiguous execution, no gap the
      // scheduler could have filled.
      if (is_when && nb.begin == cb.end)
        rep[static_cast<std::size_t>(cur)] = next;
    }
  }

  // Flatten chains (a when-block absorbed into a serial that is itself
  // never absorbed keeps this a single pass in practice, but be safe).
  for (BlockId b = 0; b < trace.num_blocks(); ++b) {
    BlockId r = rep[static_cast<std::size_t>(b)];
    while (rep[static_cast<std::size_t>(r)] != r)
      r = rep[static_cast<std::size_t>(r)];
    rep[static_cast<std::size_t>(b)] = r;
  }
  return rep;
}

std::vector<std::pair<BlockId, BlockId>> sdag_happened_before(
    const Trace& trace) {
  std::vector<std::pair<BlockId, BlockId>> out;
  for (ChareId c = 0; c < trace.num_chares(); ++c) {
    auto blocks = trace.blocks_of_chare(c);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      std::int32_t serial = trace.entry(trace.block(blocks[i]).entry)
                                .sdag_serial;
      if (serial < 0) continue;
      // Nearest later block of serial+1 on the same chare.
      for (std::size_t j = i + 1; j < blocks.size(); ++j) {
        std::int32_t later = trace.entry(trace.block(blocks[j]).entry)
                                 .sdag_serial;
        if (later == serial + 1) {
          out.emplace_back(blocks[i], blocks[j]);
          break;
        }
        if (later == serial) break;  // a new instance of n restarts the scan
      }
    }
  }
  return out;
}

}  // namespace logstruct::trace
