#pragma once

/// \file ids.hpp
/// Shared integral id types of the trace model.
///
/// Ids are dense 32-bit indices into the owning Trace's tables. kNone marks
/// "no value" (e.g. a receive whose matching send was not traced — the PDES
/// completion-detector case of paper Fig. 24).

#include <cstdint>

namespace logstruct::trace {

using TimeNs = std::int64_t;   ///< physical timestamps, nanoseconds
using EventId = std::int32_t;
using BlockId = std::int32_t;
using ChareId = std::int32_t;
using ProcId = std::int32_t;
using EntryId = std::int32_t;
using ArrayId = std::int32_t;
using CollectiveId = std::int32_t;

inline constexpr std::int32_t kNone = -1;

}  // namespace logstruct::trace
