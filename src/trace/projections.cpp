#include "trace/projections.hpp"

#include "trace/builder.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace logstruct::trace {

namespace {

std::string log_path(const std::string& prefix, ProcId pe) {
  return prefix + "." + std::to_string(pe) + ".log";
}

std::string read_trailing_name(std::istringstream& line) {
  std::string sep;
  line >> sep;
  if (sep != "|")
    throw std::runtime_error("projections: expected '|' before name");
  std::string name;
  std::getline(line, name);
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  return name;
}

}  // namespace

bool write_projections(const Trace& trace, const std::string& prefix) {
  if (!trace.collectives().empty()) return false;  // not representable

  {
    std::ofstream sts(prefix + ".sts");
    if (!sts) return false;
    sts << "PROJECTIONS-STS 1\n";
    sts << "PES " << trace.num_procs() << '\n';
    for (std::size_t i = 0; i < trace.arrays().size(); ++i) {
      const ArrayInfo& a = trace.arrays()[i];
      sts << "ARRAY " << i << ' ' << (a.runtime ? 1 : 0) << " | " << a.name
          << '\n';
    }
    for (std::size_t i = 0; i < trace.chares().size(); ++i) {
      const ChareInfo& c = trace.chares()[i];
      sts << "CHARE " << i << ' ' << c.array << ' ' << c.index << ' '
          << c.home << ' ' << (c.runtime ? 1 : 0) << " | " << c.name << '\n';
    }
    for (std::size_t i = 0; i < trace.entries().size(); ++i) {
      const EntryInfo& e = trace.entries()[i];
      sts << "ENTRY " << i << ' ' << (e.runtime ? 1 : 0) << ' '
          << e.sdag_serial << ' ' << e.when_entries.size();
      for (EntryId w : e.when_entries) sts << ' ' << w;
      sts << " | " << e.name << '\n';
    }
    sts << "END\n";
    if (!sts) return false;
  }

  for (ProcId pe = 0; pe < trace.num_procs(); ++pe) {
    std::ofstream log(log_path(prefix, pe));
    if (!log) return false;
    log << "PROJECTIONS " << pe << '\n';

    // Whole processing groups (BEGIN/CREATIONs/END) are emitted
    // atomically in block-begin order — blocks never overlap on a PE —
    // with idle spans (which live in the scheduler gaps) merged in by
    // begin time, idle first on ties (an idle ends exactly where the
    // next block begins).
    struct Record {
      TimeNs time;
      int order;  // 0 = idle, 1 = processing group
      std::string text;
    };
    std::vector<Record> records;
    for (BlockId b : trace.blocks_of_proc(pe)) {
      const SerialBlock& blk = trace.block(b);
      std::ostringstream group;
      group << "BEGIN_PROCESSING " << blk.entry << ' ' << blk.begin << ' '
            << blk.chare << ' ';
      if (blk.trigger == kNone) {
        group << "0 -1";
      } else {
        group << "1 " << trace.event(blk.trigger).partner;
      }
      group << '\n';
      for (EventId e : blk.events) {
        const Event& ev = trace.event(e);
        if (ev.kind != EventKind::Send) continue;
        group << "CREATION " << e << ' ' << blk.entry << ' ' << ev.time
              << '\n';
      }
      group << "END_PROCESSING " << blk.end;
      records.push_back({blk.begin, 1, group.str()});
    }
    for (const IdleSpan& idle : trace.idles()) {
      if (idle.proc != pe) continue;
      records.push_back({idle.begin, 0,
                         "BEGIN_IDLE " + std::to_string(idle.begin) +
                             "\nEND_IDLE " + std::to_string(idle.end)});
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const Record& a, const Record& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.order < b.order;
                     });
    for (const Record& r : records) log << r.text << '\n';
    log << "END\n";
    if (!log) return false;
  }
  return true;
}

Trace read_projections(const std::string& prefix) {
  TraceBuilder tb;
  std::int32_t num_pes = 0;

  {
    std::ifstream sts(prefix + ".sts");
    if (!sts)
      throw std::runtime_error("projections: cannot open " + prefix +
                               ".sts");
    std::string line;
    std::getline(sts, line);
    if (line.rfind("PROJECTIONS-STS", 0) != 0)
      throw std::runtime_error("projections: bad sts header");
    bool saw_end = false;
    while (std::getline(sts, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "PES") {
        ls >> num_pes;
      } else if (tag == "ARRAY") {
        std::size_t id;
        int runtime;
        ls >> id >> runtime;
        std::string name = read_trailing_name(ls);
        if (tb.add_array(name, runtime != 0) != static_cast<ArrayId>(id))
          throw std::runtime_error("projections: non-sequential array id");
      } else if (tag == "CHARE") {
        std::size_t id;
        ArrayId array;
        std::int32_t index;
        ProcId home;
        int runtime;
        ls >> id >> array >> index >> home >> runtime;
        std::string name = read_trailing_name(ls);
        if (tb.add_chare(name, array, index, home, runtime != 0) !=
            static_cast<ChareId>(id))
          throw std::runtime_error("projections: non-sequential chare id");
      } else if (tag == "ENTRY") {
        std::size_t id;
        int runtime;
        std::int32_t sdag;
        std::size_t nwhen;
        ls >> id >> runtime >> sdag >> nwhen;
        std::vector<EntryId> when(nwhen);
        for (auto& w : when) ls >> w;
        std::string name = read_trailing_name(ls);
        if (tb.add_entry(name, runtime != 0, sdag, std::move(when)) !=
            static_cast<EntryId>(id))
          throw std::runtime_error("projections: non-sequential entry id");
      } else if (tag == "END") {
        saw_end = true;
        break;
      } else {
        throw std::runtime_error("projections: unknown sts record " + tag);
      }
    }
    if (!saw_end) throw std::runtime_error("projections: truncated sts");
  }

  // Pass A: create every block and its sends (keeping blocks open), and
  // remember triggers + end times. File send ids map to fresh event ids.
  struct PendingBlock {
    BlockId block;
    TimeNs end;
    bool has_recv;
    TimeNs begin;
    std::int64_t src_event;  // file id of the matching creation, or -1
  };
  std::vector<PendingBlock> pending;
  std::map<std::int64_t, EventId> send_of_file_id;

  for (ProcId pe = 0; pe < num_pes; ++pe) {
    std::ifstream log(log_path(prefix, pe));
    if (!log)
      throw std::runtime_error("projections: missing log for PE " +
                               std::to_string(pe));
    std::string line;
    std::getline(log, line);
    if (line.rfind("PROJECTIONS", 0) != 0)
      throw std::runtime_error("projections: bad log header");

    BlockId open = kNone;
    bool saw_end = false;
    PendingBlock current{};
    while (std::getline(log, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "BEGIN_PROCESSING") {
        if (open != kNone)
          throw std::runtime_error("projections: nested BEGIN_PROCESSING");
        EntryId entry;
        TimeNs time;
        ChareId chare;
        int has_recv;
        std::int64_t src;
        ls >> entry >> time >> chare >> has_recv >> src;
        open = tb.begin_block(chare, pe, entry, time);
        current = PendingBlock{open, time, has_recv != 0, time, src};
      } else if (tag == "CREATION") {
        if (open == kNone)
          throw std::runtime_error("projections: CREATION outside block");
        std::int64_t file_id;
        EntryId entry;
        TimeNs time;
        ls >> file_id >> entry >> time;
        (void)entry;  // the destination entry is re-derived on the recv side
        EventId ev = tb.add_send(open, time);
        if (!send_of_file_id.emplace(file_id, ev).second)
          throw std::runtime_error("projections: duplicate creation id");
      } else if (tag == "END_PROCESSING") {
        if (open == kNone)
          throw std::runtime_error("projections: unmatched END_PROCESSING");
        ls >> current.end;
        pending.push_back(current);
        open = kNone;
      } else if (tag == "BEGIN_IDLE" || tag == "END_IDLE") {
        // Idle pairs handled in a second scan below (they need no block
        // context, but we must pair BEGIN with END).
      } else if (tag == "END") {
        saw_end = true;
        break;
      } else {
        throw std::runtime_error("projections: unknown log record " + tag);
      }
      if (!ls && !ls.eof())
        throw std::runtime_error("projections: parse error: " + line);
    }
    if (open != kNone || !saw_end)
      throw std::runtime_error("projections: truncated log for PE " +
                               std::to_string(pe));
  }

  // Pass B: triggers (every send now exists), then close the blocks.
  for (const PendingBlock& pb : pending) {
    if (!pb.has_recv) continue;
    EventId send = kNone;
    if (pb.src_event >= 0) {
      auto it = send_of_file_id.find(pb.src_event);
      if (it == send_of_file_id.end())
        throw std::runtime_error("projections: recv references unknown "
                                 "creation");
      send = it->second;
    }
    tb.add_recv(pb.block, pb.begin, send);
  }
  for (const PendingBlock& pb : pending) tb.end_block(pb.block, pb.end);

  // Idle spans: second scan of the logs.
  for (ProcId pe = 0; pe < num_pes; ++pe) {
    std::ifstream log(log_path(prefix, pe));
    std::string line;
    TimeNs idle_begin = -1;
    while (std::getline(log, line)) {
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "BEGIN_IDLE") {
        ls >> idle_begin;
      } else if (tag == "END_IDLE") {
        TimeNs idle_end;
        ls >> idle_end;
        if (idle_begin < 0)
          throw std::runtime_error("projections: unmatched END_IDLE");
        tb.add_idle(pe, idle_begin, idle_end);
        idle_begin = -1;
      }
    }
    if (idle_begin >= 0)
      throw std::runtime_error("projections: unmatched BEGIN_IDLE");
  }

  return tb.finish(num_pes);
}

}  // namespace logstruct::trace
