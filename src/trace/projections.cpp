#include "trace/projections.hpp"

#include "trace/builder.hpp"
#include "trace/repair.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace logstruct::trace {

namespace {

/// A garbled PES count must not make the reader probe millions of
/// nonexistent log files.
constexpr std::int64_t kMaxPes = 1 << 16;

std::string log_path(const std::string& prefix, ProcId pe) {
  return prefix + "." + std::to_string(pe) + ".log";
}

std::string read_trailing_name(std::istringstream& line) {
  std::string sep;
  line >> sep;
  if (sep != "|")
    throw std::runtime_error("projections: expected '|' before name");
  std::string name;
  std::getline(line, name);
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  return name;
}

bool try_read_trailing_name(std::istringstream& line, std::string* out) {
  std::string sep;
  line >> sep;
  if (sep != "|") return false;
  std::string name;
  std::getline(line, name);
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  *out = std::move(name);
  return true;
}

std::int32_t narrow_or_none(std::int64_t v) {
  if (v < INT32_MIN || v > INT32_MAX) return kNone;
  return static_cast<std::int32_t>(v);
}

}  // namespace

bool write_projections(const Trace& trace, const std::string& prefix) {
  if (!trace.collectives().empty()) return false;  // not representable

  {
    std::ofstream sts(prefix + ".sts");
    if (!sts) return false;
    sts << "PROJECTIONS-STS 1\n";
    sts << "PES " << trace.num_procs() << '\n';
    for (std::size_t i = 0; i < trace.arrays().size(); ++i) {
      const ArrayInfo& a = trace.arrays()[i];
      sts << "ARRAY " << i << ' ' << (a.runtime ? 1 : 0) << " | " << a.name
          << '\n';
    }
    for (std::size_t i = 0; i < trace.chares().size(); ++i) {
      const ChareInfo& c = trace.chares()[i];
      sts << "CHARE " << i << ' ' << c.array << ' ' << c.index << ' '
          << c.home << ' ' << (c.runtime ? 1 : 0) << " | " << c.name << '\n';
    }
    for (std::size_t i = 0; i < trace.entries().size(); ++i) {
      const EntryInfo& e = trace.entries()[i];
      sts << "ENTRY " << i << ' ' << (e.runtime ? 1 : 0) << ' '
          << e.sdag_serial << ' ' << e.when_entries.size();
      for (EntryId w : e.when_entries) sts << ' ' << w;
      sts << " | " << e.name << '\n';
    }
    sts << "END\n";
    if (!sts) return false;
  }

  for (ProcId pe = 0; pe < trace.num_procs(); ++pe) {
    std::ofstream log(log_path(prefix, pe));
    if (!log) return false;
    log << "PROJECTIONS " << pe << '\n';

    // Whole processing groups (BEGIN/CREATIONs/END) are emitted
    // atomically in block-begin order — blocks never overlap on a PE —
    // with idle spans (which live in the scheduler gaps) merged in by
    // begin time, idle first on ties (an idle ends exactly where the
    // next block begins).
    struct Record {
      TimeNs time;
      int order;  // 0 = idle, 1 = processing group
      std::string text;
    };
    std::vector<Record> records;
    for (BlockId b : trace.blocks_of_proc(pe)) {
      const SerialBlock& blk = trace.block(b);
      std::ostringstream group;
      group << "BEGIN_PROCESSING " << blk.entry << ' ' << blk.begin << ' '
            << blk.chare << ' ';
      if (blk.trigger == kNone) {
        group << "0 -1";
      } else {
        group << "1 " << trace.event(blk.trigger).partner;
      }
      group << '\n';
      for (EventId e : trace.events_of_block(b)) {
        const Event& ev = trace.event(e);
        if (ev.kind != EventKind::Send) continue;
        group << "CREATION " << e << ' ' << blk.entry << ' ' << ev.time
              << '\n';
      }
      group << "END_PROCESSING " << blk.end;
      records.push_back({blk.begin, 1, group.str()});
    }
    for (const IdleSpan& idle : trace.idles()) {
      if (idle.proc != pe) continue;
      records.push_back({idle.begin, 0,
                         "BEGIN_IDLE " + std::to_string(idle.begin) +
                             "\nEND_IDLE " + std::to_string(idle.end)});
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const Record& a, const Record& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.order < b.order;
                     });
    for (const Record& r : records) log << r.text << '\n';
    log << "END\n";
    if (!log) return false;
  }
  return true;
}

Trace read_projections(const std::string& prefix) {
  TraceBuilder tb;
  std::int32_t num_pes = 0;

  {
    std::ifstream sts(prefix + ".sts");
    if (!sts)
      throw std::runtime_error("projections: cannot open " + prefix +
                               ".sts");
    std::string line;
    std::getline(sts, line);
    if (line.rfind("PROJECTIONS-STS", 0) != 0)
      throw std::runtime_error("projections: bad sts header");
    bool saw_end = false;
    while (std::getline(sts, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "PES") {
        ls >> num_pes;
      } else if (tag == "ARRAY") {
        std::size_t id;
        int runtime;
        ls >> id >> runtime;
        std::string name = read_trailing_name(ls);
        if (tb.add_array(name, runtime != 0) != static_cast<ArrayId>(id))
          throw std::runtime_error("projections: non-sequential array id");
      } else if (tag == "CHARE") {
        std::size_t id;
        ArrayId array;
        std::int32_t index;
        ProcId home;
        int runtime;
        ls >> id >> array >> index >> home >> runtime;
        std::string name = read_trailing_name(ls);
        if (tb.add_chare(name, array, index, home, runtime != 0) !=
            static_cast<ChareId>(id))
          throw std::runtime_error("projections: non-sequential chare id");
      } else if (tag == "ENTRY") {
        std::size_t id;
        int runtime;
        std::int32_t sdag;
        std::size_t nwhen;
        ls >> id >> runtime >> sdag >> nwhen;
        std::vector<EntryId> when(nwhen);
        for (auto& w : when) ls >> w;
        std::string name = read_trailing_name(ls);
        if (tb.add_entry(name, runtime != 0, sdag, std::move(when)) !=
            static_cast<EntryId>(id))
          throw std::runtime_error("projections: non-sequential entry id");
      } else if (tag == "END") {
        saw_end = true;
        break;
      } else {
        throw std::runtime_error("projections: unknown sts record " + tag);
      }
    }
    if (!saw_end) throw std::runtime_error("projections: truncated sts");
  }

  // Pass A: create every block and its sends (keeping blocks open), and
  // remember triggers + end times. File send ids map to fresh event ids.
  struct PendingBlock {
    BlockId block;
    TimeNs end;
    bool has_recv;
    TimeNs begin;
    std::int64_t src_event;  // file id of the matching creation, or -1
  };
  std::vector<PendingBlock> pending;
  std::map<std::int64_t, EventId> send_of_file_id;

  for (ProcId pe = 0; pe < num_pes; ++pe) {
    std::ifstream log(log_path(prefix, pe));
    if (!log)
      throw std::runtime_error("projections: missing log for PE " +
                               std::to_string(pe));
    std::string line;
    std::getline(log, line);
    if (line.rfind("PROJECTIONS", 0) != 0)
      throw std::runtime_error("projections: bad log header");

    BlockId open = kNone;
    bool saw_end = false;
    PendingBlock current{};
    while (std::getline(log, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "BEGIN_PROCESSING") {
        if (open != kNone)
          throw std::runtime_error("projections: nested BEGIN_PROCESSING");
        EntryId entry;
        TimeNs time;
        ChareId chare;
        int has_recv;
        std::int64_t src;
        ls >> entry >> time >> chare >> has_recv >> src;
        open = tb.begin_block(chare, pe, entry, time);
        current = PendingBlock{open, time, has_recv != 0, time, src};
      } else if (tag == "CREATION") {
        if (open == kNone)
          throw std::runtime_error("projections: CREATION outside block");
        std::int64_t file_id;
        EntryId entry;
        TimeNs time;
        ls >> file_id >> entry >> time;
        (void)entry;  // the destination entry is re-derived on the recv side
        EventId ev = tb.add_send(open, time);
        if (!send_of_file_id.emplace(file_id, ev).second)
          throw std::runtime_error("projections: duplicate creation id");
      } else if (tag == "END_PROCESSING") {
        if (open == kNone)
          throw std::runtime_error("projections: unmatched END_PROCESSING");
        ls >> current.end;
        pending.push_back(current);
        open = kNone;
      } else if (tag == "BEGIN_IDLE" || tag == "END_IDLE") {
        // Idle pairs handled in a second scan below (they need no block
        // context, but we must pair BEGIN with END).
      } else if (tag == "END") {
        saw_end = true;
        break;
      } else {
        throw std::runtime_error("projections: unknown log record " + tag);
      }
      if (!ls && !ls.eof())
        throw std::runtime_error("projections: parse error: " + line);
    }
    if (open != kNone || !saw_end)
      throw std::runtime_error("projections: truncated log for PE " +
                               std::to_string(pe));
  }

  // Pass B: triggers (every send now exists), then close the blocks.
  for (const PendingBlock& pb : pending) {
    if (!pb.has_recv) continue;
    EventId send = kNone;
    if (pb.src_event >= 0) {
      auto it = send_of_file_id.find(pb.src_event);
      if (it == send_of_file_id.end())
        throw std::runtime_error("projections: recv references unknown "
                                 "creation");
      send = it->second;
    }
    tb.add_recv(pb.block, pb.begin, send);
  }
  for (const PendingBlock& pb : pending) tb.end_block(pb.block, pb.end);

  // Idle spans: second scan of the logs.
  for (ProcId pe = 0; pe < num_pes; ++pe) {
    std::ifstream log(log_path(prefix, pe));
    std::string line;
    TimeNs idle_begin = -1;
    while (std::getline(log, line)) {
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "BEGIN_IDLE") {
        ls >> idle_begin;
      } else if (tag == "END_IDLE") {
        TimeNs idle_end;
        ls >> idle_end;
        if (idle_begin < 0)
          throw std::runtime_error("projections: unmatched END_IDLE");
        tb.add_idle(pe, idle_begin, idle_end);
        idle_begin = -1;
      }
    }
    if (idle_begin >= 0)
      throw std::runtime_error("projections: unmatched BEGIN_IDLE");
  }

  return tb.finish(num_pes);
}

namespace {

/// Recovering Projections parse: salvage into a RawTrace (synthetic
/// sequential block/event ids, like the strict reader's two passes), then
/// repair + freeze. Never throws on malformed content.
Trace read_projections_recovering(const std::string& prefix,
                                  RecoveryReport& report) {
  RawTrace raw;
  std::int64_t num_pes = 0;

  {
    std::ifstream sts(prefix + ".sts");
    if (!sts) {
      report.add(DiagCode::IoError, Severity::Fatal,
                 "cannot open " + prefix + ".sts");
      return build_trace(std::move(raw), 0);
    }
    std::string line;
    std::int64_t lineno = 1;
    std::getline(sts, line);
    if (line.rfind("PROJECTIONS-STS", 0) != 0) {
      report.add(DiagCode::BadHeader, Severity::Fatal,
                 "not a Projections sts file", -1, 1);
      return build_trace(std::move(raw), 0);
    }
    bool saw_end = false;
    while (!saw_end && std::getline(sts, line)) {
      ++lineno;
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      auto parse_error = [&](const char* what) {
        report.add(DiagCode::ParseError, Severity::Warning,
                   std::string("garbled sts ") + what + " record skipped",
                   -1, lineno);
      };
      if (tag == "PES") {
        std::int64_t n = 0;
        ls >> n;
        if (ls.fail() || n < 0) {
          parse_error("PES");
        } else if (n > kMaxPes) {
          report.add(DiagCode::ParseError, Severity::Warning,
                     "implausible PE count clamped", -1, lineno);
          num_pes = kMaxPes;
        } else {
          num_pes = n;
        }
      } else if (tag == "ARRAY") {
        RawRecord<ArrayInfo> r;
        int runtime = 0;
        ls >> r.id >> runtime;
        if (ls.fail() || !try_read_trailing_name(ls, &r.info.name)) {
          parse_error("ARRAY");
          continue;
        }
        r.info.runtime = runtime != 0;
        raw.arrays.push_back(std::move(r));
      } else if (tag == "CHARE") {
        RawRecord<ChareInfo> r;
        std::int64_t array = 0, index = 0, home = 0;
        int runtime = 0;
        ls >> r.id >> array >> index >> home >> runtime;
        if (ls.fail() || !try_read_trailing_name(ls, &r.info.name)) {
          parse_error("CHARE");
          continue;
        }
        r.info.array = narrow_or_none(array);
        r.info.index = narrow_or_none(index);
        r.info.home = narrow_or_none(home);
        r.info.runtime = runtime != 0;
        raw.chares.push_back(std::move(r));
      } else if (tag == "ENTRY") {
        RawRecord<EntryInfo> r;
        std::int64_t sdag = 0, nwhen = 0;
        int runtime = 0;
        ls >> r.id >> runtime >> sdag >> nwhen;
        if (ls.fail() || nwhen < 0 || nwhen > kMaxPes) {
          parse_error("ENTRY");
          continue;
        }
        r.info.runtime = runtime != 0;
        r.info.sdag_serial = narrow_or_none(sdag);
        r.info.when_entries.resize(static_cast<std::size_t>(nwhen));
        std::int64_t w = 0;
        for (auto& we : r.info.when_entries) {
          ls >> w;
          we = narrow_or_none(w);
        }
        if (ls.fail() || !try_read_trailing_name(ls, &r.info.name)) {
          parse_error("ENTRY");
          continue;
        }
        raw.entries.push_back(std::move(r));
      } else if (tag == "END") {
        saw_end = true;
      } else {
        report.add(DiagCode::UnknownRecord, Severity::Warning,
                   "unknown sts record '" + tag + "' skipped", -1, lineno);
      }
    }
    if (!saw_end)
      report.add(DiagCode::TruncatedFile, Severity::Warning,
                 "sts ended before END", -1, lineno);
  }
  raw.num_procs = static_cast<std::int32_t>(num_pes);

  // Pass A: blocks and their CREATIONs, tolerating truncated/garbled
  // logs. Block and event ids are synthetic and gap-free; file creation
  // ids resolve through a map in pass B.
  struct PendingRecv {
    std::size_t block;       // index into raw.blocks
    TimeNs begin;
    std::int64_t src_event;  // file id of the matching creation, or -1
  };
  std::vector<PendingRecv> pending;
  std::map<std::int64_t, std::int64_t> send_of_file_id;

  for (ProcId pe = 0; pe < static_cast<ProcId>(num_pes); ++pe) {
    std::ifstream log(log_path(prefix, pe));
    if (!log) {
      report.add(DiagCode::MissingLog, Severity::Error,
                 "missing log for PE " + std::to_string(pe), pe);
      continue;
    }
    std::string line;
    std::int64_t lineno = 1;
    std::getline(log, line);
    if (line.rfind("PROJECTIONS", 0) != 0) {
      report.add(DiagCode::BadHeader, Severity::Error,
                 "log for PE " + std::to_string(pe) +
                     " has no PROJECTIONS header; file skipped",
                 pe, 1);
      continue;
    }

    std::ptrdiff_t open = -1;  // index into raw.blocks, -1 when closed
    TimeNs idle_begin = -1;
    bool saw_end = false;
    while (!saw_end && std::getline(log, line)) {
      ++lineno;
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      auto parse_error = [&](const char* what) {
        report.add(DiagCode::ParseError, Severity::Warning,
                   std::string("garbled ") + what + " record skipped", pe,
                   lineno);
      };
      if (tag == "BEGIN_PROCESSING") {
        std::int64_t entry = 0, chare = 0, src = 0;
        TimeNs time = 0;
        int has_recv = 0;
        ls >> entry >> time >> chare >> has_recv >> src;
        if (ls.fail()) {
          parse_error("BEGIN_PROCESSING");
          continue;
        }
        if (open >= 0) {
          // The previous block never saw its END_PROCESSING; leave it
          // end-less for repair() to close.
          report.add(DiagCode::UnmatchedScope, Severity::Warning,
                     "BEGIN_PROCESSING while a block is open", pe, lineno);
        }
        RawBlock b;
        b.id = static_cast<std::int64_t>(raw.blocks.size());
        b.chare = chare;
        b.proc = pe;
        b.entry = entry;
        b.begin = time;
        b.end = time;
        b.has_end = false;
        open = static_cast<std::ptrdiff_t>(raw.blocks.size());
        raw.blocks.push_back(b);
        if (has_recv != 0)
          pending.push_back(
              {static_cast<std::size_t>(open), time, src});
      } else if (tag == "CREATION") {
        std::int64_t file_id = 0, entry = 0;
        TimeNs time = 0;
        ls >> file_id >> entry >> time;
        (void)entry;
        if (ls.fail()) {
          parse_error("CREATION");
          continue;
        }
        if (open < 0) {
          report.add(DiagCode::UnmatchedScope, Severity::Warning,
                     "CREATION outside any block; dropped", pe, lineno);
          continue;
        }
        const std::int64_t ev = static_cast<std::int64_t>(raw.events.size());
        if (!send_of_file_id.emplace(file_id, ev).second) {
          report.add(DiagCode::DuplicateRecord, Severity::Warning,
                     "duplicate creation id " + std::to_string(file_id) +
                         "; later copy dropped",
                     pe, lineno);
          continue;
        }
        RawEvent e;
        e.id = ev;
        e.kind = EventKind::Send;
        e.time = time;
        e.block = static_cast<std::int64_t>(open);
        e.partner = kNone;
        raw.events.push_back(e);
      } else if (tag == "END_PROCESSING") {
        if (open < 0) {
          report.add(DiagCode::UnmatchedScope, Severity::Warning,
                     "END_PROCESSING with no open block", pe, lineno);
          continue;
        }
        TimeNs end = 0;
        ls >> end;
        if (ls.fail()) {
          parse_error("END_PROCESSING");
        } else {
          raw.blocks[static_cast<std::size_t>(open)].end = end;
          raw.blocks[static_cast<std::size_t>(open)].has_end = true;
        }
        open = -1;
      } else if (tag == "BEGIN_IDLE") {
        TimeNs t = 0;
        ls >> t;
        if (ls.fail()) {
          parse_error("BEGIN_IDLE");
          continue;
        }
        if (idle_begin >= 0)
          report.add(DiagCode::UnmatchedScope, Severity::Warning,
                     "BEGIN_IDLE while idle; earlier span dropped", pe,
                     lineno);
        idle_begin = t;
      } else if (tag == "END_IDLE") {
        TimeNs t = 0;
        ls >> t;
        if (ls.fail()) {
          parse_error("END_IDLE");
          continue;
        }
        if (idle_begin < 0) {
          report.add(DiagCode::UnmatchedScope, Severity::Warning,
                     "END_IDLE with no open idle span", pe, lineno);
          continue;
        }
        raw.idles.push_back(IdleSpan{pe, idle_begin, t});
        idle_begin = -1;
      } else if (tag == "END") {
        saw_end = true;
      } else {
        report.add(DiagCode::UnknownRecord, Severity::Warning,
                   "unknown log record '" + tag + "' skipped", pe, lineno);
      }
    }
    if (!saw_end)
      report.add(DiagCode::TruncatedFile, Severity::Warning,
                 "log for PE " + std::to_string(pe) +
                     " ended before END (crashed run?)",
                 pe, lineno);
    if (idle_begin >= 0)
      report.add(DiagCode::UnmatchedScope, Severity::Warning,
                 "BEGIN_IDLE never closed; span dropped", pe, lineno);
    // An end-less open block is expected after truncation; repair()
    // synthesizes its end from its events.
  }

  // Pass B: receives, in the order the strict reader emits them.
  for (const PendingRecv& pr : pending) {
    std::int64_t send = kNone;
    if (pr.src_event >= 0) {
      auto it = send_of_file_id.find(pr.src_event);
      if (it == send_of_file_id.end()) {
        report.add(DiagCode::DanglingReference, Severity::Warning,
                   "recv references creation " +
                       std::to_string(pr.src_event) +
                       " that never materialized; dependency dropped");
        raw.degraded_chares.push_back(raw.blocks[pr.block].chare);
      } else {
        send = it->second;
      }
    }
    RawEvent e;
    e.id = static_cast<std::int64_t>(raw.events.size());
    e.kind = EventKind::Recv;
    e.time = pr.begin;
    e.block = static_cast<std::int64_t>(pr.block);
    e.partner = send;
    raw.events.push_back(e);
  }

  repair(raw, report);
  return build_trace(std::move(raw), 0);
}

}  // namespace

Trace read_projections(const std::string& prefix,
                       const ReadOptions& options, RecoveryReport& report) {
  if (options.recover) return read_projections_recovering(prefix, report);
  return read_projections(prefix);
}

}  // namespace logstruct::trace
