#include "trace/builder.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace logstruct::trace {

ArrayId TraceBuilder::add_array(std::string name, bool runtime) {
  trace_.arrays_.push_back(ArrayInfo{std::move(name), runtime});
  return static_cast<ArrayId>(trace_.arrays_.size() - 1);
}

ChareId TraceBuilder::add_chare(std::string name, ArrayId array,
                                std::int32_t index, ProcId home,
                                bool runtime) {
  ChareInfo info;
  info.name = std::move(name);
  info.array = array;
  info.index = index;
  info.home = home;
  info.runtime = runtime;
  trace_.chares_.push_back(std::move(info));
  return static_cast<ChareId>(trace_.chares_.size() - 1);
}

EntryId TraceBuilder::add_entry(std::string name, bool runtime,
                                std::int32_t sdag_serial,
                                std::vector<EntryId> when_entries) {
  EntryInfo info;
  info.name = std::move(name);
  info.runtime = runtime;
  info.sdag_serial = sdag_serial;
  info.when_entries = std::move(when_entries);
  trace_.entries_.push_back(std::move(info));
  return static_cast<EntryId>(trace_.entries_.size() - 1);
}

BlockId TraceBuilder::begin_block(ChareId chare, ProcId proc, EntryId entry,
                                  TimeNs t) {
  LS_CHECK(chare >= 0 &&
           static_cast<std::size_t>(chare) < trace_.chares_.size());
  LS_CHECK(entry >= 0 &&
           static_cast<std::size_t>(entry) < trace_.entries_.size());
  SerialBlock blk;
  blk.chare = chare;
  blk.proc = proc;
  blk.entry = entry;
  blk.begin = t;
  blk.end = t;
  trace_.blocks_.push_back(std::move(blk));
  block_open_.push_back(true);
  return static_cast<BlockId>(trace_.blocks_.size() - 1);
}

EventId TraceBuilder::add_event(BlockId block, EventKind kind, TimeNs t) {
  LS_CHECK(block >= 0 &&
           static_cast<std::size_t>(block) < trace_.blocks_.size());
  LS_CHECK_MSG(block_open_[static_cast<std::size_t>(block)],
               "event added to a closed serial block");
  SerialBlock& blk = trace_.blocks_[static_cast<std::size_t>(block)];
  Event e;
  e.kind = kind;
  e.time = t;
  e.chare = blk.chare;
  e.proc = blk.proc;
  e.block = block;
  trace_.events_.push_back(e);
  return static_cast<EventId>(trace_.events_.size() - 1);
}

EventId TraceBuilder::add_recv(BlockId block, TimeNs t, EventId send) {
  EventId id = add_event(block, EventKind::Recv, t);
  SerialBlock& blk = trace_.blocks_[static_cast<std::size_t>(block)];
  // The first receive awakens the block; further receives are additional
  // satisfied dependencies (multi-dependency task models; Charm++ blocks
  // only ever have one).
  if (blk.trigger == kNone) blk.trigger = id;
  if (send != kNone) {
    LS_CHECK(send >= 0 &&
             static_cast<std::size_t>(send) < trace_.events_.size());
    Event& s = trace_.events_[static_cast<std::size_t>(send)];
    LS_CHECK(s.kind == EventKind::Send);
    trace_.events_[static_cast<std::size_t>(id)].partner = send;
    // First receiver becomes the send's partner; later receivers of a
    // broadcast are recovered at freeze from their own partner fields.
    if (s.partner == kNone) s.partner = id;
  }
  return id;
}

EventId TraceBuilder::add_send(BlockId block, TimeNs t) {
  return add_event(block, EventKind::Send, t);
}

void TraceBuilder::end_block(BlockId block, TimeNs t) {
  LS_CHECK(block >= 0 &&
           static_cast<std::size_t>(block) < trace_.blocks_.size());
  LS_CHECK(block_open_[static_cast<std::size_t>(block)]);
  SerialBlock& blk = trace_.blocks_[static_cast<std::size_t>(block)];
  LS_CHECK_MSG(t >= blk.begin, "block ends before it begins");
  blk.end = t;
  block_open_[static_cast<std::size_t>(block)] = false;
}

void TraceBuilder::add_idle(ProcId proc, TimeNs begin, TimeNs end) {
  if (end <= begin) return;  // zero-length idles are noise
  trace_.idles_.push_back(IdleSpan{proc, begin, end});
}

void TraceBuilder::mark_degraded(ChareId chare) {
  if (chare < 0 || static_cast<std::size_t>(chare) >= trace_.chares_.size())
    return;
  if (trace_.degraded_chare_.size() < trace_.chares_.size())
    trace_.degraded_chare_.resize(trace_.chares_.size(), 0);
  trace_.degraded_chare_[static_cast<std::size_t>(chare)] = 1;
}

CollectiveId TraceBuilder::begin_collective() {
  trace_.collectives_.emplace_back();
  return static_cast<CollectiveId>(trace_.collectives_.size() - 1);
}

EventId TraceBuilder::add_collective_send(CollectiveId c, BlockId block,
                                          TimeNs t) {
  EventId id = add_event(block, EventKind::Send, t);
  trace_.collectives_[static_cast<std::size_t>(c)].sends.push_back(id);
  return id;
}

EventId TraceBuilder::add_collective_recv(CollectiveId c, BlockId block,
                                          TimeNs t) {
  EventId id = add_event(block, EventKind::Recv, t);
  trace_.collectives_[static_cast<std::size_t>(c)].recvs.push_back(id);
  return id;
}

Trace TraceBuilder::finish(std::int32_t num_procs, int threads) {
  OBS_SPAN(span, "trace/ingest");
  span.attr("events", num_events());
  span.attr("blocks", static_cast<std::int64_t>(trace_.blocks_.size()));
  span.attr("chares", static_cast<std::int64_t>(trace_.chares_.size()));
  OBS_COUNTER_ADD("trace/builder/events", num_events());
  OBS_COUNTER_ADD("trace/builder/blocks",
                  static_cast<std::int64_t>(trace_.blocks_.size()));
  for (std::size_t b = 0; b < block_open_.size(); ++b) {
    LS_CHECK_MSG(!block_open_[b], "finish() with an open serial block");
  }
  trace_.num_procs_ = num_procs;
  if (!trace_.degraded_chare_.empty())
    trace_.degraded_chare_.resize(trace_.chares_.size(), 0);
  trace_.freeze(threads);
  Trace out = std::move(trace_);
  trace_ = Trace{};
  block_open_.clear();
  return out;
}

}  // namespace logstruct::trace
