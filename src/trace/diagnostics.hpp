#pragma once

/// \file diagnostics.hpp
/// Structured ingestion diagnostics and the RecoveryReport.
///
/// Real Charm++/Projections logs are dirty: per-PE files truncate on
/// crash, tracing-buffer overflow drops send/recv partners, clock skew
/// reorders records. The readers used to throw std::runtime_error at the
/// first malformed line; now every problem becomes a Diagnostic — a
/// machine-readable (code, severity, location) record — collected into a
/// RecoveryReport, and the readers salvage what they can (strict mode is
/// still available through ReadOptions). See docs/ROBUSTNESS.md for the
/// full taxonomy and the repair semantics.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/ids.hpp"

namespace logstruct::trace {

/// What went wrong (or what repair() did about it). Codes < kFirstRepair
/// are input problems found while reading; codes >= kFirstRepair are
/// fixes applied by repair() to make the salvage well-formed again.
enum class DiagCode : std::uint8_t {
  // --- reader diagnostics ---------------------------------------------
  BadHeader,          ///< magic/version line unusable; nothing salvageable
  UnknownRecord,      ///< unrecognized record tag; line skipped
  ParseError,         ///< record tag known but fields garbled; line skipped
  DuplicateRecord,    ///< same record id (or identical record) seen twice
  NonSequentialId,    ///< record id skips ahead (lines lost before it)
  TruncatedFile,      ///< stream ended before the end marker
  MissingLog,         ///< a per-PE log file is absent entirely
  DanglingReference,  ///< record points at an id that never materialized
  UnmatchedScope,     ///< BEGIN without END (or vice versa); scope dropped
  IoError,            ///< file could not be opened / written
  /// A recovered structure claim contradicted the vector-clock
  /// happened-before oracle (order::check_causality): a dependency edge
  /// stepped backwards, a phase placed outside its DAG order, or a leap
  /// that fails to ascend. Reported by the analysis layer, not the
  /// readers, but carried here so the structured Diagnostic machinery
  /// (counters, JSON reports, sidecars) covers it uniformly.
  CausalityViolation,
  // Blocked-storage (.lsblk) reader diagnostics: produced by recovering
  // opens of a torn or bit-rotted container (docs/STORAGE.md).
  BlockChecksumMismatch,  ///< a stored block failed its CRC32C; quarantined
  BlockUnreadable,        ///< a block read kept failing after retries
  ContainerTruncated,     ///< footer/directory missing — torn mid-freeze
  // --- repair fixes ----------------------------------------------------
  SynthesizedBlockEnd,   ///< open/invalid block span closed artificially
  DroppedDanglingPartner,///< send/recv partner repaired away to kNone
  DroppedRecord,         ///< unsalvageable record removed
  ClampedTimestamp,      ///< out-of-order time pulled into a legal range
  DeduplicatedRecord,    ///< exact duplicate record removed
  StubbedMetadata,       ///< placeholder array/chare/entry synthesized
};

/// Number of distinct DiagCode values (for fixed-size count tables).
inline constexpr int kNumDiagCodes =
    static_cast<int>(DiagCode::StubbedMetadata) + 1;

/// First code that denotes a repair fix rather than a reader diagnostic.
inline constexpr DiagCode kFirstRepair = DiagCode::SynthesizedBlockEnd;

/// Stable lower_snake_case name, used for obs counters
/// (`trace/recovery/<name>`) and JSON reports.
const char* diag_code_name(DiagCode code);

enum class Severity : std::uint8_t {
  Note,     ///< informational (e.g. a repair fix that loses nothing)
  Warning,  ///< data was lost or altered, but locally
  Error,    ///< a whole record/scope was unusable
  Fatal,    ///< nothing could be salvaged (bad header, missing file)
};

const char* severity_name(Severity severity);

/// One structured problem: what, how bad, and where. `pe` and `line` are
/// -1 when the location does not apply (e.g. whole-file problems).
struct Diagnostic {
  DiagCode code = DiagCode::ParseError;
  Severity severity = Severity::Error;
  ProcId pe = -1;          ///< per-PE log the problem was found in
  std::int64_t line = -1;  ///< 1-based line number within that stream
  std::string detail;      ///< human-readable specifics

  /// "error[parse_error] pe=3 line=17: garbled CREATION".
  [[nodiscard]] std::string to_string() const;
};

/// Everything a recovering read found and fixed. Per-code counts are
/// always exact; the diagnostic list is capped (max_stored) so a
/// pathological input cannot balloon memory — `dropped()` says how many
/// records were counted but not stored.
class RecoveryReport {
 public:
  explicit RecoveryReport(std::size_t max_stored = 256)
      : max_stored_(max_stored), counts_(kNumDiagCodes, 0) {}

  /// Record one diagnostic (count always; store up to the cap).
  void add(Diagnostic d);

  /// Convenience: add with positional fields.
  void add(DiagCode code, Severity severity, std::string detail,
           ProcId pe = -1, std::int64_t line = -1);

  /// Merge another report into this one (counts add; stored diagnostics
  /// append up to the cap).
  void merge(const RecoveryReport& other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::int64_t count(DiagCode code) const {
    return counts_[static_cast<std::size_t>(code)];
  }
  /// Total diagnostics recorded (stored or not).
  [[nodiscard]] std::int64_t total() const { return total_; }
  /// Diagnostics counted but not stored (over the cap).
  [[nodiscard]] std::int64_t dropped() const {
    return total_ - static_cast<std::int64_t>(diags_.size());
  }
  /// Repair fixes applied (sum over codes >= kFirstRepair).
  [[nodiscard]] std::int64_t repairs() const;
  /// Highest severity seen; Severity::Note when empty.
  [[nodiscard]] Severity worst() const { return worst_; }
  /// True when nothing at Error level or above was recorded — the trace
  /// may still carry Warning-level repairs.
  [[nodiscard]] bool ok() const { return worst_ < Severity::Error; }
  /// True when the input was beyond salvage (a Fatal diagnostic).
  [[nodiscard]] bool fatal() const { return worst_ == Severity::Fatal; }
  [[nodiscard]] bool empty() const { return total_ == 0; }

  /// Bump the `trace/recovery/<code>` obs counters by this report's
  /// per-code counts (so repairs are visible in sidecars/Chrome traces).
  void export_counters() const;

  /// JSON object: {"total":n,"worst":"...","counts":{...},
  /// "diagnostics":[...]} — the artifact CI uploads per fuzz run.
  [[nodiscard]] std::string to_json() const;

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t max_stored_;
  std::vector<Diagnostic> diags_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  Severity worst_ = Severity::Note;
};

/// How a reader should treat malformed input.
struct ReadOptions {
  /// false (default): strict — throw std::runtime_error at the first
  /// malformed record, exactly like the historical readers.
  /// true: recover — skip garbled lines, tolerate truncated tails, run
  /// trace::repair() on the salvage, and return a best-effort Trace plus
  /// the report; recovering reads never throw on malformed *content*
  /// (a Fatal report and an empty Trace is the worst case).
  bool recover = false;

  /// Cap on stored diagnostics (counts stay exact past it).
  std::size_t max_stored_diagnostics = 256;

  [[nodiscard]] static ReadOptions strict() { return {}; }
  [[nodiscard]] static ReadOptions recovering() {
    ReadOptions o;
    o.recover = true;
    return o;
  }
};

std::ostream& operator<<(std::ostream& os, const Diagnostic& d);

}  // namespace logstruct::trace
