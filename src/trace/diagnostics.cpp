#include "trace/diagnostics.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"

namespace logstruct::trace {

const char* diag_code_name(DiagCode code) {
  switch (code) {
    case DiagCode::BadHeader: return "bad_header";
    case DiagCode::UnknownRecord: return "unknown_record";
    case DiagCode::ParseError: return "parse_error";
    case DiagCode::DuplicateRecord: return "duplicate_record";
    case DiagCode::NonSequentialId: return "non_sequential_id";
    case DiagCode::TruncatedFile: return "truncated_file";
    case DiagCode::MissingLog: return "missing_log";
    case DiagCode::DanglingReference: return "dangling_reference";
    case DiagCode::UnmatchedScope: return "unmatched_scope";
    case DiagCode::IoError: return "io_error";
    case DiagCode::CausalityViolation: return "causality_violation";
    case DiagCode::BlockChecksumMismatch: return "block_checksum_mismatch";
    case DiagCode::BlockUnreadable: return "block_unreadable";
    case DiagCode::ContainerTruncated: return "container_truncated";
    case DiagCode::SynthesizedBlockEnd: return "synthesized_block_end";
    case DiagCode::DroppedDanglingPartner:
      return "dropped_dangling_partner";
    case DiagCode::DroppedRecord: return "dropped_record";
    case DiagCode::ClampedTimestamp: return "clamped_timestamp";
    case DiagCode::DeduplicatedRecord: return "deduplicated_record";
    case DiagCode::StubbedMetadata: return "stubbed_metadata";
  }
  return "unknown";
}

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    case Severity::Fatal: return "fatal";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << '[' << diag_code_name(code) << ']';
  if (pe >= 0) os << " pe=" << pe;
  if (line >= 0) os << " line=" << line;
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& d) {
  return os << d.to_string();
}

namespace {

/// Details often quote raw input; corrupted files can put arbitrary
/// bytes there. Keep stored details printable ASCII so reports stay
/// valid UTF-8 JSON and safe to echo to a terminal.
void sanitize(std::string& s) {
  for (char& c : s) {
    const auto b = static_cast<unsigned char>(c);
    if (b < 0x20 || b >= 0x7f) c = '?';
  }
}

}  // namespace

void RecoveryReport::add(Diagnostic d) {
  ++counts_[static_cast<std::size_t>(d.code)];
  ++total_;
  if (d.severity > worst_) worst_ = d.severity;
  if (diags_.size() < max_stored_) {
    sanitize(d.detail);
    diags_.push_back(std::move(d));
  }
}

void RecoveryReport::add(DiagCode code, Severity severity,
                         std::string detail, ProcId pe, std::int64_t line) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.detail = std::move(detail);
  d.pe = pe;
  d.line = line;
  add(std::move(d));
}

void RecoveryReport::merge(const RecoveryReport& other) {
  for (int c = 0; c < kNumDiagCodes; ++c)
    counts_[static_cast<std::size_t>(c)] +=
        other.counts_[static_cast<std::size_t>(c)];
  total_ += other.total_;
  if (other.worst_ > worst_) worst_ = other.worst_;
  for (const Diagnostic& d : other.diags_) {
    if (diags_.size() >= max_stored_) break;
    diags_.push_back(d);
  }
}

std::int64_t RecoveryReport::repairs() const {
  std::int64_t n = 0;
  for (int c = static_cast<int>(kFirstRepair); c < kNumDiagCodes; ++c)
    n += counts_[static_cast<std::size_t>(c)];
  return n;
}

void RecoveryReport::export_counters() const {
  obs::Registry& reg = obs::Registry::global();
  for (int c = 0; c < kNumDiagCodes; ++c) {
    const std::int64_t n = counts_[static_cast<std::size_t>(c)];
    if (n == 0) continue;
    reg.counter(std::string("trace/recovery/") +
                diag_code_name(static_cast<DiagCode>(c)))
        .add(n);
  }
  if (total_ > 0) {
    obs::log(obs::Level::Warn, "trace/recovery",
             "trace ingestion recovered from problems",
             {{"diagnostics", total_},
              {"repairs", repairs()},
              {"worst", severity_name(worst_)}});
  }
}

std::string RecoveryReport::to_json() const {
  obs::json::Writer w;
  w.begin_object();
  w.key("total");
  w.value(total_);
  w.key("repairs");
  w.value(repairs());
  w.key("worst");
  w.value(severity_name(worst_));
  w.key("dropped");
  w.value(dropped());
  w.key("counts");
  w.begin_object();
  for (int c = 0; c < kNumDiagCodes; ++c) {
    const std::int64_t n = counts_[static_cast<std::size_t>(c)];
    if (n == 0) continue;
    w.key(diag_code_name(static_cast<DiagCode>(c)));
    w.value(n);
  }
  w.end_object();
  w.key("diagnostics");
  w.begin_array();
  for (const Diagnostic& d : diags_) {
    w.begin_object();
    w.key("code");
    w.value(diag_code_name(d.code));
    w.key("severity");
    w.value(severity_name(d.severity));
    if (d.pe >= 0) {
      w.key("pe");
      w.value(static_cast<std::int64_t>(d.pe));
    }
    if (d.line >= 0) {
      w.key("line");
      w.value(d.line);
    }
    w.key("detail");
    w.value(d.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

std::string RecoveryReport::to_string() const {
  std::ostringstream os;
  os << "recovery report: " << total_ << " diagnostic(s), " << repairs()
     << " repair(s), worst=" << severity_name(worst_) << '\n';
  for (const Diagnostic& d : diags_) os << "  " << d.to_string() << '\n';
  if (dropped() > 0)
    os << "  ... and " << dropped() << " more (not stored)\n";
  return os.str();
}

}  // namespace logstruct::trace
