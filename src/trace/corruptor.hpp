#pragma once

/// \file corruptor.hpp
/// Deterministic fault injection for trace files.
///
/// The TraceCorruptor mutates serialized trace text (an .lstrace stream or
/// one Projections per-PE log) the way real-world failures do: dropped
/// lines (tracing-buffer overflow), truncated tails (crash mid-run),
/// duplicated lines (flaky flush + retry), perturbed timestamps (clock
/// skew/garbling), and raw byte flips (disk/transfer corruption). Every
/// mutation is driven by a SplitMix64 seed, so a (fault, seed) pair names
/// one exact corrupted input forever — property tests and CI fuzz sweeps
/// replay identical bytes on every machine.
///
/// The corruptor reports what it actually did (CorruptionSummary), which
/// the fault-injection property tests cross-check against the
/// RecoveryReport produced when the corrupted text is re-read in
/// ReadOptions::recovering() mode.

#include <cstdint>
#include <string>
#include <vector>

namespace logstruct::trace {

/// One class of injected fault. Matches the corruption matrix in
/// docs/ROBUSTNESS.md and the CI fuzz smoke job. The first five mutate
/// trace *text* (.lstrace / Projections logs); the Lsblk* kinds mutate a
/// binary `.lsblk` container image (storage/format.hpp) and are no-ops
/// on bytes that do not parse as one.
enum class FaultKind : std::uint8_t {
  DropLines,          ///< remove interior lines wholesale
  TruncateTail,       ///< cut the file mid-stream (always loses "end")
  DuplicateLines,     ///< repeat interior lines immediately
  PerturbTimestamps,  ///< add large deltas to numeric time fields
  FlipBytes,          ///< flip random bits in random bytes
  LsblkFlipBlock,     ///< flip bits inside .lsblk data blocks (bit rot)
  LsblkTruncateDir,   ///< cut the .lsblk tail mid-directory (torn commit)
  LsblkZeroFooter,    ///< zero the .lsblk commit footer (lost last write)
};

/// Count of the text-oriented kinds (the classic fuzz matrix).
inline constexpr int kNumTextFaultKinds =
    static_cast<int>(FaultKind::FlipBytes) + 1;
inline constexpr int kNumFaultKinds =
    static_cast<int>(FaultKind::LsblkZeroFooter) + 1;

/// True for the kinds that operate on a binary `.lsblk` image.
[[nodiscard]] constexpr bool is_lsblk_fault(FaultKind kind) {
  return static_cast<int>(kind) >= kNumTextFaultKinds;
}

/// Stable lower_snake_case name (CLI values, report keys).
const char* fault_kind_name(FaultKind kind);

/// Parse a fault name back; returns false on unknown names.
bool parse_fault_kind(const std::string& name, FaultKind* out);

/// What a corruption pass actually changed.
struct CorruptionSummary {
  FaultKind kind = FaultKind::DropLines;
  std::uint64_t seed = 0;
  std::int64_t lines_dropped = 0;
  std::int64_t lines_duplicated = 0;
  std::int64_t bytes_truncated = 0;
  std::int64_t timestamps_perturbed = 0;
  std::int64_t bytes_flipped = 0;
  std::int64_t footer_zeroed = 0;  ///< 1 when a commit footer was wiped

  /// Total individual mutations applied.
  [[nodiscard]] std::int64_t total() const {
    return lines_dropped + lines_duplicated + (bytes_truncated > 0 ? 1 : 0) +
           timestamps_perturbed + bytes_flipped + footer_zeroed;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Deterministic, seed-driven text corruptor.
class TraceCorruptor {
 public:
  /// `intensity` scales how much damage one pass does, in [0, 1]; the
  /// default injects a handful of faults into a typical golden trace.
  explicit TraceCorruptor(std::uint64_t seed, double intensity = 0.05);

  /// Apply one fault class to `text`, returning the corrupted copy.
  /// Guaranteed to change the text whenever the input has at least
  /// three lines (the header and footer are preserved by line-oriented
  /// faults so the damage lands in the body, where recovery is
  /// interesting — FlipBytes may hit anything).
  std::string corrupt(const std::string& text, FaultKind kind,
                      CorruptionSummary* summary = nullptr);

 private:
  std::string drop_lines(std::vector<std::string> lines,
                         CorruptionSummary& s);
  std::string truncate_tail(const std::string& text, CorruptionSummary& s);
  std::string duplicate_lines(std::vector<std::string> lines,
                              CorruptionSummary& s);
  std::string perturb_timestamps(std::vector<std::string> lines,
                                 CorruptionSummary& s);
  std::string flip_bytes(std::string text, CorruptionSummary& s);
  std::string lsblk_flip_block(std::string bytes, CorruptionSummary& s);
  std::string lsblk_truncate_dir(const std::string& bytes,
                                 CorruptionSummary& s);
  std::string lsblk_zero_footer(std::string bytes, CorruptionSummary& s);

  std::uint64_t seed_;
  double intensity_;
  std::uint64_t stream_ = 0;  ///< distinct Rng stream per corrupt() call
};

}  // namespace logstruct::trace
