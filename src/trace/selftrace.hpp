#pragma once

/// \file selftrace.hpp
/// Dogfooding bridge: convert the library's own pipeline spans
/// (obs::PipelineTracer) into a trace::Trace, so the structure-recovery
/// pipeline and the ASCII/HTML viewers can be pointed at the tool itself.
///
/// Mapping:
///  - each distinct span name becomes a chare (the "self" array);
///  - each span becomes one serial block [begin_ns, end_ns];
///  - a parent span sends to each child at the child's begin time
///    (Send in the parent block, matched Recv opening the child block);
///  - rows (procs) are thread x nesting-depth lanes so sibling blocks
///    never overlap on one proc — the flame-graph layout.
///
/// Open spans are clamped to the snapshot horizon.

#include <span>

#include "obs/pipeline.hpp"
#include "trace/trace.hpp"

namespace logstruct::trace {

/// Convert recorded spans. Returns an empty trace for an empty snapshot.
Trace spans_to_trace(std::span<const obs::Span> spans);

/// Convenience: snapshot the global tracer and convert.
Trace self_trace();

}  // namespace logstruct::trace
