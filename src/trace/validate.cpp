#include "trace/validate.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"

namespace logstruct::trace {

namespace {

template <typename... Args>
void problem(std::vector<std::string>& out, Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  out.push_back(os.str());
}

}  // namespace

std::vector<std::string> validate(const Trace& trace) {
  OBS_SPAN_ANON("trace/validate");
  std::vector<std::string> out;

  // Events: ranges, containment, partner symmetry.
  for (EventId id = 0; id < trace.num_events(); ++id) {
    const Event& e = trace.event(id);
    if (e.block == kNone || e.block >= trace.num_blocks()) {
      problem(out, "event ", id, " has invalid block ", e.block);
      continue;
    }
    const SerialBlock& blk = trace.block(e.block);
    if (e.chare != blk.chare)
      problem(out, "event ", id, " chare differs from its block's chare");
    if (e.proc != blk.proc)
      problem(out, "event ", id, " proc differs from its block's proc");
    if (e.time < blk.begin || e.time > blk.end)
      problem(out, "event ", id, " at t=", e.time, " outside block span [",
              blk.begin, ",", blk.end, "]");
    const auto blk_events = trace.events_of_block(e.block);
    if (std::find(blk_events.begin(), blk_events.end(), id) ==
        blk_events.end())
      problem(out, "event ", id, " missing from its block's event list");

    if (e.partner != kNone) {
      if (e.partner < 0 || e.partner >= trace.num_events()) {
        problem(out, "event ", id, " has out-of-range partner ", e.partner);
        continue;
      }
      const Event& p = trace.event(e.partner);
      if (e.kind == p.kind)
        problem(out, "event ", id, " partnered with same-kind event ",
                e.partner);
      if (e.kind == EventKind::Recv) {
        if (p.time > e.time)
          problem(out, "recv ", id, " occurs before its send ", e.partner);
        auto rcvs = trace.receivers(e.partner);
        if (std::find(rcvs.begin(), rcvs.end(), id) == rcvs.end())
          problem(out, "recv ", id, " not among receivers of its send");
      }
    }
  }

  // Blocks: spans, per-proc non-overlap, triggers.
  for (BlockId b = 0; b < trace.num_blocks(); ++b) {
    const SerialBlock& blk = trace.block(b);
    if (blk.end < blk.begin)
      problem(out, "block ", b, " ends before it begins");
    if (blk.trigger != kNone) {
      const Event& t = trace.event(blk.trigger);
      if (t.kind != EventKind::Recv)
        problem(out, "block ", b, " trigger is not a recv");
      if (t.block != b)
        problem(out, "block ", b, " trigger belongs to another block");
    }
    const auto blk_events = trace.events_of_block(b);
    for (std::size_t i = 1; i < blk_events.size(); ++i) {
      if (trace.event(blk_events[i - 1]).time >
          trace.event(blk_events[i]).time)
        problem(out, "block ", b, " events not time-sorted");
    }
  }
  for (ProcId p = 0; p < trace.num_procs(); ++p) {
    auto list = trace.blocks_of_proc(p);
    for (std::size_t i = 1; i < list.size(); ++i) {
      const SerialBlock& prev = trace.block(list[i - 1]);
      const SerialBlock& cur = trace.block(list[i]);
      if (cur.begin < prev.end)
        problem(out, "blocks ", list[i - 1], " and ", list[i],
                " overlap on proc ", p);
    }
  }

  // Idle spans.
  {
    std::vector<IdleSpan> idles(trace.idles().begin(), trace.idles().end());
    std::sort(idles.begin(), idles.end(), [](const IdleSpan& a,
                                             const IdleSpan& b) {
      if (a.proc != b.proc) return a.proc < b.proc;
      return a.begin < b.begin;
    });
    for (std::size_t i = 0; i < idles.size(); ++i) {
      if (idles[i].end <= idles[i].begin)
        problem(out, "idle span ", i, " has non-positive length");
      if (i > 0 && idles[i].proc == idles[i - 1].proc &&
          idles[i].begin < idles[i - 1].end)
        problem(out, "idle spans overlap on proc ", idles[i].proc);
    }
  }

  // Collectives.
  for (std::size_t c = 0; c < trace.collectives().size(); ++c) {
    const Collective& coll = trace.collectives()[c];
    for (EventId s : coll.sends) {
      if (trace.event(s).kind != EventKind::Send)
        problem(out, "collective ", c, " send member ", s, " is not a send");
    }
    for (EventId r : coll.recvs) {
      if (trace.event(r).kind != EventKind::Recv)
        problem(out, "collective ", c, " recv member ", r, " is not a recv");
    }
  }

  if (!out.empty()) {
    obs::log(obs::Level::Warn, "trace/validate", "trace failed validation",
             {{"problems", static_cast<std::int64_t>(out.size())},
              {"first", out.front()}});
  }
  return out;
}

bool validate_cli(const util::Flags& flags, const Trace& trace,
                  const std::string& label) {
  if (!flags.defined("validate") || !flags.get_bool("validate")) return true;
  const std::vector<std::string> problems = validate(trace);
  if (problems.empty()) {
    std::fprintf(stderr, "[validate] %s: ok (%d events, %d blocks)\n",
                 label.c_str(), trace.num_events(), trace.num_blocks());
    return true;
  }
  std::fprintf(stderr, "[validate] %s: %zu problem(s)\n", label.c_str(),
               problems.size());
  for (const std::string& p : problems)
    std::fprintf(stderr, "[validate] %s: %s\n", label.c_str(), p.c_str());
  return false;
}

}  // namespace logstruct::trace
