#pragma once

/// \file jacobi2d.hpp
/// Jacobi 2D heat-distribution proxy (Charm++ model).
///
/// The running example of the paper: a 2D chare array performs halo
/// exchanges with its 4-neighborhood, computes, and contributes to a
/// max-norm reduction whose broadcast starts the next iteration. Written
/// SDAG-style: `serial_0` (send halos) runs on resume, `serial_1` (compute
/// + contribute) is guarded by `when recvHalo()`, so the traces exercise
/// the §2.1 absorption and serial-adjacency inference.

#include <cstdint>

#include "sim/charm/config.hpp"
#include "sim/charm/loadbalancer.hpp"
#include "trace/trace.hpp"

namespace logstruct::apps {

struct Jacobi2DConfig {
  std::int32_t chares_x = 8;
  std::int32_t chares_y = 8;
  std::int32_t num_pes = 8;
  std::int32_t iterations = 2;
  std::uint64_t seed = 1;

  /// Base compute cost of one chare-iteration and its uniform noise.
  std::int64_t compute_ns = 20000;
  std::int64_t compute_noise_ns = 2000;

  /// Inject one long computation (paper Figs. 14/15): chare `slow_chare`
  /// multiplies its compute by slow_factor during iteration
  /// `slow_iteration` (0-based; -1 disables).
  std::int32_t slow_chare = -1;
  std::int32_t slow_iteration = -1;
  double slow_factor = 4.0;
  /// Make slow_chare slow in EVERY iteration instead (a persistent
  /// hotspot — the case measurement-based load balancing fixes).
  bool slow_every_iteration = false;

  /// Paper §5 toggle: record process-local reduction events.
  bool trace_local_reductions = true;

  /// Rotate every chare to the next PE at the start of this 0-based
  /// iteration (-1: never). Exercises task migration: logically linked
  /// tasks then span processors, which the chare-centric structure
  /// handles and the process-centric view cannot.
  std::int32_t migrate_at_iteration = -1;

  /// Run an AtSync load-balancing step instead of the reduction at the end
  /// of this 0-based iteration (-1: never). The LBManager collects every
  /// chare's measured load, reassigns placements with lb_strategy, and its
  /// resume broadcast starts the next iteration.
  std::int32_t lb_at_iteration = -1;
  sim::charm::LbStrategy lb_strategy = sim::charm::LbStrategy::Greedy;

  sim::charm::Placement placement = sim::charm::Placement::Block;
};

/// Run the simulation and return its event trace.
trace::Trace run_jacobi2d(const Jacobi2DConfig& cfg);

}  // namespace logstruct::apps
