#include "apps/nasbt.hpp"
#include "sim/mpi/mpisim.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace logstruct::apps {

sim::mpi::Program build_nasbt_program(const NasBtConfig& cfg) {
  const std::int32_t g = cfg.grid;
  LS_CHECK(g > 1 && cfg.iterations > 0);
  const std::int32_t n = g * g;
  sim::mpi::Program prog(n);
  util::Rng rng(cfg.seed);
  std::vector<util::Rng> rank_rng;
  for (std::int32_t r = 0; r < n; ++r)
    rank_rng.push_back(rng.fork(static_cast<std::uint64_t>(r)));

  auto work = [&](std::int32_t r) {
    prog.compute(r, cfg.compute_ns +
                        rank_rng[static_cast<std::size_t>(r)].uniform_range(
                            0, cfg.compute_noise_ns));
  };

  // One directional sweep: each pipeline stage receives from the upstream
  // neighbor, computes, forwards downstream.
  //   dir: 0 = rows left->right, 1 = rows right->left,
  //        2 = cols top->bottom, 3 = cols bottom->top.
  auto sweep = [&](std::int32_t dir, std::int32_t tag) {
    for (std::int32_t r = 0; r < n; ++r) {
      std::int32_t x = r % g, y = r / g;
      std::int32_t up = -1, down = -1;  // upstream / downstream rank
      switch (dir) {
        case 0:
          up = x > 0 ? r - 1 : -1;
          down = x + 1 < g ? r + 1 : -1;
          break;
        case 1:
          up = x + 1 < g ? r + 1 : -1;
          down = x > 0 ? r - 1 : -1;
          break;
        case 2:
          up = y > 0 ? r - g : -1;
          down = y + 1 < g ? r + g : -1;
          break;
        default:
          up = y + 1 < g ? r + g : -1;
          down = y > 0 ? r - g : -1;
          break;
      }
      if (up >= 0) prog.recv(r, up, tag);
      work(r);
      if (down >= 0) prog.send(r, down, tag, /*bytes=*/512);
    }
  };

  for (std::int32_t it = 0; it < cfg.iterations; ++it) {
    std::int32_t tag = it * 4;
    sweep(0, tag + 0);  // x-solve forward
    sweep(1, tag + 1);  // x-solve backward
    sweep(2, tag + 2);  // y-solve forward
    sweep(3, tag + 3);  // y-solve backward
  }
  return prog;
}

trace::Trace run_nasbt_mpi(const NasBtConfig& cfg) {
  sim::mpi::MpiConfig mc;
  mc.seed = cfg.seed;
  return sim::mpi::simulate(build_nasbt_program(cfg), mc);
}

}  // namespace logstruct::apps
