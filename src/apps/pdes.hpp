#pragma once

/// \file pdes.hpp
/// PDES (parallel discrete-event simulation) mini-app (paper Fig. 24).
///
/// Per window, every chare of the simulation array processes a batch of
/// events and exchanges them with random peers; when a chare is locally
/// done it *calls the completion detector* — per-PE runtime chares that
/// count completions, combine over a tree, and broadcast "window done".
///
/// Crucially, the call into the detector is a control dependency that the
/// Charm++ tracing framework does not record (trace_detector_calls=false
/// by default). The paper shows that without it the detector (gray) phase
/// cannot be ordered after the simulation (mustard) phase and overlaps its
/// global steps; flipping the flag demonstrates the fix.

#include <cstdint>

#include "sim/charm/config.hpp"
#include "trace/trace.hpp"

namespace logstruct::apps {

struct PdesConfig {
  std::int32_t num_chares = 16;
  std::int32_t num_pes = 4;
  std::int32_t windows = 2;
  /// Events each chare injects per window (sent to seeded-random peers).
  std::int32_t events_per_window = 3;
  std::uint64_t seed = 1;
  std::int64_t event_compute_ns = 5000;

  /// Record the chare -> completion-detector dependency. The paper's
  /// traces lack it (false); true shows the repaired structure.
  bool trace_detector_calls = false;
  sim::charm::Placement placement = sim::charm::Placement::Block;
};

trace::Trace run_pdes(const PdesConfig& cfg);

}  // namespace logstruct::apps
