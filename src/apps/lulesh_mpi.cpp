#include "apps/lulesh.hpp"
#include "sim/mpi/mpisim.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace logstruct::apps {

namespace {

/// Face neighbors of rank (x,y,z) in an nx*ny*nz grid, fixed order.
std::vector<std::int32_t> face_neighbors(const LuleshConfig& cfg,
                                         std::int32_t r) {
  std::int32_t x = r % cfg.nx;
  std::int32_t y = (r / cfg.nx) % cfg.ny;
  std::int32_t z = r / (cfg.nx * cfg.ny);
  std::vector<std::int32_t> out;
  auto add = [&](std::int32_t dx, std::int32_t dy, std::int32_t dz) {
    std::int32_t xx = x + dx, yy = y + dy, zz = z + dz;
    if (xx >= 0 && xx < cfg.nx && yy >= 0 && yy < cfg.ny && zz >= 0 &&
        zz < cfg.nz)
      out.push_back((zz * cfg.ny + yy) * cfg.nx + xx);
  };
  add(-1, 0, 0);
  add(1, 0, 0);
  add(0, -1, 0);
  add(0, 1, 0);
  add(0, 0, -1);
  add(0, 0, 1);
  return out;
}

}  // namespace

sim::mpi::Program build_lulesh_mpi_program(const LuleshConfig& cfg) {
  LS_CHECK(cfg.nx > 0 && cfg.ny > 0 && cfg.nz > 0 && cfg.iterations > 0);
  const std::int32_t n = cfg.nx * cfg.ny * cfg.nz;
  sim::mpi::Program prog(n);
  util::Rng rng(cfg.seed);

  // Per-rank compute noise streams, deterministic in rank order.
  std::vector<util::Rng> rank_rng;
  rank_rng.reserve(static_cast<std::size_t>(n));
  for (std::int32_t r = 0; r < n; ++r) rank_rng.push_back(rng.fork(
      static_cast<std::uint64_t>(r)));

  auto exchange = [&](std::int32_t r, std::int32_t tag) {
    for (std::int32_t nb : face_neighbors(cfg, r))
      prog.send(r, nb, tag, /*bytes=*/1024);
    for (std::int32_t nb : face_neighbors(cfg, r)) prog.recv(r, nb, tag);
  };

  for (std::int32_t r = 0; r < n; ++r) {
    // Problem setup: mesh construction plus one halo round.
    prog.compute(r, 8000 + rank_rng[static_cast<std::size_t>(r)]
                              .uniform_range(0, 2000));
    exchange(r, /*tag=*/0);
  }
  for (std::int32_t it = 1; it <= cfg.iterations; ++it) {
    for (std::int32_t r = 0; r < n; ++r) {
      auto& rr = rank_rng[static_cast<std::size_t>(r)];
      // The MPI implementation runs three point-to-point phases per
      // iteration (paper Fig. 16a) before the dt allreduce.
      for (std::int32_t phase = 0; phase < 3; ++phase) {
        prog.compute(r, cfg.compute_ns / 3 +
                            rr.uniform_range(0, cfg.compute_noise_ns));
        exchange(r, it * 3 + phase);
      }
      if (!cfg.tree_collectives) prog.allreduce(r);
    }
    if (cfg.tree_collectives)
      prog.tree_allreduce(1000000 + it * 2, /*bytes=*/16);
  }
  return prog;
}

trace::Trace run_lulesh_mpi(const LuleshConfig& cfg) {
  sim::mpi::MpiConfig mc;
  mc.seed = cfg.seed;
  return sim::mpi::simulate(build_lulesh_mpi_program(cfg), mc);
}

}  // namespace logstruct::apps
