#pragma once

/// \file lulesh.hpp
/// LULESH hydrodynamics proxy skeletons (paper §6.1, Figs. 16-19).
///
/// Communication shape reproduced from the paper's observations:
///  - MPI:    setup phase, then per iteration {three point-to-point face
///            phases} + allreduce (dt).
///  - Charm++: setup phase, then per iteration {two point-to-point phases
///            with mirrored communication patterns} + allreduce through the
///            runtime reduction chares.
/// Chares/ranks form a 3D grid (8 = 2^3, 64 = 4^3, 13824 = 24^3, matching
/// the paper's chare counts); each exchanges with its up-to-6 face
/// neighbors.

#include <cstdint>

#include "sim/charm/config.hpp"
#include "sim/mpi/program.hpp"
#include "trace/trace.hpp"

namespace logstruct::apps {

struct LuleshConfig {
  /// Chares (or ranks) per grid dimension; total = nx*ny*nz.
  std::int32_t nx = 2, ny = 2, nz = 2;
  std::int32_t num_pes = 2;  ///< Charm++ flavor only
  std::int32_t iterations = 8;
  std::uint64_t seed = 1;
  std::int64_t compute_ns = 30000;
  std::int64_t compute_noise_ns = 3000;
  bool trace_local_reductions = true;  ///< Charm++ flavor only
  /// MPI flavor: emit the dt allreduce as explicit reduce+broadcast tree
  /// messages instead of one abstracted collective call (§7.1's
  /// abstraction-level choice).
  bool tree_collectives = false;
  sim::charm::Placement placement = sim::charm::Placement::Block;
};

/// Charm++-model run: returns the trace.
trace::Trace run_lulesh_charm(const LuleshConfig& cfg);

/// MPI-model run (num_pes ignored; one rank per grid point).
trace::Trace run_lulesh_mpi(const LuleshConfig& cfg);

/// The MPI program itself (exposed for tests).
sim::mpi::Program build_lulesh_mpi_program(const LuleshConfig& cfg);

}  // namespace logstruct::apps
