#include <vector>

#include "apps/lulesh.hpp"
#include "sim/charm/chare.hpp"
#include "sim/charm/runtime.hpp"
#include "util/check.hpp"

namespace logstruct::apps {

namespace {

using sim::charm::Callback;
using sim::charm::MsgData;
using sim::charm::ReducerOp;
using sim::charm::Runtime;
using trace::EntryId;

struct LuleshEntries {
  EntryId main_start;
  EntryId init;          ///< broadcast from main: send setup halos
  EntryId recv_setup;    ///< setup halo (when-entry of serial_setup)
  EntryId serial_setup;  ///< SDAG serial_0: finish setup, start iter 1
  EntryId recv_face_a;   ///< phase-A face halo
  EntryId serial_a;      ///< SDAG serial_1: compute, send phase-B halos
  EntryId recv_face_b;   ///< phase-B face halo
  EntryId serial_b;      ///< SDAG serial_2: compute, contribute dt
  EntryId resume;        ///< dt broadcast: next iteration
};

class LuleshChare final : public sim::charm::Chare {
 public:
  LuleshChare(const LuleshConfig& cfg, const LuleshEntries& e)
      : cfg_(&cfg), e_(&e) {}

  void on_message(EntryId entry, const MsgData& data) override {
    if (entry == e_->init) {
      on_init();
    } else if (entry == e_->recv_setup) {
      on_recv_setup();
    } else if (entry == e_->serial_setup) {
      on_serial_setup();
    } else if (entry == e_->recv_face_a) {
      on_recv_face(data, face_a_, e_->serial_a);
    } else if (entry == e_->serial_a) {
      on_serial_a();
    } else if (entry == e_->recv_face_b) {
      on_recv_face(data, face_b_, e_->serial_b);
    } else if (entry == e_->serial_b) {
      on_serial_b();
    } else if (entry == e_->resume) {
      on_resume();
    } else {
      LS_CHECK_MSG(false, "lulesh: unknown entry");
    }
  }

 private:
  [[nodiscard]] std::int32_t gx() const { return index() % cfg_->nx; }
  [[nodiscard]] std::int32_t gy() const {
    return (index() / cfg_->nx) % cfg_->ny;
  }
  [[nodiscard]] std::int32_t gz() const {
    return index() / (cfg_->nx * cfg_->ny);
  }
  [[nodiscard]] std::int32_t flat(std::int32_t x, std::int32_t y,
                                  std::int32_t z) const {
    return (z * cfg_->ny + y) * cfg_->nx + x;
  }

  /// Up-to-6 face neighbors; `mirrored` reverses the enumeration order
  /// (the paper's two per-iteration phases have mirrored patterns).
  [[nodiscard]] std::vector<std::int32_t> face_neighbors(bool mirrored)
      const {
    std::vector<std::int32_t> out;
    auto add = [&](std::int32_t dx, std::int32_t dy, std::int32_t dz) {
      std::int32_t x = gx() + dx, y = gy() + dy, z = gz() + dz;
      if (x >= 0 && x < cfg_->nx && y >= 0 && y < cfg_->ny && z >= 0 &&
          z < cfg_->nz)
        out.push_back(flat(x, y, z));
    };
    if (!mirrored) {
      add(-1, 0, 0); add(1, 0, 0);
      add(0, -1, 0); add(0, 1, 0);
      add(0, 0, -1); add(0, 0, 1);
    } else {
      add(0, 0, 1); add(0, 0, -1);
      add(0, 1, 0); add(0, -1, 0);
      add(1, 0, 0); add(-1, 0, 0);
    }
    return out;
  }

  void send_faces(EntryId entry, bool mirrored) {
    for (std::int32_t nb : face_neighbors(mirrored)) {
      MsgData halo;
      halo.ints = {iter_};
      rt().send(rt().array_element(array(), nb), entry, std::move(halo),
                /*bytes=*/1024);
    }
  }

  [[nodiscard]] std::int32_t degree() const {
    return static_cast<std::int32_t>(face_neighbors(false).size());
  }

  void compute_block() {
    rt().compute(cfg_->compute_ns +
                 rt().app_rng().uniform_range(0, cfg_->compute_noise_ns));
  }

  void on_init() {
    rt().compute(2000);  // mesh construction
    send_faces(e_->recv_setup, false);
    if (degree() == 0) rt().schedule_immediate(e_->serial_setup);
  }

  void on_recv_setup() {
    rt().compute(300);
    if (++setup_seen_ == degree())
      rt().schedule_immediate(e_->serial_setup);
  }

  void on_serial_setup() {
    rt().compute(5000);  // initial state
    iter_ = 1;
    send_faces(e_->recv_face_a, false);
    check_faces(face_a_, e_->serial_a);
  }

  void on_recv_face(const MsgData& data, std::vector<std::int32_t>& seen,
                    EntryId serial) {
    rt().compute(300);
    auto it = static_cast<std::size_t>(data.ints.at(0));
    if (seen.size() <= it) seen.resize(it + 1, 0);
    ++seen[it];
    check_faces(seen, serial);
  }

  void check_faces(std::vector<std::int32_t>& seen, EntryId serial) {
    if (iter_ < 1 || iter_ > cfg_->iterations) return;
    auto it = static_cast<std::size_t>(iter_);
    if (seen.size() <= it) seen.resize(it + 1, 0);
    // Guard flags keep a serial from double-firing when the last halo
    // arrived before this iteration started.
    bool& fired = serial == e_->serial_a ? fired_a_ : fired_b_;
    bool stage_open = serial == e_->serial_a ? stage_ == Stage::A
                                             : stage_ == Stage::B;
    if (!fired && stage_open && seen[it] == degree()) {
      fired = true;
      rt().schedule_immediate(serial);
    }
  }

  void on_serial_a() {
    compute_block();  // stress / hourglass partials
    stage_ = Stage::B;
    fired_b_ = false;
    send_faces(e_->recv_face_b, true);
    check_faces(face_b_, e_->serial_b);
  }

  void on_serial_b() {
    compute_block();  // position / energy update
    stage_ = Stage::Reduce;
    rt().contribute(1.0e-3, ReducerOp::Min,
                    Callback::broadcast(array(), e_->resume));
  }

  void on_resume() {
    ++iter_;
    if (iter_ > cfg_->iterations) return;
    stage_ = Stage::A;
    fired_a_ = false;
    send_faces(e_->recv_face_a, false);
    check_faces(face_a_, e_->serial_a);
  }

  enum class Stage { Setup, A, B, Reduce };

  const LuleshConfig* cfg_;
  const LuleshEntries* e_;
  std::int32_t iter_ = 0;
  std::int32_t setup_seen_ = 0;
  std::vector<std::int32_t> face_a_, face_b_;
  Stage stage_ = Stage::A;
  bool fired_a_ = false, fired_b_ = false;
};

class LuleshMain final : public sim::charm::Chare {
 public:
  LuleshMain(const LuleshEntries& e, trace::ArrayId array)
      : e_(&e), array_(array) {}

  void on_message(EntryId entry, const MsgData&) override {
    LS_CHECK(entry == e_->main_start);
    rt().compute(1000);
    rt().broadcast(array_, e_->init);
  }

 private:
  const LuleshEntries* e_;
  trace::ArrayId array_;
};

}  // namespace

trace::Trace run_lulesh_charm(const LuleshConfig& cfg) {
  LS_CHECK(cfg.nx > 0 && cfg.ny > 0 && cfg.nz > 0 && cfg.iterations > 0);
  sim::charm::RuntimeConfig rc;
  rc.num_pes = cfg.num_pes;
  rc.seed = cfg.seed;
  rc.trace_local_reductions = cfg.trace_local_reductions;
  Runtime rt(rc);

  LuleshEntries e;
  e.main_start = rt.register_entry("main");
  e.init = rt.register_entry("init");
  e.recv_setup = rt.register_entry("recvSetup");
  e.serial_setup = rt.register_entry("serial_0_setup", false, 0,
                                     {e.recv_setup});
  e.recv_face_a = rt.register_entry("recvFaceA");
  e.serial_a = rt.register_entry("serial_1_stress", false, 1,
                                 {e.recv_face_a});
  e.recv_face_b = rt.register_entry("recvFaceB");
  e.serial_b = rt.register_entry("serial_2_update", false, 2,
                                 {e.recv_face_b});
  e.resume = rt.register_entry("resume");

  trace::ArrayId array = rt.create_array<LuleshChare>(
      "lulesh", cfg.nx * cfg.ny * cfg.nz, cfg.placement, cfg, e);
  trace::ChareId main = rt.create_singleton<LuleshMain>(
      "main", /*pe=*/0, /*runtime=*/false, e, array);

  rt.start(main, e.main_start);
  return rt.run();
}

}  // namespace logstruct::apps
