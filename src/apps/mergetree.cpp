#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/mergetree.hpp"
#include "sim/mpi/mpisim.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace logstruct::apps {

sim::mpi::Program build_mergetree_program(const MergeTreeConfig& cfg) {
  const std::int32_t n = cfg.num_ranks;
  LS_CHECK_MSG(n > 0 && (n & (n - 1)) == 0,
               "merge tree needs a power-of-two rank count");
  sim::mpi::Program prog(n);
  util::Rng rng(cfg.seed);

  // Data-dependent local pass: heavy-tailed durations so whole subtrees
  // run late (the load imbalance the paper points out in Fig. 10).
  std::vector<trace::TimeNs> local(static_cast<std::size_t>(n));
  for (std::int32_t r = 0; r < n; ++r) {
    double u = rng.uniform01();
    double factor = 1.0 + cfg.imbalance * u * u * u;  // tail-heavy
    local[static_cast<std::size_t>(r)] = static_cast<trace::TimeNs>(
        static_cast<double>(cfg.base_compute_ns) * factor);
  }

  // The algorithm merges whichever partial tree arrives first (waitany
  // style) — the source of the irregular receive order Fig. 10 shows.
  // Precompute an estimated timeline with the simulator's base latency so
  // each winner's receives are posted in arrival order.
  constexpr trace::TimeNs kEstLatency = 2000;
  std::int32_t levels = 0;
  while ((1 << levels) < n) ++levels;

  struct Incoming {
    std::int32_t src = 0;
    std::int32_t level = 0;
    trace::TimeNs arrival = 0;
  };
  // finish[r]: when rank r ships its partial tree (losers only).
  std::vector<trace::TimeNs> finish(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<Incoming>> inbox(static_cast<std::size_t>(n));

  for (std::int32_t l = 0; l < levels; ++l) {
    const std::int32_t stride = 1 << l;
    for (std::int32_t r = 0; r < n; ++r) {
      if (r % (2 * stride) != stride) continue;  // loser at level l
      // The loser has, by now, merged everything arriving below level l.
      trace::TimeNs t = local[static_cast<std::size_t>(r)];
      std::vector<Incoming> mine = inbox[static_cast<std::size_t>(r)];
      std::sort(mine.begin(), mine.end(),
                [](const Incoming& a, const Incoming& b) {
                  if (a.arrival != b.arrival) return a.arrival < b.arrival;
                  return a.src < b.src;
                });
      for (const Incoming& m : mine) {
        t = std::max(t, m.arrival) +
            cfg.merge_compute_ns * (1 + m.level);
      }
      finish[static_cast<std::size_t>(r)] = t;
      inbox[static_cast<std::size_t>(r - stride)].push_back(
          Incoming{r, l, t + kEstLatency});
    }
  }

  // Emit the per-rank programs: local compute, then receives in estimated
  // arrival order with a merge after each, then the losing send.
  for (std::int32_t r = 0; r < n; ++r) {
    prog.compute(r, local[static_cast<std::size_t>(r)]);
    std::vector<Incoming> mine = inbox[static_cast<std::size_t>(r)];
    std::sort(mine.begin(), mine.end(),
              [](const Incoming& a, const Incoming& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                return a.src < b.src;
              });
    for (const Incoming& m : mine) {
      prog.recv(r, m.src, /*tag=*/m.level);
      prog.compute(r, cfg.merge_compute_ns * (1 + m.level));
    }
    // Losers ship their merged partial tree upward; rank 0 keeps the
    // final tree.
    if (r != 0) {
      std::int32_t level = 0;
      while (r % (1 << (level + 1)) == 0) ++level;
      prog.send(r, r - (1 << level), /*tag=*/level,
                /*bytes=*/2048 << level);
    }
  }
  return prog;
}

trace::Trace run_mergetree_mpi(const MergeTreeConfig& cfg) {
  sim::mpi::MpiConfig mc;
  mc.seed = cfg.seed;
  return sim::mpi::simulate(build_mergetree_program(cfg), mc);
}

}  // namespace logstruct::apps
