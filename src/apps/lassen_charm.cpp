#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "apps/lassen.hpp"
#include "sim/charm/chare.hpp"
#include "sim/charm/runtime.hpp"
#include "util/check.hpp"

namespace logstruct::apps {

std::int64_t lassen_work_ns(const LassenConfig& cfg, std::int32_t cx,
                            std::int32_t cy, std::int32_t it) {
  // Sub-domain [x0,x1] x [y0,y1] of the unit square; front is the circle of
  // radius r around the origin. Approximate the arc length inside the
  // sub-domain by sampling the quarter-circle.
  const double x0 = static_cast<double>(cx) / cfg.chares_x;
  const double x1 = static_cast<double>(cx + 1) / cfg.chares_x;
  const double y0 = static_cast<double>(cy) / cfg.chares_y;
  const double y1 = static_cast<double>(cy + 1) / cfg.chares_y;
  const double r = cfg.front_r0 + it * cfg.front_dr;

  constexpr double kHalfPi = std::numbers::pi / 2.0;
  constexpr int kSamples = 256;
  int inside = 0;
  for (int s = 0; s < kSamples; ++s) {
    double theta = (s + 0.5) * (kHalfPi / kSamples);
    double px = r * std::cos(theta);
    double py = r * std::sin(theta);
    if (px >= x0 && px < x1 && py >= y0 && py < y1) ++inside;
  }
  double arc_fraction = static_cast<double>(inside) / kSamples;
  // Total quarter-arc length is (pi/2) r; work scales with the absolute
  // length inside this sub-domain.
  double arc_len = arc_fraction * kHalfPi * r;
  return cfg.base_compute_ns +
         static_cast<std::int64_t>(arc_len * 10.0 *
                                   static_cast<double>(cfg.front_compute_ns));
}

namespace {

using sim::charm::Callback;
using sim::charm::MsgData;
using sim::charm::ReducerOp;
using sim::charm::Runtime;
using trace::EntryId;

struct LassenEntries {
  EntryId main_start;
  EntryId resume;      ///< allreduce broadcast: start iteration
  EntryId recv_front;  ///< neighbor front data
  EntryId advance;     ///< control self-invocation
};

class LassenChare final : public sim::charm::Chare {
 public:
  LassenChare(const LassenConfig& cfg, const LassenEntries& e)
      : cfg_(&cfg), e_(&e) {}

  void on_message(EntryId entry, const MsgData& data) override {
    if (entry == e_->resume) {
      on_resume();
    } else if (entry == e_->recv_front) {
      on_recv_front(data);
    } else if (entry == e_->advance) {
      on_advance();
    } else {
      LS_CHECK_MSG(false, "lassen: unknown entry");
    }
  }

 private:
  [[nodiscard]] std::int32_t x() const { return index() % cfg_->chares_x; }
  [[nodiscard]] std::int32_t y() const { return index() / cfg_->chares_x; }

  /// 4-neighborhood; order alternates between iterations (the source of
  /// the alternating p2p-phase structure the paper observes).
  [[nodiscard]] std::vector<std::int32_t> neighbors(bool reversed) const {
    std::vector<std::int32_t> out;
    if (x() > 0) out.push_back(index() - 1);
    if (x() + 1 < cfg_->chares_x) out.push_back(index() + 1);
    if (y() > 0) out.push_back(index() - cfg_->chares_x);
    if (y() + 1 < cfg_->chares_y) out.push_back(index() + cfg_->chares_x);
    if (reversed) std::reverse(out.begin(), out.end());
    return out;
  }

  void on_resume() {
    ++iter_;
    if (iter_ > cfg_->iterations) return;
    // Wavefront update for this step, then share front data.
    rt().compute(lassen_work_ns(*cfg_, x(), y(), iter_ - 1));
    for (std::int32_t nb : neighbors(iter_ % 2 == 0)) {
      MsgData front;
      front.ints = {iter_};
      rt().send(rt().array_element(array(), nb), e_->recv_front,
                std::move(front), /*bytes=*/256);
    }
    check_fronts();  // neighbors may already have delivered everything
  }

  void on_recv_front(const MsgData& data) {
    rt().compute(300);  // fold in neighbor front segments
    auto it = static_cast<std::size_t>(data.ints.at(0));
    if (seen_.size() <= it) seen_.resize(it + 1, 0);
    ++seen_[it];
    check_fronts();
  }

  void check_fronts() {
    auto cur = static_cast<std::size_t>(iter_);
    if (iter_ >= 1 && iter_ <= cfg_->iterations && fired_iter_ < iter_ &&
        seen_.size() > cur &&
        seen_[cur] == static_cast<std::int32_t>(neighbors(false).size())) {
      fired_iter_ = iter_;
      if (cfg_->lb_period > 0 && iter_ % cfg_->lb_period == 0) {
        // Periodic AtSync step in place of the reduction barrier: the
        // LBManager's resume broadcast starts the next iteration.
        rt().at_sync();
        rt().send(id(), e_->advance, {}, /*bytes=*/16);
        return;
      }
      // All fronts in: contribute the termination criterion, then poke
      // ourselves with a pure control message. The contribute separates
      // the self-send from the halo receives inside this serial block, so
      // the self-invocation forms its own short two-step phase.
      rt().contribute(1.0, ReducerOp::Sum,
                      Callback::broadcast(array(), e_->resume));
      rt().send(id(), e_->advance, {}, /*bytes=*/16);
    }
  }

  void on_advance() {
    rt().compute(200);  // step bookkeeping only
  }

  const LassenConfig* cfg_;
  const LassenEntries* e_;
  std::int32_t iter_ = 0;
  std::int32_t fired_iter_ = 0;
  std::vector<std::int32_t> seen_;
};

class LassenMain final : public sim::charm::Chare {
 public:
  LassenMain(const LassenEntries& e, trace::ArrayId array)
      : e_(&e), array_(array) {}

  void on_message(EntryId entry, const MsgData&) override {
    LS_CHECK(entry == e_->main_start);
    rt().compute(1000);
    rt().broadcast(array_, e_->resume);
  }

 private:
  const LassenEntries* e_;
  trace::ArrayId array_;
};

}  // namespace

trace::Trace run_lassen_charm(const LassenConfig& cfg) {
  LS_CHECK(cfg.chares_x > 0 && cfg.chares_y > 0 && cfg.iterations > 0);
  sim::charm::RuntimeConfig rc;
  rc.num_pes = cfg.num_pes;
  rc.seed = cfg.seed;
  rc.trace_local_reductions = cfg.trace_local_reductions;
  Runtime rt(rc);

  LassenEntries e;
  e.main_start = rt.register_entry("main");
  e.resume = rt.register_entry("resume");
  e.recv_front = rt.register_entry("recvFront");
  e.advance = rt.register_entry("advance");

  trace::ArrayId array = rt.create_array<LassenChare>(
      "lassen", cfg.chares_x * cfg.chares_y, cfg.placement, cfg, e);
  if (cfg.lb_period > 0) rt.configure_lb(array, cfg.lb_strategy, e.resume);
  trace::ChareId main = rt.create_singleton<LassenMain>(
      "main", /*pe=*/0, /*runtime=*/false, e, array);

  rt.start(main, e.main_start);
  return rt.run();
}

}  // namespace logstruct::apps
