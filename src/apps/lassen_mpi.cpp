#include <vector>

#include "apps/lassen.hpp"
#include "sim/mpi/mpisim.hpp"
#include "util/check.hpp"

namespace logstruct::apps {

namespace {

std::vector<std::int32_t> grid_neighbors(const LassenConfig& cfg,
                                         std::int32_t r) {
  std::int32_t x = r % cfg.chares_x;
  std::int32_t y = r / cfg.chares_x;
  std::vector<std::int32_t> out;
  if (x > 0) out.push_back(r - 1);
  if (x + 1 < cfg.chares_x) out.push_back(r + 1);
  if (y > 0) out.push_back(r - cfg.chares_x);
  if (y + 1 < cfg.chares_y) out.push_back(r + cfg.chares_x);
  return out;
}

}  // namespace

sim::mpi::Program build_lassen_mpi_program(const LassenConfig& cfg) {
  LS_CHECK(cfg.chares_x > 0 && cfg.chares_y > 0 && cfg.iterations > 0);
  const std::int32_t n = cfg.chares_x * cfg.chares_y;
  sim::mpi::Program prog(n);

  for (std::int32_t it = 0; it < cfg.iterations; ++it) {
    for (std::int32_t r = 0; r < n; ++r) {
      // Front-dependent work, same cost model as the Charm++ flavor.
      prog.compute(r, lassen_work_ns(cfg, r % cfg.chares_x,
                                     r / cfg.chares_x, it));
      for (std::int32_t nb : grid_neighbors(cfg, r))
        prog.send(r, nb, /*tag=*/it, /*bytes=*/256);
      for (std::int32_t nb : grid_neighbors(cfg, r)) prog.recv(r, nb, it);
      prog.allreduce(r);
    }
  }
  return prog;
}

trace::Trace run_lassen_mpi(const LassenConfig& cfg) {
  sim::mpi::MpiConfig mc;
  mc.seed = cfg.seed;
  return sim::mpi::simulate(build_lassen_mpi_program(cfg), mc);
}

}  // namespace logstruct::apps
