#pragma once

/// \file mergetree.hpp
/// MPI merge-tree proxy (paper Fig. 10).
///
/// Models the early segmented-merge-tree algorithm of Landge et al. [18]:
/// every rank computes over its local data (data-dependent duration), then
/// log2(n) combine rounds fold partial trees pairwise — at round l, rank r
/// with r % 2^(l+1) == 2^l sends its tree to r - 2^l and drops out, the
/// receiver merges. Data-dependent imbalance makes some groups start round
/// k+1 before others finish round k, which is exactly what the paper's
/// reordering (Fig. 10b) untangles.

#include <cstdint>

#include "sim/mpi/program.hpp"
#include "trace/trace.hpp"

namespace logstruct::apps {

struct MergeTreeConfig {
  std::int32_t num_ranks = 1024;  ///< must be a power of two
  std::uint64_t seed = 1;
  std::int64_t base_compute_ns = 20000;
  /// Local data sizes are heavy-tailed: a rank's initial compute is
  /// base * (1 + pareto-ish draw in [0, imbalance]).
  double imbalance = 4.0;
  std::int64_t merge_compute_ns = 5000;
};

trace::Trace run_mergetree_mpi(const MergeTreeConfig& cfg);
sim::mpi::Program build_mergetree_program(const MergeTreeConfig& cfg);

}  // namespace logstruct::apps
