#include <vector>

#include "apps/pdes.hpp"
#include "sim/charm/chare.hpp"
#include "sim/charm/runtime.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace logstruct::apps {

namespace {

using sim::charm::MsgData;
using sim::charm::Runtime;
using sim::charm::TraceFlags;
using trace::EntryId;

struct PdesEntries {
  EntryId main_start;
  EntryId start_window;  ///< broadcast: begin window w
  EntryId recv_event;    ///< simulation event from a peer chare
  EntryId det_local;     ///< completion call into the per-PE detector
  EntryId det_tree;      ///< detector-to-detector combine
};

/// Deterministic event schedule: targets[w][c] lists the chares that chare
/// c sends events to in window w; expected[w][c] is the matching receive
/// count.
struct EventSchedule {
  std::vector<std::vector<std::vector<std::int32_t>>> targets;
  std::vector<std::vector<std::int32_t>> expected;
};

EventSchedule make_schedule(const PdesConfig& cfg) {
  util::Rng rng(cfg.seed ^ 0xFDE5FDE5ULL);
  EventSchedule s;
  s.targets.assign(static_cast<std::size_t>(cfg.windows + 1), {});
  s.expected.assign(static_cast<std::size_t>(cfg.windows + 1), {});
  for (std::int32_t w = 1; w <= cfg.windows; ++w) {
    auto& tw = s.targets[static_cast<std::size_t>(w)];
    auto& ew = s.expected[static_cast<std::size_t>(w)];
    tw.assign(static_cast<std::size_t>(cfg.num_chares), {});
    ew.assign(static_cast<std::size_t>(cfg.num_chares), 0);
    for (std::int32_t c = 0; c < cfg.num_chares; ++c) {
      for (std::int32_t k = 0; k < cfg.events_per_window; ++k) {
        auto t = static_cast<std::int32_t>(
            rng.uniform(static_cast<std::uint64_t>(cfg.num_chares - 1)));
        if (t >= c) ++t;  // uniform over peers != c
        tw[static_cast<std::size_t>(c)].push_back(t);
        ++ew[static_cast<std::size_t>(t)];
      }
    }
  }
  return s;
}

class PdesChare final : public sim::charm::Chare {
 public:
  PdesChare(const PdesConfig& cfg, const PdesEntries& e,
            const EventSchedule& sched,
            const std::vector<trace::ChareId>& detectors)
      : cfg_(&cfg), e_(&e), sched_(&sched), detectors_(&detectors) {}

  void on_message(EntryId entry, const MsgData& data) override {
    if (entry == e_->start_window) {
      on_start_window();
    } else if (entry == e_->recv_event) {
      on_recv_event(data);
    } else {
      LS_CHECK_MSG(false, "pdes: unknown entry");
    }
  }

 private:
  void on_start_window() {
    ++window_;
    if (window_ > cfg_->windows) return;
    rt().compute(1000);  // window setup
    for (std::int32_t t :
         sched_->targets[static_cast<std::size_t>(window_)]
                        [static_cast<std::size_t>(index())]) {
      MsgData ev;
      ev.ints = {window_};
      rt().send(rt().array_element(array(), t), e_->recv_event,
                std::move(ev), /*bytes=*/128);
    }
    check_done();
  }

  void on_recv_event(const MsgData& data) {
    rt().compute(cfg_->event_compute_ns);
    auto w = static_cast<std::size_t>(data.ints.at(0));
    if (seen_.size() <= w) seen_.resize(w + 1, 0);
    ++seen_[w];
    check_done();
  }

  void check_done() {
    auto w = static_cast<std::size_t>(window_);
    if (window_ < 1 || window_ > cfg_->windows || reported_ >= window_)
      return;
    if (seen_.size() <= w) seen_.resize(w + 1, 0);
    if (seen_[w] != sched_->expected[w][static_cast<std::size_t>(index())])
      return;
    reported_ = window_;
    // Locally complete: tell the completion detector. This control
    // dependency is the one Charm++ tracing misses (paper Fig. 24).
    MsgData done;
    done.ints = {window_};
    TraceFlags flags = cfg_->trace_detector_calls
                           ? TraceFlags::traced()
                           : TraceFlags::untraced_send();
    rt().send((*detectors_)[static_cast<std::size_t>(pe())], e_->det_local,
              std::move(done), /*bytes=*/16, flags);
  }

  const PdesConfig* cfg_;
  const PdesEntries* e_;
  const EventSchedule* sched_;
  const std::vector<trace::ChareId>* detectors_;
  std::int32_t window_ = 0;
  std::int32_t reported_ = 0;
  std::vector<std::int32_t> seen_;
};

/// Per-PE completion detector: a runtime chare (grouped by process in the
/// analysis, like CkReductionMgr).
class PdesDetector final : public sim::charm::Chare {
 public:
  PdesDetector(const PdesConfig& cfg, const PdesEntries& e,
               const std::vector<trace::ChareId>& detectors,
               const std::vector<std::int32_t>& local_counts,
               trace::ArrayId array)
      : cfg_(&cfg),
        e_(&e),
        detectors_(&detectors),
        local_counts_(&local_counts),
        array_(array) {}

  void on_message(EntryId entry, const MsgData& data) override {
    auto w = static_cast<std::size_t>(data.ints.at(0));
    if (local_.size() <= w) local_.resize(w + 1, 0);
    if (tree_.size() <= w) tree_.resize(w + 1, 0);
    rt().compute(300);
    if (entry == e_->det_local) {
      ++local_[w];
    } else {
      LS_CHECK(entry == e_->det_tree);
      ++tree_[w];
    }
    maybe_complete(static_cast<std::int32_t>(w));
  }

 private:
  void maybe_complete(std::int32_t w) {
    auto ws = static_cast<std::size_t>(w);
    const std::int32_t p = pe();
    const std::int32_t n = static_cast<std::int32_t>(detectors_->size());
    std::int32_t expected_children = 0;
    if (2 * p + 1 < n) ++expected_children;
    if (2 * p + 2 < n) ++expected_children;
    if (local_[ws] != (*local_counts_)[static_cast<std::size_t>(p)] ||
        tree_[ws] != expected_children)
      return;
    MsgData up;
    up.ints = {w};
    if (p == 0) {
      // Window complete everywhere: release the next one. Nothing follows
      // the final window, so its detector phase has no outgoing
      // application dependency either — combined with the untraced call
      // into the detector, nothing anchors it in the phase DAG (the
      // Fig. 24 situation).
      if (w < cfg_->windows) rt().broadcast(array_, e_->start_window);
    } else {
      rt().send((*detectors_)[static_cast<std::size_t>((p - 1) / 2)],
                e_->det_tree, std::move(up), /*bytes=*/16);
    }
  }

  const PdesConfig* cfg_;
  const PdesEntries* e_;
  const std::vector<trace::ChareId>* detectors_;
  const std::vector<std::int32_t>* local_counts_;
  trace::ArrayId array_;
  std::vector<std::int32_t> local_, tree_;
};

class PdesMain final : public sim::charm::Chare {
 public:
  PdesMain(const PdesEntries& e, trace::ArrayId array)
      : e_(&e), array_(array) {}

  void on_message(EntryId entry, const MsgData&) override {
    LS_CHECK(entry == e_->main_start);
    rt().compute(1000);
    rt().broadcast(array_, e_->start_window);
  }

 private:
  const PdesEntries* e_;
  trace::ArrayId array_;
};

}  // namespace

trace::Trace run_pdes(const PdesConfig& cfg) {
  LS_CHECK(cfg.num_chares > 1 && cfg.windows > 0);
  // Every PE must host a chare or its completion detector would never hear
  // anything and the detector tree would stall.
  LS_CHECK_MSG(cfg.num_chares >= cfg.num_pes, "pdes needs chares >= pes");
  sim::charm::RuntimeConfig rc;
  rc.num_pes = cfg.num_pes;
  rc.seed = cfg.seed;
  Runtime rt(rc);

  PdesEntries e;
  e.main_start = rt.register_entry("main");
  e.start_window = rt.register_entry("startWindow");
  e.recv_event = rt.register_entry("recvEvent");
  e.det_local = rt.register_entry("_completion_local", /*runtime=*/true);
  e.det_tree = rt.register_entry("_completion_tree", /*runtime=*/true);

  EventSchedule sched = make_schedule(cfg);

  trace::ArrayId array = trace::kNone;
  std::vector<trace::ChareId> detectors;
  std::vector<std::int32_t> local_counts(
      static_cast<std::size_t>(cfg.num_pes), 0);

  array = rt.create_array<PdesChare>("pdes", cfg.num_chares, cfg.placement,
                                     cfg, e, sched, detectors);
  for (std::int32_t c = 0; c < cfg.num_chares; ++c)
    ++local_counts[static_cast<std::size_t>(
        rt.pe_of(rt.array_element(array, c)))];
  for (trace::ProcId p = 0; p < cfg.num_pes; ++p) {
    detectors.push_back(rt.create_singleton<PdesDetector>(
        "CompletionDetector(" + std::to_string(p) + ")", p,
        /*runtime=*/true, cfg, e, detectors, local_counts, array));
  }

  trace::ChareId main = rt.create_singleton<PdesMain>(
      "main", /*pe=*/0, /*runtime=*/false, e, array);

  rt.start(main, e.main_start);
  return rt.run();
}

}  // namespace logstruct::apps
