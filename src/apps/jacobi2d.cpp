#include "apps/jacobi2d.hpp"

#include <memory>
#include <vector>

#include "sim/charm/chare.hpp"
#include "sim/charm/runtime.hpp"
#include "util/check.hpp"

namespace logstruct::apps {

namespace {

using sim::charm::Callback;
using sim::charm::MsgData;
using sim::charm::ReducerOp;
using sim::charm::Runtime;
using trace::EntryId;

struct JacobiEntries {
  EntryId resume;       ///< reduction-broadcast target / initial kick
  EntryId serial_begin; ///< SDAG serial_0: send halos
  EntryId recv_halo;    ///< halo arrival (when-entry of serial_1)
  EntryId serial_comp;  ///< SDAG serial_1: compute + contribute
  EntryId main_start;   ///< bootstrap on the main chare
};

class JacobiChare final : public sim::charm::Chare {
 public:
  JacobiChare(const Jacobi2DConfig& cfg, const JacobiEntries& e)
      : cfg_(&cfg), e_(&e) {}

  void on_message(EntryId entry, const MsgData& data) override {
    if (entry == e_->resume) {
      on_resume();
    } else if (entry == e_->serial_begin) {
      on_serial_begin();
    } else if (entry == e_->recv_halo) {
      on_recv_halo(data);
    } else if (entry == e_->serial_comp) {
      on_serial_comp();
    } else {
      LS_CHECK_MSG(false, "jacobi: unknown entry");
    }
  }

 private:
  [[nodiscard]] std::int32_t x() const { return index() % cfg_->chares_x; }
  [[nodiscard]] std::int32_t y() const { return index() / cfg_->chares_x; }

  [[nodiscard]] std::vector<std::int32_t> neighbors() const {
    std::vector<std::int32_t> out;
    if (x() > 0) out.push_back(index() - 1);
    if (x() + 1 < cfg_->chares_x) out.push_back(index() + 1);
    if (y() > 0) out.push_back(index() - cfg_->chares_x);
    if (y() + 1 < cfg_->chares_y) out.push_back(index() + cfg_->chares_x);
    return out;
  }

  void on_resume() {
    ++iter_;
    if (iter_ > cfg_->iterations) return;  // converged: fall silent
    if (iter_ - 1 == cfg_->migrate_at_iteration) {
      // Load-balancing step: rotate to the neighboring PE before any work
      // (and before this iteration's contribute) so reductions stay
      // consistent.
      rt().migrate((pe() + 1) % rt().num_pes());
    }
    rt().schedule_immediate(e_->serial_begin);
  }

  void on_serial_begin() {
    rt().compute(500);  // boundary packing
    for (std::int32_t nb : neighbors()) {
      MsgData halo;
      halo.ints = {iter_};
      rt().send(rt().array_element(array(), nb), e_->recv_halo,
                std::move(halo), /*bytes=*/512);
    }
    maybe_run_compute();  // degenerate 1x1 grids have no halos to wait for
  }

  void on_recv_halo(const MsgData& data) {
    rt().compute(200);  // unpack ghost layer
    auto iter = static_cast<std::size_t>(data.ints.at(0));
    if (halos_.size() <= iter) halos_.resize(iter + 1, 0);
    ++halos_[iter];
    maybe_run_compute();
  }

  void maybe_run_compute() {
    auto have = halos_.size() > static_cast<std::size_t>(iter_)
                    ? halos_[static_cast<std::size_t>(iter_)]
                    : 0;
    if (iter_ >= 1 && iter_ <= cfg_->iterations && !comp_scheduled_ &&
        have == static_cast<std::int32_t>(neighbors().size())) {
      comp_scheduled_ = true;
      rt().schedule_immediate(e_->serial_comp);
    }
  }

  void on_serial_comp() {
    comp_scheduled_ = false;
    std::int64_t work =
        cfg_->compute_ns +
        rt().app_rng().uniform_range(0, cfg_->compute_noise_ns);
    if (index() == cfg_->slow_chare &&
        (cfg_->slow_every_iteration || iter_ - 1 == cfg_->slow_iteration)) {
      work = static_cast<std::int64_t>(static_cast<double>(work) *
                                       cfg_->slow_factor);
    }
    rt().compute(work);
    if (iter_ - 1 == cfg_->lb_at_iteration) {
      // AtSync replaces the reduction barrier: the LBManager's resume
      // broadcast starts the next iteration once everyone reported.
      rt().at_sync();
      return;
    }
    // Max-norm residual; value is irrelevant to the structure.
    rt().contribute(1.0, ReducerOp::Max,
                    Callback::broadcast(array(), e_->resume));
  }

  const Jacobi2DConfig* cfg_;
  const JacobiEntries* e_;
  std::int32_t iter_ = 0;  // incremented by resume; iteration 1..N
  std::vector<std::int32_t> halos_;
  bool comp_scheduled_ = false;
};

class JacobiMain final : public sim::charm::Chare {
 public:
  JacobiMain(const JacobiEntries& e, trace::ArrayId array)
      : e_(&e), array_(array) {}

  void on_message(EntryId entry, const MsgData&) override {
    LS_CHECK(entry == e_->main_start);
    rt().compute(1000);  // problem setup
    rt().broadcast(array_, e_->resume);
  }

 private:
  const JacobiEntries* e_;
  trace::ArrayId array_;
};

}  // namespace

trace::Trace run_jacobi2d(const Jacobi2DConfig& cfg) {
  LS_CHECK(cfg.chares_x > 0 && cfg.chares_y > 0 && cfg.iterations > 0);
  sim::charm::RuntimeConfig rc;
  rc.num_pes = cfg.num_pes;
  rc.seed = cfg.seed;
  rc.trace_local_reductions = cfg.trace_local_reductions;
  Runtime rt(rc);

  JacobiEntries e;
  e.resume = rt.register_entry("resume");
  e.serial_begin = rt.register_entry("serial_0_sendHalos", false,
                                     /*sdag_serial=*/0, {e.resume});
  e.recv_halo = rt.register_entry("recvHalo");
  e.serial_comp = rt.register_entry("serial_1_compute", false,
                                    /*sdag_serial=*/1, {e.recv_halo});
  e.main_start = rt.register_entry("main");

  trace::ArrayId array = rt.create_array<JacobiChare>(
      "jacobi", cfg.chares_x * cfg.chares_y, cfg.placement, cfg, e);
  if (cfg.lb_at_iteration >= 0)
    rt.configure_lb(array, cfg.lb_strategy, e.resume);
  trace::ChareId main = rt.create_singleton<JacobiMain>(
      "main", /*pe=*/0, /*runtime=*/false, e, array);

  rt.start(main, e.main_start);
  return rt.run();
}

}  // namespace logstruct::apps
