#pragma once

/// \file lassen.hpp
/// LASSEN wavefront-propagation proxy (paper §6.2, Figs. 20-23).
///
/// Models a wavefront expanding through a regular 2D Cartesian grid from
/// the origin corner. Per iteration each sub-domain exchanges front data
/// with its neighbors and the program allreduces a termination criterion.
/// Compute cost is front-dependent: only sub-domains the front currently
/// crosses do real work — the source of the differential-duration and
/// imbalance signatures of Figs. 21-23.
///
/// The Charm++ flavor inserts the paper's short control phase: after its
/// local work each chare invokes itself ("advance") — a pure two-step
/// control phase between the point-to-point phase and the allreduce.
/// It also alternates the neighbor enumeration order between iterations
/// (the paper observes the large p2p phase's structure alternating).

#include <cstdint>

#include "sim/charm/config.hpp"
#include "sim/charm/loadbalancer.hpp"
#include "sim/mpi/program.hpp"
#include "trace/trace.hpp"

namespace logstruct::apps {

struct LassenConfig {
  std::int32_t chares_x = 4;  ///< grid of sub-domains (8 = 4x2, 64 = 8x8)
  std::int32_t chares_y = 2;
  std::int32_t num_pes = 8;  ///< Charm++ flavor only
  std::int32_t iterations = 12;
  std::uint64_t seed = 1;

  /// Wavefront geometry on the unit square: radius r(it) = front_r0 +
  /// it * front_dr, centered at the origin corner.
  double front_r0 = 0.05;
  double front_dr = 0.08;

  std::int64_t base_compute_ns = 2000;    ///< bookkeeping everywhere
  std::int64_t front_compute_ns = 60000;  ///< work per unit of front length
                                          ///< crossing the sub-domain
  bool trace_local_reductions = true;     ///< Charm++ flavor only

  /// Charm++ flavor: run an AtSync load-balancing step instead of the
  /// reduction every `lb_period` iterations (0 = never). The wavefront
  /// keeps moving, so periodic Greedy balancing tracks it.
  std::int32_t lb_period = 0;
  sim::charm::LbStrategy lb_strategy = sim::charm::LbStrategy::Greedy;
  sim::charm::Placement placement = sim::charm::Placement::Block;
};

/// Front-dependent work for sub-domain (cx, cy) at 0-based iteration it:
/// base plus front_compute_ns scaled by the approximate length of the
/// front arc inside the sub-domain (0 when the front misses it).
std::int64_t lassen_work_ns(const LassenConfig& cfg, std::int32_t cx,
                            std::int32_t cy, std::int32_t it);

trace::Trace run_lassen_charm(const LassenConfig& cfg);
trace::Trace run_lassen_mpi(const LassenConfig& cfg);
sim::mpi::Program build_lassen_mpi_program(const LassenConfig& cfg);

}  // namespace logstruct::apps
