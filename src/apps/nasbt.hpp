#pragma once

/// \file nasbt.hpp
/// NAS BT-like line-sweep proxy (paper Fig. 1).
///
/// A square grid of ranks performs, per iteration, a forward+backward
/// sweep along rows followed by a forward+backward sweep along columns —
/// the alternating-direction structure that gives BT traces their layered
/// logical shape. Used to regenerate the paper's introductory
/// logical-vs-physical comparison on 9 processes (3x3).

#include <cstdint>

#include "sim/mpi/program.hpp"
#include "trace/trace.hpp"

namespace logstruct::apps {

struct NasBtConfig {
  std::int32_t grid = 3;  ///< grid x grid ranks (paper: 3x3 = 9 processes)
  std::int32_t iterations = 2;
  std::uint64_t seed = 1;
  std::int64_t compute_ns = 15000;
  std::int64_t compute_noise_ns = 4000;
};

trace::Trace run_nasbt_mpi(const NasBtConfig& cfg);
sim::mpi::Program build_nasbt_program(const NasBtConfig& cfg);

}  // namespace logstruct::apps
