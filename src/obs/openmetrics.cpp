#include "obs/openmetrics.hpp"

#include <cstdint>
#include <set>
#include <string>

#include "obs/progress.hpp"

namespace logstruct::obs {

namespace detail {

std::string openmetrics_family(std::string_view path) {
  std::string out = "logstruct_";
  out.reserve(out.size() + path.size());
  for (char c : path) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string openmetrics_escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace detail

namespace {

using detail::openmetrics_escape_label;
using detail::openmetrics_family;

/// One `# TYPE` per family: a sanitization collision ("a/b" and "a_b")
/// or a reserved-suffix clash gets a numeric suffix instead of a
/// duplicate declaration.
class FamilyNames {
 public:
  std::string claim(std::string_view path) {
    std::string fam = openmetrics_family(path);
    if (used_.insert(fam).second) return fam;
    for (int i = 2;; ++i) {
      std::string alt = fam + "_" + std::to_string(i);
      if (used_.insert(alt).second) return alt;
    }
  }

 private:
  std::set<std::string, std::less<>> used_;
};

void header(std::string& out, const std::string& fam, const char* type,
            std::string_view path) {
  out += "# HELP " + fam + " logstruct " + type + " for registry path '" +
         openmetrics_escape_label(path) + "'.\n";
  out += "# TYPE " + fam + " " + type + "\n";
}

std::string path_label(std::string_view path) {
  return "{path=\"" + openmetrics_escape_label(path) + "\"}";
}

void append_value(std::string& out, std::int64_t v) {
  out += std::to_string(v);
  out.push_back('\n');
}

/// Upper bound of power-of-two bucket b as a decimal string: bucket 0
/// holds {0}; bucket b holds [2^(b-1), 2^b), so the inclusive `le`
/// bound is 2^b - 1.
std::string bucket_le(int b) {
  if (b <= 0) return "0";
  return std::to_string((std::uint64_t{1} << b) - 1);
}

std::string render(const RegistrySnapshot& snap, const Progress::State* prog) {
  std::string out;
  FamilyNames names;

  for (const auto& [path, value] : snap.counters) {
    const std::string fam = names.claim(path);
    header(out, fam, "counter", path);
    out += fam + "_total" + path_label(path) + " ";
    append_value(out, value);
  }

  for (const auto& [path, value] : snap.gauges) {
    const std::string fam = names.claim(path);
    header(out, fam, "gauge", path);
    out += fam + path_label(path) + " ";
    append_value(out, value);
  }

  for (const auto& h : snap.histograms) {
    const std::string fam = names.claim(h.name);
    header(out, fam, "histogram", h.name);
    const std::string label = openmetrics_escape_label(h.name);
    int last = -1;
    for (int b = 0; b < static_cast<int>(h.buckets.size()); ++b)
      if (h.buckets[static_cast<std::size_t>(b)] > 0) last = b;
    std::int64_t cum = 0;
    for (int b = 0; b <= last; ++b) {
      cum += h.buckets[static_cast<std::size_t>(b)];
      out += fam + "_bucket{path=\"" + label + "\",le=\"" + bucket_le(b) +
             "\"} ";
      append_value(out, cum);
    }
    out += fam + "_bucket{path=\"" + label + "\",le=\"+Inf\"} ";
    append_value(out, h.count);
    out += fam + "_count" + path_label(h.name) + " ";
    append_value(out, h.count);
    out += fam + "_sum" + path_label(h.name) + " ";
    append_value(out, h.sum);
  }

  if (prog != nullptr && prog->pass[0] != 0) {
    // The in-flight pass rides along as an info-style gauge so a scrape
    // can name what the process is doing, not just how far along it is.
    const std::string fam = names.claim("obs/progress/pass");
    header(out, fam, "gauge", "obs/progress/pass");
    out += fam + "{path=\"obs/progress/pass\",pass=\"" +
           openmetrics_escape_label(prog->pass) + "\"} 1\n";
  }

  out += "# EOF\n";
  return out;
}

}  // namespace

std::string openmetrics_text(const Registry& reg) {
  return render(reg.snapshot(), nullptr);
}

std::string openmetrics_text() {
  const Progress::State prog = Progress::current();
  return render(Registry::global().snapshot(), &prog);
}

}  // namespace logstruct::obs
