/// \file alloc_hook.cpp
/// Counting replacement for the global allocation functions.
///
/// Every operator new bumps the calling thread's cumulative counters
/// (memstats.hpp) and then defers to malloc, so AllocScope can report
/// per-scope allocation deltas and the pipeline tracer can attach
/// alloc_bytes/alloc_count to every span. Only the allocation side is
/// counted — free sizes are not portably observable, and the telemetry
/// question is "how much did this stage allocate", not live bytes
/// (that is what the RSS gauges answer).
///
/// The replacement is compiled only when LOGSTRUCT_OBS=1 and
/// LOGSTRUCT_ALLOC_HOOK=1: counting two thread-locals per allocation is
/// cheap but not free, and an OBS=0 build must carry zero
/// instrumentation. Under ASan the hook composes fine — ASan intercepts
/// the malloc/free these functions call, so leak checking and poisoning
/// still work.
///
/// memstats.cpp calls hook_linked(), which forces this object file out
/// of the static library whenever memstats is used — without that
/// reference the linker would keep libstdc++'s operator new and the
/// counters would silently stay zero.

#include <cstddef>
#include <cstdlib>
#include <new>

#include "obs/memstats.hpp"

#ifndef LOGSTRUCT_OBS
#define LOGSTRUCT_OBS 1
#endif
#ifndef LOGSTRUCT_ALLOC_HOOK
#define LOGSTRUCT_ALLOC_HOOK 1
#endif

#define LOGSTRUCT_ALLOC_HOOK_ENABLED (LOGSTRUCT_OBS && LOGSTRUCT_ALLOC_HOOK)

namespace logstruct::obs::detail {

bool hook_linked() { return LOGSTRUCT_ALLOC_HOOK_ENABLED != 0; }

#if LOGSTRUCT_ALLOC_HOOK_ENABLED

namespace {

inline void note(std::size_t n) {
  t_alloc_bytes += static_cast<std::int64_t>(n);
  ++t_alloc_count;
  // Publish to the process-wide totals in batches so the hot path adds
  // no shared-cacheline RMW (see memstats.hpp process_allocs()).
  if (t_alloc_bytes - t_flushed_bytes >= kAllocFlushBytes)
    flush_thread_allocs();
}

void* alloc_or_throw(std::size_t n) {
  for (;;) {
    if (void* p = std::malloc(n ? n : 1)) return p;
    std::new_handler h = std::get_new_handler();
    if (!h) throw std::bad_alloc();
    h();
  }
}

void* aligned_alloc_raw(std::size_t n, std::size_t align) {
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n ? n : align) != 0) return nullptr;
  return p;
}

void* aligned_or_throw(std::size_t n, std::size_t align) {
  for (;;) {
    if (void* p = aligned_alloc_raw(n, align)) return p;
    std::new_handler h = std::get_new_handler();
    if (!h) throw std::bad_alloc();
    h();
  }
}

}  // namespace

#endif  // LOGSTRUCT_ALLOC_HOOK_ENABLED

}  // namespace logstruct::obs::detail

#if LOGSTRUCT_ALLOC_HOOK_ENABLED

using logstruct::obs::detail::aligned_or_throw;
using logstruct::obs::detail::alloc_or_throw;
using logstruct::obs::detail::note;

void* operator new(std::size_t n) {
  note(n);
  return alloc_or_throw(n);
}

void* operator new[](std::size_t n) {
  note(n);
  return alloc_or_throw(n);
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  note(n);
  return std::malloc(n ? n : 1);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  note(n);
  return std::malloc(n ? n : 1);
}

void* operator new(std::size_t n, std::align_val_t a) {
  note(n);
  return aligned_or_throw(n, static_cast<std::size_t>(a));
}

void* operator new[](std::size_t n, std::align_val_t a) {
  note(n);
  return aligned_or_throw(n, static_cast<std::size_t>(a));
}

void* operator new(std::size_t n, std::align_val_t a,
                   const std::nothrow_t&) noexcept {
  note(n);
  return logstruct::obs::detail::aligned_alloc_raw(
      n, static_cast<std::size_t>(a));
}

void* operator new[](std::size_t n, std::align_val_t a,
                     const std::nothrow_t&) noexcept {
  note(n);
  return logstruct::obs::detail::aligned_alloc_raw(
      n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // LOGSTRUCT_ALLOC_HOOK_ENABLED
