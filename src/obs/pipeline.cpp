#include "obs/pipeline.hpp"

#include <chrono>
#include <unordered_map>

#include "obs/flightrec.hpp"
#include "obs/json.hpp"
#include "obs/memstats.hpp"
#include "obs/registry.hpp"

namespace logstruct::obs {

namespace {

struct ThreadState {
  std::int32_t index = -1;          ///< dense thread id within the tracer
  std::vector<SpanId> open_stack;   ///< innermost open span last
};

/// Per-thread state, keyed by tracer so private test instances do not
/// share stacks with the global one.
ThreadState& thread_state(const PipelineTracer* tracer) {
  thread_local std::unordered_map<const PipelineTracer*, ThreadState> states;
  return states[tracer];
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// VmHWM refreshed at most once per ms per thread: a /proc read costs a
/// few microseconds, and the high-water mark is monotonic, so a slightly
/// stale value only under-reports within the refresh window.
std::int64_t cached_peak_rss_kb(std::int64_t now_ns) {
  thread_local std::int64_t last_ns = -1;
  thread_local std::int64_t last_kb = 0;
  if (last_ns < 0 || now_ns - last_ns > 1'000'000) {
    last_kb = peak_rss_kb();
    last_ns = now_ns;
  }
  return last_kb;
}

}  // namespace

PipelineTracer& PipelineTracer::global() {
  static PipelineTracer* instance = new PipelineTracer();  // never destroyed
  return *instance;
}

void PipelineTracer::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

bool PipelineTracer::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void PipelineTracer::set_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = cap;
}

std::int64_t PipelineTracer::now_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_set_ ? steady_ns() - epoch_ns_ : 0;
}

SpanId PipelineTracer::begin(std::string_view name) {
  // Capture before any of our own allocations so the span's delta is
  // dominated by the instrumented stage, not by the tracer.
  const AllocCounters allocs = thread_allocs();
  const std::int64_t t = steady_ns();
  ThreadState& ts = thread_state(this);
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return kNoSpan;
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return kNoSpan;
  }
  if (!epoch_set_) {
    epoch_ns_ = t;
    epoch_set_ = true;
  }
  if (ts.index < 0) ts.index = next_thread_++;

  Span s;
  s.name = std::string(name);
  s.begin_ns = t - epoch_ns_;
  s.end_ns = s.begin_ns;
  s.parent = ts.open_stack.empty() ? kNoSpan : ts.open_stack.back();
  s.thread = ts.index;
  s.alloc_bytes = allocs.bytes;  // cumulative marker; end() makes a delta
  s.alloc_count = allocs.count;
  const SpanId id = static_cast<SpanId>(spans_.size());
  const std::int64_t begin_ns = s.begin_ns;
  const std::int32_t thread = s.thread;
  spans_.push_back(std::move(s));
  ts.open_stack.push_back(id);
  // Feed the crash flight recorder's ring (lock-free; always on — the
  // ring is how a post-mortem dump names recent and in-flight stages).
  if (this == &global())
    FlightRecorder::global().record(false, name, begin_ns, thread);
  return id;
}

void PipelineTracer::end(SpanId id) {
  if (id == kNoSpan) return;
  // Span begin/end run on the same thread (ScopedSpan is RAII), so the
  // cumulative-counter delta is this thread's allocation inside the span.
  const AllocCounters allocs = thread_allocs();
  const std::int64_t t = steady_ns();
  const std::int64_t peak_kb = cached_peak_rss_kb(t);
  ThreadState& ts = thread_state(this);
  std::string name;
  std::int64_t dur = 0;
  std::int64_t end_rel = 0;
  std::int32_t thread = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
    Span& s = spans_[static_cast<std::size_t>(id)];
    if (!s.open) return;
    s.end_ns = t - epoch_ns_;
    end_rel = s.end_ns;
    thread = s.thread;
    s.open = false;
    s.alloc_bytes = allocs.bytes - s.alloc_bytes;
    s.alloc_count = allocs.count - s.alloc_count;
    s.rss_peak_kb = peak_kb;
    name = s.name;
    dur = s.end_ns - s.begin_ns;
    // Unwind the thread stack past this span (robust against a missed
    // end of a nested span).
    while (!ts.open_stack.empty()) {
      SpanId top = ts.open_stack.back();
      ts.open_stack.pop_back();
      if (top == id) break;
    }
  }
  // Dogfooding the registry: every span is also a scoped timer.
  Registry::global().histogram(name).record(dur);
  if (this == &global())
    FlightRecorder::global().record(true, name, end_rel, thread);
}

void PipelineTracer::attr(SpanId id, std::string_view key,
                          std::int64_t value) {
  if (id == kNoSpan) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
  spans_[static_cast<std::size_t>(id)].attrs.push_back(
      SpanAttr{std::string(key), value});
}

std::vector<Span> PipelineTracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t PipelineTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void PipelineTracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_ = 0;
}

std::string PipelineTracer::to_json() const {
  std::vector<Span> spans = snapshot();
  json::Writer w;
  w.begin_array();
  for (const Span& s : spans) {
    w.begin_object();
    w.key("name");
    w.value(s.name);
    w.key("begin_ns");
    w.value(s.begin_ns);
    w.key("end_ns");
    w.value(s.end_ns);
    w.key("dur_ns");
    w.value(s.end_ns - s.begin_ns);
    w.key("thread");
    w.value(s.thread);
    w.key("parent");
    w.value(s.parent);
    w.key("open");
    w.value(s.open);
    w.key("attrs");
    w.begin_object();
    // Memory accounting rides along as synthetic attributes so sidecar
    // consumers need no special casing (v2 sidecar schema).
    w.key("alloc_bytes");
    w.value(s.open ? std::int64_t{0} : s.alloc_bytes);
    w.key("alloc_count");
    w.value(s.open ? std::int64_t{0} : s.alloc_count);
    w.key("rss_peak_kb");
    w.value(s.rss_peak_kb);
    for (const SpanAttr& a : s.attrs) {
      w.key(a.key);
      w.value(a.value);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  return std::move(w).str();
}

}  // namespace logstruct::obs
