#pragma once

/// \file json.hpp
/// Minimal JSON support for the telemetry sidecar: a streaming writer
/// (escaping, automatic commas) and a small recursive-descent parser used
/// by the round-trip tests and future trajectory tooling. Deliberately
/// tiny — no external dependency, no SAX, no allocator tricks.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace logstruct::obs::json {

/// Streaming writer. Call begin_object/begin_array, key/value pairs, then
/// matching end_*; commas and escaping are handled. str() returns the
/// document (valid once all scopes are closed).
class Writer {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by a value or begin_*.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(std::int64_t v);
  void value(std::int32_t v) { value(static_cast<std::int64_t>(v)); }
  void value(double v);
  void value(bool v);
  void null();

  /// Splice an already-serialized JSON document in value position
  /// (composing registry / tracer exports into one sidecar).
  void raw(std::string_view json_text);

  [[nodiscard]] std::string str() && { return std::move(out_); }
  [[nodiscard]] const std::string& str() const& { return out_; }

 private:
  void comma();
  void escaped(std::string_view s);

  std::string out_;
  std::vector<bool> first_in_scope_;  ///< per open scope
  bool pending_key_ = false;
};

/// Parsed JSON value (tree form).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }

  /// Object member or a shared Null sentinel when absent / not an object.
  [[nodiscard]] const Value& at(const std::string& k) const;
  /// True iff an object with member k.
  [[nodiscard]] bool has(const std::string& k) const {
    return kind == Kind::Object && object.count(k) > 0;
  }
  [[nodiscard]] std::int64_t as_int() const {
    return static_cast<std::int64_t>(number);
  }
};

/// Parse a complete document. Returns false (and sets *error when given)
/// on malformed input.
bool parse(std::string_view text, Value& out, std::string* error = nullptr);

}  // namespace logstruct::obs::json
