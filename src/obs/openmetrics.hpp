#pragma once

/// \file openmetrics.hpp
/// OpenMetrics / Prometheus text exposition of the metrics registry.
///
/// Every registry metric becomes one exposition family named
/// `logstruct_<sanitized path>` (the registry's `<layer>/<stage>/<name>`
/// path with every character outside [a-zA-Z0-9_:] mapped to `_`). The
/// original path rides along as a `path` label so nothing is lost to
/// sanitization; label values are escaped per the spec (backslash,
/// double quote, newline).
///
///  - counters  -> `# TYPE f counter` + `f_total{path="..."} v`
///  - gauges    -> `# TYPE f gauge` + `f{path="..."} v`
///  - histograms-> `# TYPE f histogram` + cumulative `f_bucket{le=...}`
///                 lines derived from the power-of-two buckets (upper
///                 bound of bucket b is 2^b - 1; bucket 0 is `le="0"`),
///                 then `f_count` and `f_sum`
///
/// The document ends with `# EOF`. When two registry paths sanitize to
/// the same family name, later kinds get a numeric suffix so each
/// family keeps exactly one `# TYPE`. tools/openmetrics_check.py is the
/// conformance oracle (run as a ctest entry and against live scrapes
/// in CI); docs/OBSERVABILITY.md documents the mapping.

#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace logstruct::obs {

/// Render a snapshot of `reg` as one OpenMetrics text document.
[[nodiscard]] std::string openmetrics_text(const Registry& reg);

/// Render Registry::global() (what /metrics and --obs-prom serve).
[[nodiscard]] std::string openmetrics_text();

namespace detail {
/// `logstruct_` + path with non-[a-zA-Z0-9_:] mapped to `_` (exposed
/// for the conformance tests).
[[nodiscard]] std::string openmetrics_family(std::string_view path);
/// Label-value escaping: \ -> \\, " -> \", newline -> \n.
[[nodiscard]] std::string openmetrics_escape_label(std::string_view v);
}  // namespace detail

}  // namespace logstruct::obs
