#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

namespace logstruct::obs {

const char* level_name(Level level) {
  switch (level) {
    case Level::Debug:
      return "debug";
    case Level::Info:
      return "info";
    case Level::Warn:
      return "warn";
    case Level::Error:
      return "error";
  }
  return "?";
}

std::string Field::format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

namespace {

bool needs_quoting(const std::string& s) {
  if (s.empty()) return true;
  for (char c : s) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t')
      return true;
  }
  return false;
}

void append_field(std::string& line, const Field& f) {
  line += ' ';
  line += f.key;
  line += '=';
  if (!needs_quoting(f.value)) {
    line += f.value;
    return;
  }
  line += '"';
  for (char c : f.value) {
    if (c == '"' || c == '\\') line += '\\';
    if (c == '\n') {
      line += "\\n";
      continue;
    }
    line += c;
  }
  line += '"';
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct Logger::Impl {
  struct RateState {
    std::int64_t window_start = 0;
    std::int32_t emitted_in_window = 0;
    std::int64_t suppressed = 0;  ///< since last emitted line
  };

  mutable std::mutex mu;
  Level min_level = Level::Info;
  std::int32_t limit = 8;
  std::int64_t window_ns = 1'000'000'000;  // one second
  std::int64_t total_suppressed = 0;
  std::function<void(Level, const std::string&)> sink;
  std::function<std::int64_t()> clock = steady_ns;
  std::map<std::string, RateState> rates;
};

Logger::Logger() : impl_(std::make_shared<Impl>()) {}

Logger& Logger::global() {
  static Logger* instance = new Logger();  // never destroyed
  return *instance;
}

void Logger::set_min_level(Level level) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->min_level = level;
}

Level Logger::min_level() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->min_level;
}

void Logger::set_rate_limit(std::int32_t limit, std::int64_t window_ns) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->limit = limit;
  impl_->window_ns = window_ns;
}

void Logger::set_sink(std::function<void(Level, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sink = std::move(sink);
}

void Logger::set_clock_for_test(std::function<std::int64_t()> clock) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->clock = std::move(clock);
}

std::int64_t Logger::total_suppressed() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->total_suppressed;
}

void Logger::log(Level level, std::string_view component,
                 std::string_view message,
                 std::initializer_list<Field> fields) {
  std::function<void(Level, const std::string&)> sink;
  std::int64_t suppressed = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (level < impl_->min_level) return;

    if (impl_->limit > 0) {
      std::string key;
      key.reserve(component.size() + 1 + message.size());
      key.append(component);
      key += '\x1f';
      key.append(message);
      Impl::RateState& rs = impl_->rates[key];
      const std::int64_t now = impl_->clock();
      if (now - rs.window_start >= impl_->window_ns) {
        rs.window_start = now;
        rs.emitted_in_window = 0;
      }
      if (rs.emitted_in_window >= impl_->limit) {
        ++rs.suppressed;
        ++impl_->total_suppressed;
        return;
      }
      ++rs.emitted_in_window;
      suppressed = rs.suppressed;
      rs.suppressed = 0;
    }
    sink = impl_->sink;
  }

  std::string line;
  line += '[';
  line += level_name(level);
  line += "] ";
  line.append(component);
  line += ": ";
  line.append(message);
  for (const Field& f : fields) append_field(line, f);
  if (suppressed > 0)
    append_field(line, Field{"suppressed", suppressed});

  if (sink) {
    sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void log(Level level, std::string_view component, std::string_view message,
         std::initializer_list<Field> fields) {
  Logger::global().log(level, component, message, fields);
}

}  // namespace logstruct::obs
