#include "obs/registry.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/json.hpp"

namespace logstruct::obs {

namespace {

int bucket_of(std::int64_t v) {
  if (v <= 0) return 0;
  int b = 0;
  while (v > 0) {
    v >>= 1;
    ++b;
  }
  return b < Histogram::kBuckets ? b : Histogram::kBuckets - 1;
}

void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(std::int64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
}

std::int64_t Histogram::approx_quantile(double q) const {
  const std::int64_t n = count();
  if (n <= 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  std::int64_t rank = static_cast<std::int64_t>(q * static_cast<double>(n - 1));
  for (int b = 0; b < kBuckets; ++b) {
    rank -= bucket(b);
    if (rank < 0) {
      // Upper bound of bucket b: 0 for b=0, else 2^b - 1.
      return b == 0 ? 0 : (std::int64_t{1} << b) - 1;
    }
  }
  return max();
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::int64_t>::max(),
             std::memory_order_relaxed);
  max_.store(std::numeric_limits<std::int64_t>::min(),
             std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: metric
  return *instance;                            // refs outlive static exit
}

Registry::Entry& Registry::find_or_create(std::string_view name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::Counter:
        e.counter = std::make_unique<Counter>();
        break;
      case Kind::Gauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case Kind::Histogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  if (it->second.kind != kind) {
    std::fprintf(stderr,
                 "obs: metric '%s' requested as two different kinds\n",
                 it->first.c_str());
    std::abort();
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name) {
  return *find_or_create(name, Kind::Counter).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *find_or_create(name, Kind::Gauge).gauge;
}

Histogram& Registry::histogram(std::string_view name) {
  return *find_or_create(name, Kind::Histogram).histogram;
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::Counter:
        out.counters.emplace_back(name, entry.counter->value());
        break;
      case Kind::Gauge:
        out.gauges.emplace_back(name, entry.gauge->value());
        break;
      case Kind::Histogram: {
        const Histogram& h = *entry.histogram;
        RegistrySnapshot::HistogramStats s;
        s.name = name;
        s.count = h.count();
        s.sum = h.sum();
        s.min = s.count > 0 ? h.min() : 0;
        s.max = s.count > 0 ? h.max() : 0;
        s.p50 = h.approx_quantile(0.5);
        s.p99 = h.approx_quantile(0.99);
        s.buckets.resize(Histogram::kBuckets);
        for (int b = 0; b < Histogram::kBuckets; ++b)
          s.buckets[static_cast<std::size_t>(b)] = h.bucket(b);
        out.histograms.push_back(std::move(s));
        break;
      }
    }
  }
  return out;
}

Registry::RawMetrics Registry::raw_metrics() const {
  RawMetrics out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::Counter:
        out.counters.emplace_back(name, entry.counter.get());
        break;
      case Kind::Gauge:
        out.gauges.emplace_back(name, entry.gauge.get());
        break;
      case Kind::Histogram:
        break;
    }
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::Counter:
        entry.counter->reset();
        break;
      case Kind::Gauge:
        entry.gauge->reset();
        break;
      case Kind::Histogram:
        entry.histogram->reset();
        break;
    }
  }
}

std::string Registry::to_json() const {
  RegistrySnapshot snap = snapshot();
  json::Writer w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snap.counters) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : snap.gauges) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    w.key("min");
    w.value(h.min);
    w.key("max");
    w.value(h.max);
    w.key("p50");
    w.value(h.p50);
    w.key("p99");
    w.value(h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace logstruct::obs
