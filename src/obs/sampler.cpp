#include "obs/sampler.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "obs/flightrec.hpp"
#include "obs/json.hpp"
#include "obs/memstats.hpp"
#include "obs/pipeline.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"

namespace logstruct::obs {

namespace {

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct Sampler::Impl {
  mutable std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  bool running = false;
  std::int64_t period_ms = 0;
  /// Fallback clock before any span exists (atomic: take() runs off
  /// the lock on both the sampler thread and sample_now() callers).
  std::atomic<std::int64_t> own_epoch_ms{-1};

  std::vector<Sample> ring;
  std::size_t capacity = 4096;
  std::size_t head = 0;  ///< next write index once ring is full
  std::int64_t total = 0;

  void push_locked(const Sample& s) {
    if (capacity == 0) return;
    if (ring.size() < capacity) {
      ring.push_back(s);
    } else {
      ring[head] = s;
      head = (head + 1) % capacity;
    }
    ++total;
  }

  Sample take() {
    Sample s;
    // Share the span timeline when it exists; otherwise fall back to a
    // private epoch so pre-pipeline samples still order correctly.
    const std::int64_t tracer_ns = PipelineTracer::global().now_ns();
    if (tracer_ns > 0) {
      s.t_ms = tracer_ns / 1'000'000;
    } else {
      std::int64_t epoch = own_epoch_ms.load(std::memory_order_relaxed);
      if (epoch < 0) {
        std::int64_t expected = -1;
        const std::int64_t now = steady_ms();
        own_epoch_ms.compare_exchange_strong(expected, now,
                                             std::memory_order_relaxed);
        epoch = own_epoch_ms.load(std::memory_order_relaxed);
      }
      s.t_ms = steady_ms() - epoch;
    }
    s.rss_kb = current_rss_kb();
    const AllocCounters allocs = process_allocs();
    s.alloc_bytes = allocs.bytes;
    s.alloc_count = allocs.count;
    // By-name registry reads: obs cannot link the trace library, so the
    // block cache's own OBS counters are the handoff (find-or-create
    // keeps this safe before the cache exists — the values read 0).
    Registry& reg = Registry::global();
    s.cache_hits = reg.counter("trace/storage/cache/hits").value();
    s.cache_misses = reg.counter("trace/storage/cache/misses").value();
    s.cache_evictions = reg.counter("trace/storage/cache/evictions").value();
    s.cache_hit_rate_bp = reg.gauge("trace/storage/cache_hit_rate").value();
    const Progress::State prog = Progress::current();
    s.progress_done = prog.done;
    s.progress_total = prog.total;
    return s;
  }

  void loop() {
    std::unique_lock<std::mutex> lock(mu);
    while (running) {
      const auto period = std::chrono::milliseconds(period_ms);
      cv.wait_for(lock, period, [this] { return !running; });
      if (!running) break;
      lock.unlock();
      Sample s = take();
      // Each tick also re-captures the flight recorder's metric table
      // so counters created mid-run make it into a later crash dump.
      FlightRecorder::global().refresh_metrics();
      lock.lock();
      // Clamp to non-decreasing in case the epoch source switched from
      // the private clock to the tracer's between ticks.
      if (!ring.empty()) {
        const Sample& prev =
            ring.size() < capacity ? ring.back()
                                   : ring[(head + capacity - 1) % capacity];
        if (s.t_ms < prev.t_ms) s.t_ms = prev.t_ms;
      }
      push_locked(s);
    }
  }
};

Sampler::Sampler() : impl_(new Impl()) {}

Sampler& Sampler::global() {
  static Sampler* instance = new Sampler();  // never destroyed
  return *instance;
}

Sampler::~Sampler() {
  stop();
  delete impl_;
}

void Sampler::start(std::int64_t period_ms) {
  Impl& im = impl();
  if (period_ms < 1) period_ms = 1;
  std::unique_lock<std::mutex> lock(im.mu);
  im.period_ms = period_ms;
  if (im.running) return;
  im.running = true;
  im.thread = std::thread([&im] { im.loop(); });
}

void Sampler::stop() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (!im.running) return;
    im.running = false;
  }
  im.cv.notify_all();
  if (im.thread.joinable()) im.thread.join();
}

bool Sampler::running() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.running;
}

std::int64_t Sampler::period_ms() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.period_ms;
}

void Sampler::set_capacity(std::size_t n) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  // Rebuild in chronological order under the new capacity.
  std::vector<Sample> chron;
  chron.reserve(im.ring.size());
  for (std::size_t i = 0; i < im.ring.size(); ++i)
    chron.push_back(im.ring[(im.head + i) % im.ring.size()]);
  if (chron.size() > n)
    chron.erase(chron.begin(),
                chron.begin() + static_cast<std::ptrdiff_t>(chron.size() - n));
  im.ring = std::move(chron);
  im.capacity = n;
  im.head = 0;
}

void Sampler::sample_now() {
  Impl& im = impl();
  Sample s = im.take();
  std::lock_guard<std::mutex> lock(im.mu);
  if (!im.ring.empty()) {
    const Sample& prev = im.ring.size() < im.capacity
                             ? im.ring.back()
                             : im.ring[(im.head + im.capacity - 1) %
                                       im.capacity];
    if (s.t_ms < prev.t_ms) s.t_ms = prev.t_ms;
  }
  im.push_locked(s);
}

std::vector<Sample> Sampler::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<Sample> out;
  out.reserve(im.ring.size());
  for (std::size_t i = 0; i < im.ring.size(); ++i)
    out.push_back(im.ring[(im.head + i) % im.ring.size()]);
  return out;
}

std::int64_t Sampler::total_samples() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.total;
}

void Sampler::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.ring.clear();
  im.head = 0;
  im.total = 0;
  im.own_epoch_ms.store(-1, std::memory_order_relaxed);
}

std::string Sampler::to_json() const {
  const std::vector<Sample> samples = snapshot();
  Impl& im = impl();
  std::int64_t period = 0;
  std::size_t capacity = 0;
  std::int64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    period = im.period_ms;
    capacity = im.capacity;
    total = im.total;
  }
  json::Writer w;
  w.begin_object();
  w.key("period_ms");
  w.value(period);
  w.key("capacity");
  w.value(static_cast<std::int64_t>(capacity));
  w.key("total");
  w.value(total);
  w.key("samples");
  w.begin_array();
  for (const Sample& s : samples) {
    w.begin_object();
    w.key("t_ms");
    w.value(s.t_ms);
    w.key("rss_kb");
    w.value(s.rss_kb);
    w.key("alloc_bytes");
    w.value(s.alloc_bytes);
    w.key("alloc_count");
    w.value(s.alloc_count);
    w.key("cache_hits");
    w.value(s.cache_hits);
    w.key("cache_misses");
    w.value(s.cache_misses);
    w.key("cache_evictions");
    w.value(s.cache_evictions);
    w.key("cache_hit_rate_bp");
    w.value(s.cache_hit_rate_bp);
    w.key("progress_done");
    w.value(s.progress_done);
    w.key("progress_total");
    w.value(s.progress_total);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

}  // namespace logstruct::obs
