#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace logstruct::obs::json {

// --- writer ---------------------------------------------------------------

void Writer::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key() already emitted the comma for this member
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
}

void Writer::escaped(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\b':
        out_ += "\\b";
        break;
      case '\f':
        out_ += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters (and only those) need the
          // numeric form; the unsigned cast keeps a signed char from
          // sign-extending into a bogus code point.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void Writer::begin_object() {
  comma();
  out_ += '{';
  first_in_scope_.push_back(true);
}

void Writer::end_object() {
  first_in_scope_.pop_back();
  out_ += '}';
}

void Writer::begin_array() {
  comma();
  out_ += '[';
  first_in_scope_.push_back(true);
}

void Writer::end_array() {
  first_in_scope_.pop_back();
  out_ += ']';
}

void Writer::key(std::string_view k) {
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
  escaped(k);
  out_ += ':';
  pending_key_ = true;
}

void Writer::value(std::string_view v) {
  comma();
  escaped(v);
}

void Writer::value(std::int64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
}

void Writer::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf literal; "%.17g" would emit "nan"/"inf" and
    // poison the whole document for strict parsers. null keeps it
    // loadable and is unambiguous for telemetry consumers.
    out_ += "null";
    return;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void Writer::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void Writer::null() {
  comma();
  out_ += "null";
}

void Writer::raw(std::string_view json_text) {
  comma();
  out_.append(json_text);
}

// --- parser ---------------------------------------------------------------

const Value& Value::at(const std::string& k) const {
  static const Value kNull;
  if (kind != Kind::Object) return kNull;
  auto it = object.find(k);
  return it == object.end() ? kNull : it->second;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  void skip_ws() {
    while (pos < text.size() && std::isspace(
                                    static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  bool fail(const std::string& msg) {
    error = msg + " at offset " + std::to_string(pos);
    return false;
  }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit)
      return fail("expected '" + std::string(lit) + "'");
    pos += lit.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos >= text.size() || text[pos] != '"')
      return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("dangling escape");
      char e = text[pos++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // Telemetry strings are ASCII; encode the BMP point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end");
    char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = Value::Kind::Object;
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos >= text.size() || text[pos] != ':')
          return fail("expected ':'");
        ++pos;
        Value member;
        if (!parse_value(member)) return false;
        out.object.emplace(std::move(key), std::move(member));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = Value::Kind::Array;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Value item;
        if (!parse_value(item)) return false;
        out.array.push_back(std::move(item));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = Value::Kind::String;
      return parse_string(out.string);
    }
    if (c == 't') {
      out.kind = Value::Kind::Bool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = Value::Kind::Bool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = Value::Kind::Null;
      return literal("null");
    }
    // number
    std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+'))
      ++pos;
    if (pos == start) return fail("expected value");
    out.kind = Value::Kind::Number;
    std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    out.number = std::strtod(num.c_str(), &end);
    if (end == num.c_str()) return fail("bad number");
    return true;
  }
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string* error) {
  Parser p{text, 0, {}};
  out = Value{};
  if (!p.parse_value(out)) {
    if (error) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) *error = "trailing garbage at offset " + std::to_string(p.pos);
    return false;
  }
  return true;
}

}  // namespace logstruct::obs::json
