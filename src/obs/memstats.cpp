#include "obs/memstats.hpp"

#include <cstdio>
#include <cstring>

namespace logstruct::obs {

namespace detail {
thread_local std::int64_t t_alloc_bytes = 0;
thread_local std::int64_t t_alloc_count = 0;
thread_local std::int64_t t_flushed_bytes = 0;
thread_local std::int64_t t_flushed_count = 0;
std::atomic<std::int64_t> g_alloc_bytes{0};
std::atomic<std::int64_t> g_alloc_count{0};
}  // namespace detail

MemStats read_mem_stats() {
  MemStats out;
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return out;
  char line[256];
  int found = 0;
  while (found < 2 && std::fgets(line, sizeof line, f)) {
    long long kb = 0;
    if (std::strncmp(line, "VmRSS:", 6) == 0 &&
        std::sscanf(line + 6, "%lld", &kb) == 1) {
      out.current_rss_kb = kb;
      ++found;
    } else if (std::strncmp(line, "VmHWM:", 6) == 0 &&
               std::sscanf(line + 6, "%lld", &kb) == 1) {
      out.peak_rss_kb = kb;
      ++found;
    }
  }
  std::fclose(f);
#endif
  return out;
}

std::int64_t current_rss_kb() { return read_mem_stats().current_rss_kb; }

std::int64_t peak_rss_kb() { return read_mem_stats().peak_rss_kb; }

bool reset_peak_rss() {
#if defined(__linux__)
  // Writing "5" to clear_refs resets VmHWM to the current VmRSS, so a
  // subsequent peak_rss_kb() reflects only allocations after this call.
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (!f) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
#else
  return false;
#endif
}

AllocCounters thread_allocs() {
  return {detail::t_alloc_bytes, detail::t_alloc_count};
}

AllocCounters process_allocs() {
  // Fold in the calling thread's unflushed tail so single-threaded
  // callers see exact totals; other threads lag by at most one batch.
  detail::flush_thread_allocs();
  return {detail::g_alloc_bytes.load(std::memory_order_relaxed),
          detail::g_alloc_count.load(std::memory_order_relaxed)};
}

bool alloc_hook_active() { return detail::hook_linked(); }

void credit_external_allocs(const AllocCounters& delta) {
  detail::t_alloc_bytes += delta.bytes;
  detail::t_alloc_count += delta.count;
}

}  // namespace logstruct::obs
