#pragma once

/// \file progress.hpp
/// Pass-progress instrumentation: a process-global (done, total) pair
/// plus the name of the innermost in-flight pass.
///
/// A Progress object is an RAII scope opened by a long pipeline pass
/// (blocked freeze, initial partitioning, stepping, metric kernels).
/// While it is open:
///  - tick()/set_done() update the global done counter and mirror
///    (done, total) into the registry gauges `obs/progress/done` and
///    `obs/progress/total`, so the pair is scrapeable over /metrics and
///    sampled by obs::Sampler;
///  - the pass name is published to a fixed global buffer the crash
///    flight recorder can read from a signal handler (current_pass());
///  - the optional --progress stderr ticker renders `pass done/total`.
///
/// Scopes nest (a pass opening a finer-grained sub-progress): the
/// innermost scope owns the globals and the destructor restores the
/// enclosing scope's state. Construction/destruction are expected from
/// the serial pass driver; tick() may be called from any worker thread
/// (it is a single relaxed fetch_add plus a gauge store).
///
/// Like the rest of obs, this is ordinary API: it stays compiled and
/// callable under LOGSTRUCT_OBS=0.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace logstruct::obs {

class Progress {
 public:
  /// Open a progress scope for `pass`. total == 0 means indeterminate
  /// (the pass is named but reports no unit count).
  Progress(std::string_view pass, std::int64_t total);
  ~Progress();

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  /// Advance the global done counter by n. Thread-safe; callable from
  /// parallel_for bodies (callers should batch, e.g. every 64K items).
  static void tick(std::int64_t n = 1);

  /// Overwrite the global done counter (monotonic use is on the caller).
  static void set_done(std::int64_t done);

  /// Grow the global total (for passes that discover work as they go).
  static void add_total(std::int64_t n);

  struct State {
    char pass[64] = {0};  ///< innermost pass name ("" = no pass open)
    std::int64_t done = 0;
    std::int64_t total = 0;  ///< 0 = indeterminate
  };
  /// Current (pass, done, total), for the sampler and tests.
  [[nodiscard]] static State current();

  /// Async-signal-safe copy of the in-flight pass name into buf
  /// (always NUL-terminated; returns the copied length).
  static std::size_t current_pass(char* buf, std::size_t n);

  /// Async-signal-safe (done, total) reads — single atomic loads, for
  /// the flight recorder's crash dump.
  [[nodiscard]] static std::int64_t done_now();
  [[nodiscard]] static std::int64_t total_now();

  /// Enable/disable the --progress stderr ticker (a small background
  /// thread repainting `pass done/total (pct)` every period_ms).
  static void enable_ticker(bool on, std::int64_t period_ms = 200);
  [[nodiscard]] static bool ticker_enabled();

 private:
  State saved_;  ///< enclosing scope's state, restored on destruction
};

}  // namespace logstruct::obs
