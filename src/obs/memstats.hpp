#pragma once

/// \file memstats.hpp
/// Memory accounting for the self-instrumentation layer.
///
/// Two independent sources:
///  - Process RSS from /proc/self/status (VmRSS = current, VmHWM = peak
///    high-water mark), zeros on platforms without procfs. One read costs
///    a few microseconds — fine at span granularity, not in hot loops.
///  - Thread-local allocation counters fed by the replacement operator
///    new in alloc_hook.cpp (compiled in when LOGSTRUCT_OBS=1 and
///    LOGSTRUCT_ALLOC_HOOK is ON). Counters are cumulative per thread;
///    AllocScope captures a delta over a scope. Without the hook the
///    counters stay zero, so consumers must treat 0 as "unavailable",
///    not "no allocation" — alloc_hook_active() tells them apart.
///
/// Like the rest of obs, this is ordinary API: it stays compiled and
/// callable under LOGSTRUCT_OBS=0 (only the OBS_ALLOC_SCOPE macro and
/// the hook itself vanish).

#include <atomic>
#include <cstdint>

namespace logstruct::obs {

struct MemStats {
  std::int64_t current_rss_kb = 0;  ///< VmRSS; 0 when unavailable
  std::int64_t peak_rss_kb = 0;     ///< VmHWM; 0 when unavailable
};

/// One parse of /proc/self/status; zeros where the field (or procfs)
/// is missing.
[[nodiscard]] MemStats read_mem_stats();

[[nodiscard]] std::int64_t current_rss_kb();
[[nodiscard]] std::int64_t peak_rss_kb();

/// Reset the kernel's peak-RSS high-water mark (VmHWM) to the current
/// RSS via /proc/self/clear_refs, so peak_rss_kb() measures only the
/// phase that follows. Returns false where unsupported (non-Linux, or
/// procfs not writable); callers must then treat the peak as cumulative.
bool reset_peak_rss();

struct AllocCounters {
  std::int64_t bytes = 0;
  std::int64_t count = 0;
};

/// Cumulative heap allocations performed by the calling thread since it
/// started (zeros without the counting hook).
[[nodiscard]] AllocCounters thread_allocs();

/// Approximate process-wide cumulative allocations: each thread flushes
/// its counters into a shared pair of atomics every ~256 KiB allocated
/// (alloc_hook.cpp), so the total lags per-thread truth by at most one
/// flush batch per live thread. Zeros without the counting hook. Feeds
/// the obs::Sampler time series; use thread_allocs()/AllocScope for
/// exact per-scope accounting.
[[nodiscard]] AllocCounters process_allocs();

/// True when the counting operator-new replacement is linked in.
[[nodiscard]] bool alloc_hook_active();

/// Add allocations performed elsewhere (e.g. by pool workers on behalf of
/// this thread) to the calling thread's counters, so an enclosing
/// AllocScope sees fanned-out work as if it ran inline.
void credit_external_allocs(const AllocCounters& delta);

namespace detail {
/// Written by alloc_hook.cpp's operator new. Constant-initialized PODs,
/// safe to bump during static initialization and thread start-up.
extern thread_local std::int64_t t_alloc_bytes;
extern thread_local std::int64_t t_alloc_count;

/// Per-thread high-water marks of the last flush into the process-wide
/// totals, and the shared totals themselves (see process_allocs()).
extern thread_local std::int64_t t_flushed_bytes;
extern thread_local std::int64_t t_flushed_count;
extern std::atomic<std::int64_t> g_alloc_bytes;
extern std::atomic<std::int64_t> g_alloc_count;

/// Batch size: a thread publishes to the shared totals once this many
/// bytes accumulate locally, keeping the hot path free of shared RMWs.
inline constexpr std::int64_t kAllocFlushBytes = 256 * 1024;

inline void flush_thread_allocs() {
  const std::int64_t db = t_alloc_bytes - t_flushed_bytes;
  const std::int64_t dc = t_alloc_count - t_flushed_count;
  if (db == 0 && dc == 0) return;
  t_flushed_bytes = t_alloc_bytes;
  t_flushed_count = t_alloc_count;
  g_alloc_bytes.fetch_add(db, std::memory_order_relaxed);
  g_alloc_count.fetch_add(dc, std::memory_order_relaxed);
}

/// Defined in alloc_hook.cpp; referencing it from memstats.cpp forces
/// the hook's object file (and with it the operator new replacement)
/// to be pulled out of the static library.
bool hook_linked();
}  // namespace detail

/// RAII delta of the calling thread's allocation counters. Begin and end
/// must run on the same thread (like ScopedSpan).
class AllocScope {
 public:
  AllocScope() : start_(thread_allocs()) {}

  [[nodiscard]] AllocCounters delta() const {
    AllocCounters now = thread_allocs();
    return {now.bytes - start_.bytes, now.count - start_.count};
  }

 private:
  AllocCounters start_;
};

/// Stand-in for OBS_ALLOC_SCOPE(var) under LOGSTRUCT_OBS=0 so
/// `var.delta()` still compiles (to zeros).
struct NoopAllocScope {
  [[nodiscard]] AllocCounters delta() const { return {}; }
};

}  // namespace logstruct::obs
