#pragma once

/// \file sampler.hpp
/// Periodic background sampler: a time series of process vitals in a
/// bounded ring buffer.
///
/// Every period (--obs-period-ms) the sampler thread snapshots:
///  - current RSS (memstats),
///  - process-wide cumulative allocation totals (batched, see
///    memstats.hpp process_allocs()),
///  - the block-cache hit/miss/eviction counters and derived hit-rate
///    gauge (read from the registry by name — obs cannot link the
///    trace library),
///  - pass progress (obs/progress gauges via Progress::current()).
///
/// Samples land in a bounded ring (default 4096; oldest overwritten),
/// exported as the `sampler` time-series block of the
/// logstruct-obs-sidecar/v4 schema and as Chrome `ph:"C"` counter
/// tracks (export_chrome.hpp), so Perfetto renders RSS-over-time under
/// the span flame chart. Each tick also refreshes the crash flight
/// recorder's metric table so counters born mid-run appear in a later
/// crash dump.
///
/// Timestamps share the pipeline tracer's epoch (now_ns()), aligning
/// the time series with span begin/end times in every export.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace logstruct::obs {

/// One periodic snapshot. All fields are cumulative-or-instant gauges;
/// consumers difference adjacent samples for rates.
struct Sample {
  std::int64_t t_ms = 0;  ///< tracer-epoch-relative milliseconds
  std::int64_t rss_kb = 0;
  std::int64_t alloc_bytes = 0;
  std::int64_t alloc_count = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_evictions = 0;
  std::int64_t cache_hit_rate_bp = 0;  ///< basis points (9980 = 99.8%)
  std::int64_t progress_done = 0;
  std::int64_t progress_total = 0;
};

class Sampler {
 public:
  /// The process-wide instance (tests may construct private ones).
  static Sampler& global();

  Sampler();
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Start (or re-period) the background thread. period_ms is clamped
  /// to >= 1. Idempotent.
  void start(std::int64_t period_ms);

  /// Stop and join the thread. The collected series stays readable.
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] std::int64_t period_ms() const;

  /// Ring capacity (default 4096). Shrinking drops oldest samples.
  void set_capacity(std::size_t n);

  /// Take one sample synchronously on the calling thread (tests, and
  /// the final sample finish_obs takes before export).
  void sample_now();

  /// Chronological copy (oldest first).
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Total samples ever taken, including overwritten ones.
  [[nodiscard]] std::int64_t total_samples() const;

  /// Drop the series (keeps the thread running if started).
  void reset();

  /// {"period_ms":N,"capacity":N,"total":N,"samples":[...]} — the
  /// sidecar v4 `sampler` block.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Impl;
  Impl& impl() const { return *impl_; }
  Impl* impl_;
};

}  // namespace logstruct::obs
