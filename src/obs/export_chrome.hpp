#pragma once

/// \file export_chrome.hpp
/// Chrome trace-event JSON export for the pipeline tracer.
///
/// Converts a span snapshot plus a registry snapshot into the JSON
/// object format that Perfetto (https://ui.perfetto.dev) and
/// chrome://tracing load directly:
///  - closed spans become `ph:"X"` complete duration events on a
///    per-thread track (ts/dur in microseconds, attrs in args);
///  - still-open spans become `ph:"B"` begin events, so a crashed run's
///    partial trace remains loadable;
///  - counters and gauges become `ph:"C"` counter tracks sampled at the
///    final span timestamp (the registry keeps running totals, not a
///    time series — each track carries one closing sample);
///  - obs::Sampler time series (when passed) become real `ph:"C"`
///    counter tracks over time (`sampler/rss_kb`, `sampler/alloc_bytes`,
///    cache hits/misses, pass progress), so Perfetto draws RSS-over-time
///    under the span flame chart;
///  - `ph:"M"` metadata events name the process and the tracer's dense
///    thread indices.
///
/// Wired into every harness as `--obs-chrome=<path>` by
/// util/obs_flags.hpp. See docs/OBSERVABILITY.md for a quickstart.

#include <string>
#include <string_view>
#include <vector>

#include "obs/pipeline.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"

namespace logstruct::obs {

/// Serialize spans + metrics as one Chrome trace-event JSON document:
/// {"displayTimeUnit":"ms","traceEvents":[...]}.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<Span>& spans, const RegistrySnapshot& metrics,
    std::string_view process_name = "logstruct");

/// Same, plus the sampler time series as counter tracks over time.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<Span>& spans, const RegistrySnapshot& metrics,
    const std::vector<Sample>& samples,
    std::string_view process_name = "logstruct");

}  // namespace logstruct::obs
