#include "obs/export_chrome.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/json.hpp"

namespace logstruct::obs {

namespace {

constexpr std::int64_t kPid = 1;  ///< single-process tool; fixed pid

double to_us(std::int64_t ns) { return static_cast<double>(ns) / 1e3; }

void event_header(json::Writer& w, std::string_view name,
                  std::string_view ph, double ts_us, std::int64_t tid) {
  w.begin_object();
  w.key("name");
  w.value(name);
  w.key("ph");
  w.value(ph);
  w.key("ts");
  w.value(ts_us);
  w.key("pid");
  w.value(kPid);
  w.key("tid");
  w.value(tid);
}

void metadata_event(json::Writer& w, std::string_view kind,
                    std::int64_t tid, std::string_view name) {
  event_header(w, kind, "M", 0.0, tid);
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value(name);
  w.end_object();
  w.end_object();
}

void counter_event(json::Writer& w, std::string_view name, double ts_us,
                   std::int64_t value) {
  event_header(w, name, "C", ts_us, 0);
  w.key("args");
  w.begin_object();
  w.key("value");
  w.value(value);
  w.end_object();
  w.end_object();
}

}  // namespace

std::string chrome_trace_json(const std::vector<Span>& spans,
                              const RegistrySnapshot& metrics,
                              std::string_view process_name) {
  return chrome_trace_json(spans, metrics, std::vector<Sample>{},
                           process_name);
}

std::string chrome_trace_json(const std::vector<Span>& spans,
                              const RegistrySnapshot& metrics,
                              const std::vector<Sample>& samples,
                              std::string_view process_name) {
  std::int32_t max_thread = -1;
  std::int64_t last_ns = 0;
  for (const Span& s : spans) {
    max_thread = std::max(max_thread, s.thread);
    last_ns = std::max(last_ns, std::max(s.begin_ns, s.end_ns));
  }

  json::Writer w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();

  metadata_event(w, "process_name", 0, process_name);
  for (std::int32_t t = 0; t <= max_thread; ++t) {
    metadata_event(w, "thread_name", t,
                   "pipeline-thread-" + std::to_string(t));
  }

  for (const Span& s : spans) {
    if (s.open) {
      // Unclosed span (crash, or snapshot taken mid-stage): a lone
      // begin event keeps the trace loadable.
      event_header(w, s.name, "B", to_us(s.begin_ns), s.thread);
    } else {
      event_header(w, s.name, "X", to_us(s.begin_ns), s.thread);
      w.key("dur");
      w.value(to_us(s.end_ns - s.begin_ns));
    }
    w.key("args");
    w.begin_object();
    if (!s.open) {
      w.key("alloc_bytes");
      w.value(s.alloc_bytes);
      w.key("alloc_count");
      w.value(s.alloc_count);
      w.key("rss_peak_kb");
      w.value(s.rss_peak_kb);
    }
    for (const SpanAttr& a : s.attrs) {
      w.key(a.key);
      w.value(a.value);
    }
    w.end_object();
    w.end_object();
  }

  const double close_us = to_us(last_ns);
  for (const auto& [name, value] : metrics.counters)
    counter_event(w, name, close_us, value);
  for (const auto& [name, value] : metrics.gauges)
    counter_event(w, name, close_us, value);

  // Sampler time series: real counter tracks (one event per sample),
  // drawn by Perfetto as line charts under the flame chart. Timestamps
  // share the tracer epoch, so the series lines up with the spans.
  for (const Sample& s : samples) {
    const double ts_us = static_cast<double>(s.t_ms) * 1e3;
    counter_event(w, "sampler/rss_kb", ts_us, s.rss_kb);
    counter_event(w, "sampler/alloc_bytes", ts_us, s.alloc_bytes);
    counter_event(w, "sampler/cache_hits", ts_us, s.cache_hits);
    counter_event(w, "sampler/cache_misses", ts_us, s.cache_misses);
    counter_event(w, "sampler/progress_done", ts_us, s.progress_done);
  }

  w.end_array();
  w.end_object();
  return std::move(w).str();
}

}  // namespace logstruct::obs
