#include "obs/flightrec.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include "obs/progress.hpp"
#include "obs/registry.hpp"

namespace logstruct::obs {

namespace {

// ---- async-signal-safe building blocks ---------------------------------

/// Buffered writer over a file descriptor using only write(2). Every
/// method is async-signal-safe.
struct SafeWriter {
  int fd = -1;
  char buf[1024];
  std::size_t len = 0;
  bool ok = true;

  void flush() {
    std::size_t off = 0;
    while (ok && off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }

  void put(char c) {
    if (len >= sizeof buf) flush();
    buf[len++] = c;
  }

  void str(const char* s) {
    while (*s != 0) put(*s++);
  }

  void i64(long long v) {
    char tmp[24];
    int n = 0;
    unsigned long long u;
    if (v < 0) {
      put('-');
      u = static_cast<unsigned long long>(-(v + 1)) + 1;
    } else {
      u = static_cast<unsigned long long>(v);
    }
    do {
      tmp[n++] = static_cast<char>('0' + (u % 10));
      u /= 10;
    } while (u != 0);
    while (n > 0) put(tmp[--n]);
  }

  /// JSON string contents (no surrounding quotes): escapes backslash,
  /// quote, and maps control bytes to '?'.
  void escaped(const char* s) {
    for (; *s != 0; ++s) {
      const char c = *s;
      if (c == '\\' || c == '"') {
        put('\\');
        put(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        put('?');
      } else {
        put(c);
      }
    }
  }
};

/// VmRSS/VmHWM from /proc/self/status using only open/read/close.
void signal_safe_rss_kb(long long* rss_kb, long long* peak_kb) {
  *rss_kb = 0;
  *peak_kb = 0;
#if defined(__linux__)
  const int fd = ::open("/proc/self/status", O_RDONLY);
  if (fd < 0) return;
  char data[4096];
  std::size_t total = 0;
  while (total < sizeof data - 1) {
    const ssize_t n = ::read(fd, data + total, sizeof data - 1 - total);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    total += static_cast<std::size_t>(n);
  }
  ::close(fd);
  data[total] = 0;
  const struct {
    const char* key;
    long long* out;
  } fields[] = {{"VmRSS:", rss_kb}, {"VmHWM:", peak_kb}};
  for (const auto& f : fields) {
    const char* p = std::strstr(data, f.key);
    if (p == nullptr) continue;
    p += std::strlen(f.key);
    while (*p == ' ' || *p == '\t') ++p;
    long long v = 0;
    while (*p >= '0' && *p <= '9') v = v * 10 + (*p++ - '0');
    *f.out = v;
  }
#endif
}

// ---- signal handling ----------------------------------------------------

struct sigaction g_old_segv;
struct sigaction g_old_abrt;

void crash_handler(int sig) {
  FlightRecorder::global().dump_to_path(sig);
  // Restore the default disposition and re-deliver, so exit status and
  // core dumps look exactly as they would without the recorder.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* instance = new FlightRecorder();  // never destroyed
  return *instance;
}

void FlightRecorder::record(bool close, std::string_view name,
                            std::int64_t t_ns, std::int32_t thread) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = ring_[ticket % kRingSize];
  std::uint64_t cur = s.seq.load(std::memory_order_relaxed);
  if ((cur & 1) != 0 ||
      !s.seq.compare_exchange_strong(cur, cur | 1,
                                     std::memory_order_acq_rel)) {
    // Another writer holds this slot (ring lapped within one record):
    // drop rather than block — the recorder must never stall a pass.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s.t_ns = t_ns;
  s.thread = thread;
  s.close = close;
  const std::size_t n =
      name.size() < kNameLen - 1 ? name.size() : kNameLen - 1;
  std::memcpy(s.name, name.data(), n);
  s.name[n] = 0;
  s.seq.store((ticket + 1) << 1, std::memory_order_release);
}

void FlightRecorder::arm(std::string_view path) {
  const std::size_t n =
      path.size() < sizeof path_ - 1 ? path.size() : sizeof path_ - 1;
  std::memcpy(path_, path.data(), n);
  path_[n] = 0;
  refresh_metrics();
  if (armed_.exchange(true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, &g_old_segv);
  ::sigaction(SIGABRT, &sa, &g_old_abrt);
}

void FlightRecorder::disarm() {
  if (!armed_.exchange(false)) return;
  ::sigaction(SIGSEGV, &g_old_segv, nullptr);
  ::sigaction(SIGABRT, &g_old_abrt, nullptr);
}

bool FlightRecorder::armed() const {
  return armed_.load(std::memory_order_relaxed);
}

std::string FlightRecorder::path() const { return std::string(path_); }

void FlightRecorder::refresh_metrics() {
  const Registry::RawMetrics raw = Registry::global().raw_metrics();
  // Seqlock-style: epoch goes odd while the fixed table is rewritten;
  // a dump that observes an odd or changed epoch reports the metrics
  // section as truncated instead of reading torn entries.
  metric_epoch_.fetch_add(1, std::memory_order_acq_rel);  // -> odd
  std::uint32_t count = 0;
  auto add = [&](const std::string& name, const void* ptr, bool is_gauge) {
    if (count >= kMaxMetrics) return;
    MetricRef& m = metrics_[count];
    const std::size_t n = name.size() < sizeof m.name - 1
                              ? name.size()
                              : sizeof m.name - 1;
    std::memcpy(m.name, name.data(), n);
    m.name[n] = 0;
    m.ptr = ptr;
    m.is_gauge = is_gauge;
    ++count;
  };
  for (const auto& [name, c] : raw.counters) add(name, c, false);
  for (const auto& [name, g] : raw.gauges) add(name, g, true);
  metric_count_.store(count, std::memory_order_relaxed);
  metric_epoch_.fetch_add(1, std::memory_order_acq_rel);  // -> even
}

bool FlightRecorder::dump(int fd, int sig) const {
  SafeWriter w;
  w.fd = fd;
  w.str("{\"schema\":\"logstruct-flightrec/v1\",\"signal\":");
  w.i64(sig);

  char pass[64];
  Progress::current_pass(pass, sizeof pass);
  w.str(",\"pass\":\"");
  w.escaped(pass);
  w.str("\",\"progress\":{\"done\":");
  w.i64(Progress::done_now());
  w.str(",\"total\":");
  w.i64(Progress::total_now());
  w.str("}");

  long long rss = 0;
  long long peak = 0;
  signal_safe_rss_kb(&rss, &peak);
  w.str(",\"rss_kb\":");
  w.i64(rss);
  w.str(",\"peak_rss_kb\":");
  w.i64(peak);

  w.str(",\"ring_dropped\":");
  w.i64(dropped_.load(std::memory_order_relaxed));

  // Oldest-to-newest sweep of the ring. Slots whose sequence word does
  // not match their ticket (still being written, or lapped mid-dump)
  // are skipped.
  w.str(",\"events\":[");
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t span = head < kRingSize ? head : kRingSize;
  bool first = true;
  for (std::uint64_t i = head - span; i < head; ++i) {
    const Slot& s = ring_[i % kRingSize];
    const std::uint64_t want = (i + 1) << 1;
    if (s.seq.load(std::memory_order_acquire) != want) continue;
    char name[kNameLen];
    std::memcpy(name, s.name, kNameLen);
    name[kNameLen - 1] = 0;
    const std::int64_t t_ns = s.t_ns;
    const std::int32_t thread = s.thread;
    const bool close = s.close;
    if (s.seq.load(std::memory_order_acquire) != want) continue;
    if (!first) w.put(',');
    first = false;
    w.str("{\"t_ns\":");
    w.i64(t_ns);
    w.str(",\"thread\":");
    w.i64(thread);
    w.str(",\"kind\":\"");
    w.str(close ? "close" : "open");
    w.str("\",\"name\":\"");
    w.escaped(name);
    w.str("\"}");
  }
  w.str("]");

  const std::uint32_t e1 = metric_epoch_.load(std::memory_order_acquire);
  bool truncated = (e1 & 1) != 0;
  w.str(",\"counters\":{");
  if (!truncated) {
    const std::uint32_t count = metric_count_.load(std::memory_order_relaxed);
    bool first_c = true;
    for (std::uint32_t i = 0; i < count; ++i) {
      const MetricRef& m = metrics_[i];
      if (m.is_gauge || m.ptr == nullptr) continue;
      if (!first_c) w.put(',');
      first_c = false;
      w.put('"');
      w.escaped(m.name);
      w.str("\":");
      w.i64(static_cast<const Counter*>(m.ptr)->value());
    }
  }
  w.str("},\"gauges\":{");
  if (!truncated) {
    const std::uint32_t count = metric_count_.load(std::memory_order_relaxed);
    bool first_g = true;
    for (std::uint32_t i = 0; i < count; ++i) {
      const MetricRef& m = metrics_[i];
      if (!m.is_gauge || m.ptr == nullptr) continue;
      if (!first_g) w.put(',');
      first_g = false;
      w.put('"');
      w.escaped(m.name);
      w.str("\":");
      w.i64(static_cast<const Gauge*>(m.ptr)->value());
    }
  }
  w.str("}");
  truncated =
      truncated || metric_epoch_.load(std::memory_order_acquire) != e1;
  w.str(",\"metrics_truncated\":");
  w.str(truncated ? "true" : "false");
  w.str("}\n");
  w.flush();
  return w.ok;
}

bool FlightRecorder::dump_to_path(int sig) const {
  if (path_[0] == 0) return false;
  const int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dump(fd, sig);
  ::close(fd);
  return ok;
}

std::string FlightRecorder::to_json(int sig) const {
  char tmpl[] = "/tmp/logstruct-flightrec-XXXXXX";
  const int fd = ::mkstemp(tmpl);
  if (fd < 0) return {};
  dump(fd, sig);
  std::string out;
  if (::lseek(fd, 0, SEEK_SET) == 0) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  ::unlink(tmpl);
  return out;
}

std::int64_t FlightRecorder::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void FlightRecorder::reset() {
  head_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  for (Slot& s : ring_) {
    s.seq.store(0, std::memory_order_relaxed);
    s.t_ns = 0;
    s.thread = 0;
    s.close = false;
    s.name[0] = 0;
  }
}

}  // namespace logstruct::obs
