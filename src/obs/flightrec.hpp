#pragma once

/// \file flightrec.hpp
/// Crash flight recorder: a fixed-size lock-free ring of recent span
/// open/close events plus a SIGSEGV/SIGABRT handler that dumps the
/// ring, live counter/gauge values, progress, and RSS to a post-mortem
/// JSON artifact (schema logstruct-flightrec/v1, docs/FORMATS.md).
///
/// Recording (record()): the pipeline tracer calls it on every span
/// begin/end. A ticket from an atomic counter picks a slot; the writer
/// claims the slot by flipping its sequence word odd (skipping the
/// record if another writer holds it — wrap-around contention drops
/// rather than blocks), copies the span name into the slot's inline
/// buffer, and releases with an even sequence. No locks, no allocation,
/// ~100ns — cheap enough to stay always-on at span (stage) granularity.
///
/// Dumping (dump()): runs inside the signal handler, so it uses only
/// async-signal-safe primitives — open/write/close, atomic loads, and
/// hand-rolled integer formatting. Counter/gauge values come from a
/// pointer table captured from the registry in normal context
/// (refresh_metrics(), called at arm time and by the sampler tick);
/// registry objects are never destroyed, so the pointers stay valid.
/// Slots mutated mid-dump are detected via their sequence word and
/// skipped. The handler then re-raises with the default disposition so
/// exit codes and core dumps are unchanged.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace logstruct::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kRingSize = 256;
  static constexpr std::size_t kNameLen = 48;   ///< truncating copy
  static constexpr std::size_t kMaxMetrics = 256;

  static FlightRecorder& global();

  /// Record one span event (kind: false = open, true = close). t_ns is
  /// tracer-epoch-relative. Lock-free; callable from any thread.
  void record(bool close, std::string_view name, std::int64_t t_ns,
              std::int32_t thread);

  /// Install SIGSEGV/SIGABRT handlers that dump to `path` (copied into
  /// a fixed buffer; truncated beyond ~500 bytes). Idempotent.
  void arm(std::string_view path);

  /// Restore the previous signal dispositions.
  void disarm();

  [[nodiscard]] bool armed() const;
  [[nodiscard]] std::string path() const;

  /// Re-capture the registry's counter/gauge pointer table (normal
  /// context only). Called by arm() and each sampler tick so metrics
  /// created mid-run appear in a later crash dump.
  void refresh_metrics();

  /// Write the dump document to fd. Async-signal-safe. `sig` is the
  /// signal number being reported (0 for a non-crash dump).
  bool dump(int fd, int sig) const;

  /// open(path) + dump() + close. Async-signal-safe.
  bool dump_to_path(int sig) const;

  /// Convenience for tests: dump() into a string via a pipe-free
  /// temp-file-less path (renders in normal context).
  [[nodiscard]] std::string to_json(int sig = 0) const;

  /// Number of records dropped to slot contention.
  [[nodiscard]] std::int64_t dropped() const;

  /// Clear the ring (tests). Not thread-safe against record().
  void reset();

 private:
  FlightRecorder() = default;

  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 empty; odd = writing;
                                        ///< even = (ticket+1)*2
    std::int64_t t_ns = 0;
    std::int32_t thread = 0;
    bool close = false;
    char name[kNameLen] = {0};
  };

  struct MetricRef {
    char name[64] = {0};
    const void* ptr = nullptr;  ///< Counter* or Gauge*
    bool is_gauge = false;
  };

  Slot ring_[kRingSize];
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::int64_t> dropped_{0};

  MetricRef metrics_[kMaxMetrics];
  std::atomic<std::uint32_t> metric_count_{0};
  std::atomic<std::uint32_t> metric_epoch_{0};  ///< odd while refreshing

  char path_[512] = {0};
  std::atomic<bool> armed_{false};
};

}  // namespace logstruct::obs
