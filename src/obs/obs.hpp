#pragma once

/// \file obs.hpp
/// Self-instrumentation entry point: compile-time kill switch and the
/// macros the rest of the codebase uses to emit telemetry.
///
/// The library traces other programs; this layer lets it trace itself.
/// Three primitives (docs/OBSERVABILITY.md):
///  - Registry: process-wide counters / gauges / histograms, lock-free on
///    the hot path (one atomic add per update).
///  - PipelineTracer: begin/end spans for pipeline stages, exportable as
///    JSON or — dogfooding — as a trace::Trace (trace/selftrace.hpp).
///  - Logger: leveled, rate-limited structured logging (obs/log.hpp).
///
/// All instrumentation call sites go through the OBS_* macros below so a
/// `-DLOGSTRUCT_OBS=0` build compiles them out entirely; the obs API
/// itself stays available (it is ordinary code, not instrumentation).
///
/// Metric and span names follow `<layer>/<stage>/<name>`, e.g.
/// `order/infer_source_order` or `sim/charm/messages_enqueued`.

#ifndef LOGSTRUCT_OBS
#define LOGSTRUCT_OBS 1
#endif

#include "obs/memstats.hpp"
#include "obs/pipeline.hpp"
#include "obs/registry.hpp"

#define OBS_CONCAT_INNER_(a, b) a##b
#define OBS_CONCAT_(a, b) OBS_CONCAT_INNER_(a, b)

#if LOGSTRUCT_OBS

/// Open a pipeline span for the enclosing scope; `var` names the local so
/// attributes can be attached: OBS_SPAN(sp, "order/initial"); sp.attr(...).
#define OBS_SPAN(var, name) ::logstruct::obs::ScopedSpan var(name)

/// Anonymous span when no attributes are needed.
#define OBS_SPAN_ANON(name) \
  ::logstruct::obs::ScopedSpan OBS_CONCAT_(obs_span_anon_, __LINE__)(name)

/// Record the enclosing scope's duration into the histogram `name` (ns).
#define OBS_SCOPED_TIMER(name) \
  ::logstruct::obs::ScopedTimer OBS_CONCAT_(obs_timer_, __LINE__)(name)

/// Counter / gauge updates. `name` must be a string literal: the registry
/// handle is resolved once per call site (function-local static).
#define OBS_COUNTER_ADD(name, n)                                     \
  do {                                                               \
    static ::logstruct::obs::Counter& obs_counter_ =                 \
        ::logstruct::obs::Registry::global().counter(name);          \
    obs_counter_.add(n);                                             \
  } while (0)

#define OBS_COUNTER_INC(name) OBS_COUNTER_ADD(name, 1)

#define OBS_GAUGE_SET(name, v)                                       \
  do {                                                               \
    static ::logstruct::obs::Gauge& obs_gauge_ =                     \
        ::logstruct::obs::Registry::global().gauge(name);            \
    obs_gauge_.set(v);                                               \
  } while (0)

#define OBS_HISTOGRAM_RECORD(name, v)                                \
  do {                                                               \
    static ::logstruct::obs::Histogram& obs_hist_ =                  \
        ::logstruct::obs::Registry::global().histogram(name);        \
    obs_hist_.record(v);                                             \
  } while (0)

/// Thread-local allocation delta over the enclosing scope; `var` names
/// the local so the delta can be read: OBS_ALLOC_SCOPE(as);
/// ... work ...; auto d = as.delta(). Zeros without the counting hook
/// (obs/memstats.hpp).
#define OBS_ALLOC_SCOPE(var) ::logstruct::obs::AllocScope var

#else  // LOGSTRUCT_OBS == 0: zero-overhead build, call sites vanish.

#define OBS_SPAN(var, name) \
  ::logstruct::obs::NoopSpan var;  \
  (void)var
#define OBS_SPAN_ANON(name) \
  do {                      \
  } while (0)
#define OBS_SCOPED_TIMER(name) \
  do {                         \
  } while (0)
#define OBS_COUNTER_ADD(name, n) \
  do {                           \
    (void)sizeof(n);             \
  } while (0)
#define OBS_COUNTER_INC(name) \
  do {                        \
  } while (0)
#define OBS_GAUGE_SET(name, v) \
  do {                         \
    (void)sizeof(v);           \
  } while (0)
#define OBS_HISTOGRAM_RECORD(name, v) \
  do {                                \
    (void)sizeof(v);                  \
  } while (0)
#define OBS_ALLOC_SCOPE(var)           \
  ::logstruct::obs::NoopAllocScope var; \
  (void)var

#endif  // LOGSTRUCT_OBS
