#pragma once

/// \file registry.hpp
/// Process-wide metrics registry: counters, gauges, histograms, scoped
/// timers.
///
/// Updates are single atomic RMWs so instrumentation can stay compiled in
/// on hot paths; creation/lookup (the slow path) takes a mutex and is
/// amortized away by the function-local-static pattern of the OBS_*
/// macros. Metric objects are never destroyed or moved once created, so
/// cached references stay valid across Registry::reset() (which zeroes
/// values but keeps the objects).
///
/// Names follow `<layer>/<stage>/<name>`; see docs/OBSERVABILITY.md.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace logstruct::obs {

class Counter {
 public:
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two bucketed histogram of non-negative values (negative
/// samples clamp to bucket 0). Bucket b counts samples in [2^(b-1), 2^b),
/// bucket 0 counts {0}; the layout supports ns-scale timers up to ~292
/// years without configuration.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t v);

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// min()/max() are int64 max/min while empty.
  [[nodiscard]] std::int64_t min() const {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding the q-quantile (q in [0,1]);
  /// 0 when empty. Resolution is a factor of 2 — enough to rank stages.
  [[nodiscard]] std::int64_t approx_quantile(double q) const;

  void reset();

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

/// Point-in-time copy of every metric, for tests and JSON export.
struct RegistrySnapshot {
  struct HistogramStats {
    std::string name;
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::int64_t p50 = 0;
    std::int64_t p99 = 0;
    /// Raw per-bucket counts (Histogram::kBuckets entries); bucket b
    /// counts samples in [2^(b-1), 2^b). The OpenMetrics exposition
    /// turns these into cumulative `le` buckets.
    std::vector<std::int64_t> buckets;
  };
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramStats> histograms;
};

class Registry {
 public:
  /// The process-wide instance (tests may construct private ones).
  static Registry& global();

  /// Find-or-create by name. The returned reference is stable for the
  /// registry's lifetime. A name is one kind only: re-requesting it as a
  /// different kind aborts (it is a programming error, like a duplicate
  /// flag definition).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Name + stable pointer for every counter and gauge. Metric objects
  /// are never destroyed or moved, so the pointers stay valid for the
  /// registry's lifetime — the crash flight recorder caches them and
  /// reads values with a single atomic load from a signal handler.
  struct RawMetrics {
    std::vector<std::pair<std::string, const Counter*>> counters;
    std::vector<std::pair<std::string, const Gauge*>> gauges;
  };
  [[nodiscard]] RawMetrics raw_metrics() const;

  /// Zero every metric (objects and cached references stay valid).
  void reset();

  /// Serialize the snapshot as a JSON object
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// RAII timer recording the scope's wall-clock duration (ns) into the
/// global registry histogram `name`. Prefer the OBS_SCOPED_TIMER macro so
/// the site compiles out under LOGSTRUCT_OBS=0.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name)
      : hist_(Registry::global().histogram(name)),
        start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    hist_.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
  }

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace logstruct::obs
