#pragma once

/// \file pipeline.hpp
/// Begin/end span recording for the pipeline stages.
///
/// A span is one timed stage execution (builder ingest, order/initial,
/// order/stepping, each metric, ...) with optional integer attributes
/// (event / partition / merge counts). Spans nest through a per-thread
/// stack, so the recording doubles as a call tree; trace/selftrace.hpp
/// converts it into a trace::Trace the library's own viewers can render.
///
/// Recording takes one mutex acquisition per begin/end — spans are coarse
/// (stage granularity, not per event), so this is off any hot path. The
/// buffer is capped (default 1M spans); overflow drops spans and counts
/// the drops rather than growing without bound.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace logstruct::obs {

using SpanId = std::int64_t;
inline constexpr SpanId kNoSpan = -1;

struct SpanAttr {
  std::string key;
  std::int64_t value = 0;
};

struct Span {
  std::string name;
  std::int64_t begin_ns = 0;  ///< steady-clock ns since tracer epoch
  std::int64_t end_ns = 0;    ///< == begin_ns while still open
  SpanId parent = kNoSpan;
  std::int32_t thread = 0;    ///< dense per-tracer thread index
  bool open = true;
  std::vector<SpanAttr> attrs;
  // Memory accounting (obs/memstats.hpp). While the span is open the
  // alloc fields hold the thread's cumulative counters at begin; end()
  // rewrites them as deltas. Zero when the alloc hook is not linked.
  std::int64_t alloc_bytes = 0;  ///< bytes allocated on the span's thread
  std::int64_t alloc_count = 0;  ///< allocation calls on the span's thread
  std::int64_t rss_peak_kb = 0;  ///< process VmHWM at span end (0 = n/a)
};

class PipelineTracer {
 public:
  PipelineTracer() = default;

  /// The process-wide instance (tests may construct private ones).
  static PipelineTracer& global();

  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  /// Maximum recorded spans; further begins are dropped (and counted).
  void set_capacity(std::size_t cap);

  /// Begin a span under the calling thread's innermost open span.
  /// Returns kNoSpan when disabled or the buffer is full.
  SpanId begin(std::string_view name);

  /// Close a span and pop it from the thread's stack. The span's duration
  /// is also recorded into the global Registry histogram of the same
  /// name, so every span doubles as a scoped timer.
  void end(SpanId id);

  /// Attach an integer attribute to an open or closed span.
  void attr(SpanId id, std::string_view key, std::int64_t value);

  [[nodiscard]] std::vector<Span> snapshot() const;
  [[nodiscard]] std::size_t dropped() const;

  /// Drop all recorded spans (per-thread stacks of live ScopedSpans are
  /// preserved; do not call with spans open if ids must stay meaningful).
  void reset();

  /// Serialize spans as a JSON array of objects
  /// {"name","begin_ns","end_ns","dur_ns","thread","parent","attrs":{}}.
  [[nodiscard]] std::string to_json() const;

  /// Steady-clock ns since this tracer's construction.
  [[nodiscard]] std::int64_t now_ns() const;

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::size_t capacity_ = std::size_t{1} << 20;
  std::size_t dropped_ = 0;
  bool enabled_ = true;
  std::int32_t next_thread_ = 0;
  std::int64_t epoch_ns_ = 0;  ///< lazily captured on first use
  bool epoch_set_ = false;
};

/// RAII wrapper: begins on construction, ends on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name)
      : tracer_(&PipelineTracer::global()), id_(tracer_->begin(name)) {}
  ScopedSpan(PipelineTracer& tracer, std::string_view name)
      : tracer_(&tracer), id_(tracer.begin(name)) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { tracer_->end(id_); }

  void attr(std::string_view key, std::int64_t value) {
    tracer_->attr(id_, key, value);
  }
  [[nodiscard]] SpanId id() const { return id_; }

 private:
  PipelineTracer* tracer_;
  SpanId id_;
};

/// Stand-in for OBS_SPAN(var, ...) under LOGSTRUCT_OBS=0 so `var.attr()`
/// still compiles (to nothing).
struct NoopSpan {
  void attr(std::string_view, std::int64_t) const {}
};

}  // namespace logstruct::obs
