#include "obs/progress.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/registry.hpp"

namespace logstruct::obs {

namespace {

// The innermost scope's state. The name buffer is written under g_mu
// (scope open/close and ticker reads); the signal handler reads it
// without the lock — a torn read can mix two pass names but the buffer
// always holds a NUL inside its bounds, so the handler never overruns.
std::mutex g_mu;
char g_pass[64] = {0};
std::atomic<std::int64_t> g_done{0};
std::atomic<std::int64_t> g_total{0};

Gauge& done_gauge() {
  static Gauge& g = Registry::global().gauge("obs/progress/done");
  return g;
}

Gauge& total_gauge() {
  static Gauge& g = Registry::global().gauge("obs/progress/total");
  return g;
}

void publish_pass(const char* name) {
  // Write the terminator first so a mid-copy signal still sees a
  // bounded string, then the bytes.
  g_pass[sizeof g_pass - 1] = 0;
  std::size_t i = 0;
  for (; i < sizeof g_pass - 1 && name[i] != 0; ++i) g_pass[i] = name[i];
  g_pass[i] = 0;
}

// --progress stderr ticker ------------------------------------------------

struct Ticker {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  std::int64_t period_ms = 200;
  bool on = false;
  bool painted = false;

  void loop() {
    std::unique_lock<std::mutex> lock(mu);
    while (on) {
      cv.wait_for(lock, std::chrono::milliseconds(period_ms));
      if (!on) break;
      lock.unlock();
      paint();
      lock.lock();
    }
  }

  void paint() {
    Progress::State s = Progress::current();
    if (s.pass[0] == 0) return;
    if (s.total > 0) {
      const double pct =
          100.0 * static_cast<double>(s.done) / static_cast<double>(s.total);
      std::fprintf(stderr, "\r[progress] %-32s %12lld/%lld (%5.1f%%)  ",
                   s.pass, static_cast<long long>(s.done),
                   static_cast<long long>(s.total), pct);
    } else {
      std::fprintf(stderr, "\r[progress] %-32s %12lld  ", s.pass,
                   static_cast<long long>(s.done));
    }
    std::fflush(stderr);
    painted = true;
  }
};

Ticker& ticker() {
  static Ticker* t = new Ticker();  // never destroyed (detached lifetime)
  return *t;
}

std::atomic<bool> g_ticker_on{false};

}  // namespace

Progress::Progress(std::string_view pass, std::int64_t total) {
  char name[sizeof saved_.pass];
  const std::size_t n = pass.size() < sizeof name - 1 ? pass.size()
                                                      : sizeof name - 1;
  std::memcpy(name, pass.data(), n);
  name[n] = 0;

  std::lock_guard<std::mutex> lock(g_mu);
  std::memcpy(saved_.pass, g_pass, sizeof saved_.pass);
  saved_.done = g_done.load(std::memory_order_relaxed);
  saved_.total = g_total.load(std::memory_order_relaxed);
  publish_pass(name);
  g_done.store(0, std::memory_order_relaxed);
  g_total.store(total, std::memory_order_relaxed);
  done_gauge().set(0);
  total_gauge().set(total);
}

Progress::~Progress() {
  std::lock_guard<std::mutex> lock(g_mu);
  publish_pass(saved_.pass);
  g_done.store(saved_.done, std::memory_order_relaxed);
  g_total.store(saved_.total, std::memory_order_relaxed);
  done_gauge().set(saved_.done);
  total_gauge().set(saved_.total);
}

void Progress::tick(std::int64_t n) {
  const std::int64_t done =
      g_done.fetch_add(n, std::memory_order_relaxed) + n;
  done_gauge().set(done);
}

void Progress::set_done(std::int64_t done) {
  g_done.store(done, std::memory_order_relaxed);
  done_gauge().set(done);
}

void Progress::add_total(std::int64_t n) {
  const std::int64_t total =
      g_total.fetch_add(n, std::memory_order_relaxed) + n;
  total_gauge().set(total);
}

Progress::State Progress::current() {
  State s;
  std::lock_guard<std::mutex> lock(g_mu);
  std::memcpy(s.pass, g_pass, sizeof s.pass);
  s.done = g_done.load(std::memory_order_relaxed);
  s.total = g_total.load(std::memory_order_relaxed);
  return s;
}

std::size_t Progress::current_pass(char* buf, std::size_t n) {
  if (n == 0) return 0;
  // No locks, no allocation: plain byte copy of a buffer that always
  // contains a terminator (publish_pass writes it first).
  std::size_t i = 0;
  for (; i < n - 1 && i < sizeof g_pass && g_pass[i] != 0; ++i)
    buf[i] = g_pass[i];
  buf[i] = 0;
  return i;
}

std::int64_t Progress::done_now() {
  return g_done.load(std::memory_order_relaxed);
}

std::int64_t Progress::total_now() {
  return g_total.load(std::memory_order_relaxed);
}

void Progress::enable_ticker(bool on, std::int64_t period_ms) {
  Ticker& t = ticker();
  std::unique_lock<std::mutex> lock(t.mu);
  if (on == t.on) {
    t.period_ms = period_ms;
    return;
  }
  if (on) {
    t.on = true;
    t.period_ms = period_ms;
    g_ticker_on.store(true, std::memory_order_relaxed);
    t.thread = std::thread([&t] { t.loop(); });
  } else {
    t.on = false;
    g_ticker_on.store(false, std::memory_order_relaxed);
    t.cv.notify_all();
    lock.unlock();
    if (t.thread.joinable()) t.thread.join();
    lock.lock();
    if (t.painted) {
      std::fputc('\n', stderr);
      t.painted = false;
    }
  }
}

bool Progress::ticker_enabled() {
  return g_ticker_on.load(std::memory_order_relaxed);
}

}  // namespace logstruct::obs
