#include "obs/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/log.hpp"
#include "obs/openmetrics.hpp"
#include "obs/pipeline.hpp"
#include "obs/registry.hpp"

namespace logstruct::obs {

namespace {

constexpr const char* kOpenMetricsType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

void send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing to salvage
    }
    off += static_cast<std::size_t>(n);
  }
}

void respond(int fd, const char* status, const char* content_type,
             const std::string& body) {
  std::string head = "HTTP/1.1 ";
  head += status;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size());
  head += "\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n";
  send_all(fd, head.data(), head.size());
  send_all(fd, body.data(), body.size());
}

/// Read up to the end of the request headers (or 4 KiB, or the socket
/// timeout) and parse the request line into method + path.
bool read_request(int fd, std::string& method, std::string& path) {
  char buf[4096];
  std::size_t len = 0;
  while (len < sizeof buf - 1) {
    const ssize_t n = ::recv(fd, buf + len, sizeof buf - 1 - len, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    len += static_cast<std::size_t>(n);
    buf[len] = 0;
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr)
      break;
  }
  if (len == 0) return false;
  buf[len] = 0;
  const char* sp1 = std::strchr(buf, ' ');
  if (sp1 == nullptr) return false;
  const char* sp2 = std::strchr(sp1 + 1, ' ');
  const char* eol = std::strpbrk(buf, "\r\n");
  if (sp2 == nullptr || (eol != nullptr && sp2 > eol)) return false;
  method.assign(buf, static_cast<std::size_t>(sp1 - buf));
  path.assign(sp1 + 1, static_cast<std::size_t>(sp2 - sp1 - 1));
  // Scrapers may append a query string; routing ignores it.
  const std::size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  return true;
}

}  // namespace

struct MetricsServer::Impl {
  std::mutex mu;
  std::thread thread;
  std::atomic<bool> running{false};
  int listen_fd = -1;
  int port = 0;

  void handle(int fd) {
    struct timeval tv;
    tv.tv_sec = 2;
    tv.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    std::string method;
    std::string path;
    if (!read_request(fd, method, path)) {
      ::close(fd);
      return;
    }
    Registry::global().counter("obs/serve/requests").inc();
    if (method != "GET") {
      respond(fd, "405 Method Not Allowed", "text/plain; charset=utf-8",
              "method not allowed\n");
    } else if (path == "/metrics") {
      Registry::global().counter("obs/serve/scrapes").inc();
      respond(fd, "200 OK", kOpenMetricsType, openmetrics_text());
    } else if (path == "/healthz") {
      respond(fd, "200 OK", "text/plain; charset=utf-8", "ok\n");
    } else if (path == "/spans") {
      respond(fd, "200 OK", "application/json",
              PipelineTracer::global().to_json());
    } else {
      respond(fd, "404 Not Found", "text/plain; charset=utf-8",
              "not found\n");
    }
    ::close(fd);
  }

  void loop() {
    while (running.load(std::memory_order_relaxed)) {
      struct pollfd pfd;
      pfd.fd = listen_fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int r = ::poll(&pfd, 1, 200);
      if (!running.load(std::memory_order_relaxed)) break;
      if (r <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      handle(fd);
    }
  }
};

MetricsServer::MetricsServer() : impl_(new Impl()) {}

MetricsServer::~MetricsServer() {
  stop();
  delete impl_;
}

MetricsServer& MetricsServer::global() {
  static MetricsServer* instance = new MetricsServer();  // never destroyed
  return *instance;
}

bool MetricsServer::start(int port) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.running.load(std::memory_order_relaxed)) return true;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    log(Level::Error, "obs", "metrics server: socket() failed",
        {{"errno", std::to_string(errno)}});
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(fd, 16) < 0) {
    log(Level::Error, "obs", "metrics server: bind/listen failed",
        {{"port", std::to_string(port)},
         {"errno", std::to_string(errno)}});
    ::close(fd);
    return false;
  }
  socklen_t alen = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &alen) ==
      0)
    im.port = static_cast<int>(ntohs(addr.sin_port));
  else
    im.port = port;

  im.listen_fd = fd;
  im.running.store(true, std::memory_order_relaxed);
  im.thread = std::thread([&im] { im.loop(); });
  log(Level::Info, "obs", "metrics server listening",
      {{"port", std::to_string(im.port)},
       {"endpoints", "/metrics /healthz /spans"}});
  return true;
}

void MetricsServer::stop() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  if (!im.running.load(std::memory_order_relaxed)) return;
  im.running.store(false, std::memory_order_relaxed);
  if (im.thread.joinable()) im.thread.join();
  if (im.listen_fd >= 0) ::close(im.listen_fd);
  im.listen_fd = -1;
  im.port = 0;
}

bool MetricsServer::running() const {
  return impl_->running.load(std::memory_order_relaxed);
}

int MetricsServer::port() const {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  return im.port;
}

}  // namespace logstruct::obs
