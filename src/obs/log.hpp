#pragma once

/// \file log.hpp
/// Leveled, rate-limited structured logging.
///
/// One line per record:
///   [level] component: message key=value key="quoted value" ...
/// Records are rate-limited per (component, message) key: at most
/// `limit` lines per window; the first line after a suppressed stretch
/// carries suppressed=N. Unlike the OBS_* macros, logging is plain
/// runtime API and stays available under LOGSTRUCT_OBS=0 — error
/// reporting is not instrumentation.

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>

namespace logstruct::obs {

enum class Level : std::uint8_t { Debug = 0, Info, Warn, Error };

[[nodiscard]] const char* level_name(Level level);

/// One key=value field. Values render as bare tokens when they are simple
/// (numbers, identifier-like strings) and quoted otherwise.
struct Field {
  Field(std::string_view k, std::string_view v) : key(k), value(v) {}
  Field(std::string_view k, const char* v) : key(k), value(v) {}
  Field(std::string_view k, std::int64_t v) : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, std::int32_t v) : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, std::uint64_t v)
      : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, double v) : key(k), value(format_double(v)) {}
  Field(std::string_view k, bool v) : key(k), value(v ? "true" : "false") {}

  static std::string format_double(double v);

  std::string key;
  std::string value;
};

class Logger {
 public:
  Logger();

  /// The process-wide instance (tests may construct private ones).
  static Logger& global();

  void log(Level level, std::string_view component, std::string_view message,
           std::initializer_list<Field> fields = {});

  void set_min_level(Level level);
  [[nodiscard]] Level min_level() const;

  /// At most `limit` lines per (component,message) per `window_ns`;
  /// limit <= 0 disables rate limiting.
  void set_rate_limit(std::int32_t limit, std::int64_t window_ns);

  /// Replace the output sink (default: one line to stderr). The sink
  /// receives the fully formatted line without trailing newline.
  void set_sink(std::function<void(Level, const std::string&)> sink);

  /// Replace the time source (monotonic ns) — tests drive the rate
  /// limiter with a fake clock.
  void set_clock_for_test(std::function<std::int64_t()> clock);

  /// Total lines suppressed by rate limiting since construction.
  [[nodiscard]] std::int64_t total_suppressed() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;  ///< shared so a sink swap is race-free
};

/// Log through the global logger.
void log(Level level, std::string_view component, std::string_view message,
         std::initializer_list<Field> fields = {});

}  // namespace logstruct::obs
