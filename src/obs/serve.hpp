#pragma once

/// \file serve.hpp
/// Minimal embedded HTTP exporter for live telemetry — the first
/// networking substrate toward the ROADMAP's `logstructd` daemon.
///
/// A single background thread accepts loopback connections and serves:
///   GET /metrics  -> OpenMetrics text of the registry (openmetrics.hpp)
///   GET /healthz  -> "ok"
///   GET /spans    -> the pipeline tracer's span JSON array
/// Anything else is 404; non-GET methods are 405. Connections are
/// handled serially (scrapers poll at second granularity; a queue of
/// one is plenty) with a receive timeout so a stalled client cannot
/// wedge the loop. Off by default; --obs-port=N starts it (N=0 binds
/// an ephemeral port, reported by port()). Binds 127.0.0.1 only —
/// this is an operator scrape surface, not a public service.
///
/// Responses are rendered outside any registry/tracer lock (both
/// snapshot internally), so scraping mid-run never stalls a pass.

#include <string>

namespace logstruct::obs {

class MetricsServer {
 public:
  /// The process-wide instance (tests may construct private ones).
  static MetricsServer& global();

  MetricsServer();
  ~MetricsServer();
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Bind 127.0.0.1:port (0 = ephemeral) and start the accept loop.
  /// Returns false (with the error logged) when the bind fails.
  /// Idempotent while running.
  bool start(int port);

  /// Stop the accept loop and join the thread.
  void stop();

  [[nodiscard]] bool running() const;

  /// The bound port while running (resolves 0 to the kernel's pick).
  [[nodiscard]] int port() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace logstruct::obs
