#pragma once

/// \file crc32c.hpp
/// CRC32C (Castagnoli, polynomial 0x1EDC6F41) over byte ranges.
///
/// The checksum the `.lsblk` v2 container uses for its blocks, directory
/// tail, and commit footer (storage/format.hpp). Dispatches once at
/// startup to the SSE4.2 / ARMv8 CRC instructions when the host has
/// them; otherwise a slice-by-8 table fallback — both produce the
/// standard CRC32C test vectors (RFC 3720 appendix B.4), so containers
/// move between hosts with and without the hardware path.

#include <cstddef>
#include <cstdint>

namespace logstruct::util {

/// One-shot CRC32C of a byte range.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t bytes);

/// Streaming form: feed the previous return value back as `seed` to
/// extend a checksum across discontiguous chunks. Start with seed 0.
[[nodiscard]] std::uint32_t crc32c_extend(std::uint32_t seed,
                                          const void* data,
                                          std::size_t bytes);

/// True when the process-wide dispatch picked a hardware CRC path
/// (informational — results are identical either way).
[[nodiscard]] bool crc32c_hardware_accelerated();

}  // namespace logstruct::util
