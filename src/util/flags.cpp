#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace logstruct::util {

void Flags::define_int(const std::string& name, std::int64_t def,
                       const std::string& help) {
  flags_[name] = Flag{Kind::Int, std::to_string(def), std::to_string(def),
                      help};
}

void Flags::define_bool(const std::string& name, bool def,
                        const std::string& help) {
  const char* v = def ? "true" : "false";
  flags_[name] = Flag{Kind::Bool, v, v, help};
}

void Flags::define_string(const std::string& name, const std::string& def,
                          const std::string& help) {
  flags_[name] = Flag{Kind::String, def, def, help};
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), usage(argv[0]).c_str());
      return false;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }

    auto it = flags_.find(name);
    if (it == flags_.end() && name.rfind("no-", 0) == 0) {
      // --no-foo for booleans.
      auto base = flags_.find(name.substr(3));
      if (base != flags_.end() && base->second.kind == Kind::Bool &&
          !has_value) {
        base->second.value = "false";
        continue;
      }
    }
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.kind == Kind::Bool) {
        flag.value = "true";
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    flag.value = value;
  }
  return true;
}

std::int64_t Flags::get_int(const std::string& name) const {
  auto it = flags_.find(name);
  LS_CHECK_MSG(it != flags_.end() && it->second.kind == Kind::Int,
               "undeclared int flag");
  return std::strtoll(it->second.value.c_str(), nullptr, 10);
}

bool Flags::get_bool(const std::string& name) const {
  auto it = flags_.find(name);
  LS_CHECK_MSG(it != flags_.end() && it->second.kind == Kind::Bool,
               "undeclared bool flag");
  return it->second.value == "true" || it->second.value == "1";
}

const std::string& Flags::get_string(const std::string& name) const {
  auto it = flags_.find(name);
  LS_CHECK_MSG(it != flags_.end() && it->second.kind == Kind::String,
               "undeclared string flag");
  return it->second.value;
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.def << ")  " << flag.help
       << '\n';
  }
  return os.str();
}

}  // namespace logstruct::util
