#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/log.hpp"
#include "util/check.hpp"

namespace logstruct::util {

Flags::Flag& Flags::define(const std::string& name, Kind kind,
                           std::string def, const std::string& help) {
  LS_CHECK_MSG(index_.count(name) == 0, "flag defined twice");
  index_.emplace(name, flags_.size());
  flags_.push_back(Flag{name, kind, def, std::move(def), help});
  return flags_.back();
}

const Flags::Flag* Flags::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &flags_[it->second];
}

Flags::Flag* Flags::find(const std::string& name) {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &flags_[it->second];
}

void Flags::define_int(const std::string& name, std::int64_t def,
                       const std::string& help) {
  define(name, Kind::Int, std::to_string(def), help);
}

void Flags::define_bool(const std::string& name, bool def,
                        const std::string& help) {
  define(name, Kind::Bool, def ? "true" : "false", help);
}

void Flags::define_string(const std::string& name, const std::string& def,
                          const std::string& help) {
  define(name, Kind::String, def, help);
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      obs::log(obs::Level::Error, "flags", "unexpected positional argument",
               {{"arg", arg}});
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }

    Flag* flag = find(name);
    if (flag == nullptr && name.rfind("no-", 0) == 0) {
      // --no-foo for booleans.
      Flag* base = find(name.substr(3));
      if (base != nullptr && base->kind == Kind::Bool && !has_value) {
        base->value = "false";
        continue;
      }
    }
    if (flag == nullptr) {
      obs::log(obs::Level::Error, "flags", "unknown flag",
               {{"name", name}});
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (!has_value) {
      if (flag->kind == Kind::Bool) {
        flag->value = "true";
        continue;
      }
      if (i + 1 >= argc) {
        obs::log(obs::Level::Error, "flags", "flag expects a value",
                 {{"name", name}});
        return false;
      }
      value = argv[++i];
    }
    flag->value = value;
  }
  return true;
}

std::int64_t Flags::get_int(const std::string& name) const {
  const Flag* flag = find(name);
  LS_CHECK_MSG(flag != nullptr && flag->kind == Kind::Int,
               "undeclared int flag");
  return std::strtoll(flag->value.c_str(), nullptr, 10);
}

bool Flags::get_bool(const std::string& name) const {
  const Flag* flag = find(name);
  LS_CHECK_MSG(flag != nullptr && flag->kind == Kind::Bool,
               "undeclared bool flag");
  return flag->value == "true" || flag->value == "1";
}

const std::string& Flags::get_string(const std::string& name) const {
  const Flag* flag = find(name);
  LS_CHECK_MSG(flag != nullptr && flag->kind == Kind::String,
               "undeclared string flag");
  return flag->value;
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const Flag& flag : flags_) {
    os << "  --" << flag.name << " (default: " << flag.def << ")  "
       << flag.help << '\n';
  }
  return os.str();
}

}  // namespace logstruct::util
