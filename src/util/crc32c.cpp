#include "util/crc32c.hpp"

#include <array>

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define LOGSTRUCT_CRC32C_ARM 1
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <nmmintrin.h>
#define LOGSTRUCT_CRC32C_X86 1
#endif

namespace logstruct::util {

namespace {

// ------------------------------------------------- portable slice-by-8

struct Tables {
  std::uint32_t t[8][256];
};

Tables make_tables() {
  Tables tb{};
  constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k)
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    tb.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tb.t[0][i];
    for (int s = 1; s < 8; ++s) {
      crc = tb.t[0][crc & 0xFF] ^ (crc >> 8);
      tb.t[s][i] = crc;
    }
  }
  return tb;
}

const Tables& tables() {
  static const Tables tb = make_tables();
  return tb;
}

std::uint32_t crc_sw(std::uint32_t crc, const unsigned char* p,
                     std::size_t n) {
  const Tables& tb = tables();
  while (n >= 8) {
    const std::uint32_t lo = crc ^ (std::uint32_t{p[0]} |
                                    (std::uint32_t{p[1]} << 8) |
                                    (std::uint32_t{p[2]} << 16) |
                                    (std::uint32_t{p[3]} << 24));
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  return crc;
}

// ------------------------------------------------- hardware fast paths

#if defined(LOGSTRUCT_CRC32C_X86)
__attribute__((target("sse4.2"))) std::uint32_t crc_hw(
    std::uint32_t crc, const unsigned char* p, std::size_t n) {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t v;
    __builtin_memcpy(&v, p, 8);
    c = _mm_crc32_u64(c, v);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (n-- > 0) c32 = _mm_crc32_u8(c32, *p++);
  return c32;
}

bool have_hw() { return __builtin_cpu_supports("sse4.2") != 0; }
#elif defined(LOGSTRUCT_CRC32C_ARM)
std::uint32_t crc_hw(std::uint32_t crc, const unsigned char* p,
                     std::size_t n) {
  while (n >= 8) {
    std::uint64_t v;
    __builtin_memcpy(&v, p, 8);
    crc = __crc32cd(crc, v);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = __crc32cb(crc, *p++);
  return crc;
}

bool have_hw() { return true; }  // __ARM_FEATURE_CRC32 implies support
#else
std::uint32_t crc_hw(std::uint32_t crc, const unsigned char* p,
                     std::size_t n) {
  return crc_sw(crc, p, n);
}

bool have_hw() { return false; }
#endif

bool hw_enabled() {
  static const bool enabled = have_hw();
  return enabled;
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t seed, const void* data,
                            std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t crc = ~seed;
  return ~(hw_enabled() ? crc_hw(crc, p, bytes) : crc_sw(crc, p, bytes));
}

std::uint32_t crc32c(const void* data, std::size_t bytes) {
  return crc32c_extend(0, data, bytes);
}

bool crc32c_hardware_accelerated() { return hw_enabled(); }

}  // namespace logstruct::util
