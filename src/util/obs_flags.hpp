#pragma once

/// \file obs_flags.hpp
/// Shared `--profile` / `--obs-json` / `--log-level` wiring for every
/// bench and example harness.
///
/// Usage in a harness main():
///   util::Flags flags;
///   ... own defines ...
///   util::define_obs_flags(flags);
///   if (!flags.parse(argc, argv)) return 1;
///   util::apply_obs_flags(flags);
///   ... work ...
///   util::finish_obs(flags, argv[0]);   // table and/or JSON sidecar
///
/// --profile      prints a per-stage span summary table to stdout.
/// --obs-json=p   writes the machine-readable telemetry sidecar to p
///                (docs/OBSERVABILITY.md describes the format; this is
///                the future BENCH_*.json trajectory source).
/// --log-level=l  debug|info|warn|error for the structured logger.

#include <string>

#include "util/flags.hpp"

namespace logstruct::util {

void define_obs_flags(Flags& flags);

/// Apply parsed obs flags (log level) to the global obs singletons.
void apply_obs_flags(const Flags& flags);

/// Emit the profile table (--profile) and/or JSON sidecar (--obs-json).
/// Returns false if the sidecar could not be written.
bool finish_obs(const Flags& flags, const std::string& program);

/// The sidecar document as a string (exposed for tests).
[[nodiscard]] std::string obs_sidecar_json(const std::string& program);

}  // namespace logstruct::util
