#pragma once

/// \file obs_flags.hpp
/// Shared `--profile` / `--obs-json` / `--log-level` / `--threads`
/// wiring for every bench and example harness.
///
/// Usage in a harness main():
///   util::Flags flags;
///   ... own defines ...
///   util::define_obs_flags(flags);
///   if (!flags.parse(argc, argv)) return 1;
///   util::apply_obs_flags(flags);
///   ... work ...
///   util::finish_obs(flags, argv[0]);   // table and/or JSON sidecar
///
/// --profile      prints a per-stage span summary table to stdout
///                (total and self time; shares are of self time so the
///                column sums to 100% despite span nesting).
/// --obs-json=p   writes the machine-readable telemetry sidecar to p
///                (schema logstruct-obs-sidecar/v4, see
///                docs/OBSERVABILITY.md; v3 added the `recovery`
///                object, v4 adds the `sampler` time series and the
///                `flight_recorder` reference).
/// --obs-chrome=p writes a Chrome trace-event JSON file to p, loadable
///                in Perfetto / chrome://tracing.
/// --log-level=l  debug|info|warn|error for the structured logger.
/// --threads=N    worker threads for every parallel pipeline stage
///                (trace freezing, partition/merge passes, stepping,
///                metric kernels). 0 = all hardware threads; the
///                default 1 keeps harnesses fully serial. Results are
///                bit-identical for any value (see
///                docs/ARCHITECTURE.md, "Parallel execution").
/// --validate     run trace::validate() on every trace a harness ingests
///                and print structural problems (see
///                trace::validate_cli, which harnesses call with the
///                parsed flags).
/// --eff-json=p   writes the time-resolved efficiency report
///                (schema logstruct-effmetrics/v1, docs/METRICS.md) to
///                p. Harnesses with a recovered structure call
///                metrics::write_efficiency_report(flags, ...), which
///                honors this flag and --eff-bins (wall-clock bin
///                count, 0 = one bin per recovered phase).
/// --concurrency-json=p writes the concurrency report (schema
///                logstruct-concurrency/v1, docs/CAUSALITY.md) to p:
///                causally-unordered and commuting phase pairs per
///                window, from the vector-clock oracle's phase
///                reachability. Harnesses with a recovered structure
///                call metrics::write_concurrency_report(flags, ...),
///                which honors this flag and --concurrency-bins
///                (wall-clock bin count, 0 = one bin per phase).
/// --storage=b    trace storage backend: mem (default) or blocked
///                (out-of-core .lsblk store, docs/STORAGE.md). Seeds
///                $LOGSTRUCT_STORAGE, so it must be applied before the
///                first trace is built (apply_obs_flags at the top of
///                main() is early enough).
/// --cache-mb=N   block-cache budget in MiB for --storage=blocked
///                (0 = unbounded; -1 inherits $LOGSTRUCT_CACHE_MB).
///
/// Live telemetry (docs/OBSERVABILITY.md, "Live telemetry"):
/// --obs-prom=p      writes an OpenMetrics text exposition of the final
///                   registry state to p (node-exporter textfile style).
/// --obs-port=N      serves live telemetry over HTTP on 127.0.0.1:N
///                   (GET /metrics, /healthz, /spans; N=0 picks an
///                   ephemeral port). Off by default.
/// --obs-period-ms=N starts the background sampler: every N ms a
///                   snapshot of RSS, alloc totals, block-cache
///                   counters, and pass progress lands in a bounded
///                   ring, exported in the sidecar's `sampler` block
///                   and as Chrome counter tracks. 0 (default) = off.
/// --progress        paints a `pass done/total` ticker on stderr.
/// --obs-flightrec=p arms the crash flight recorder: SIGSEGV/SIGABRT
///                   dumps recent span events, live counters, progress,
///                   and RSS to p as logstruct-flightrec/v1 JSON.

#include <string>

#include "util/flags.hpp"

namespace logstruct::util {

void define_obs_flags(Flags& flags);

/// Apply parsed obs flags (log level) to the global obs singletons.
void apply_obs_flags(const Flags& flags);

/// Emit the profile table (--profile), JSON sidecar (--obs-json), and/or
/// Chrome trace (--obs-chrome). Returns false if an output could not be
/// written.
bool finish_obs(const Flags& flags, const std::string& program);

/// The sidecar document as a string (exposed for tests).
[[nodiscard]] std::string obs_sidecar_json(const std::string& program);

/// The Chrome trace-event document as a string (exposed for tests).
[[nodiscard]] std::string obs_chrome_json(const std::string& program);

}  // namespace logstruct::util
