#include "util/stats.hpp"

#include <cmath>
#include <vector>

namespace logstruct::util {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

Summary summarize(std::span<const std::int64_t> values) {
  std::vector<double> d(values.begin(), values.end());
  return summarize(std::span<const double>(d));
}

double loglog_slope(std::span<const double> x, std::span<const double> y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    double lx = std::log(x[i]);
    double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace logstruct::util
