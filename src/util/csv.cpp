#include "util/csv.hpp"

#include <cstdio>

namespace logstruct::util {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

CsvWriter& CsvWriter::row() {
  rows_.emplace_back();
  return *this;
}

CsvWriter& CsvWriter::add(std::string_view value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().emplace_back(value);
  return *this;
}

CsvWriter& CsvWriter::add(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return add(std::string_view(buf));
}

CsvWriter& CsvWriter::add(std::int64_t value) {
  return add(std::string_view(std::to_string(value)));
}

std::string CsvWriter::escape(std::string_view value) {
  bool needs_quote = value.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) return std::string(value);
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << str();
  return static_cast<bool>(f);
}

}  // namespace logstruct::util
