#include "util/rng.hpp"

// Header-only; this translation unit exists so the target has a concrete
// object for the library and to keep a home for any future out-of-line
// additions (distribution helpers, etc.).
