#pragma once

/// \file table.hpp
/// Column-aligned plain-text tables for bench/ output.
///
/// Every figure/table harness reports the same rows or series the paper
/// shows; TablePrinter keeps that output readable in a terminal and in the
/// captured bench_output.txt.

#include <string>
#include <string_view>
#include <vector>

namespace logstruct::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  TablePrinter& row();
  TablePrinter& add(std::string_view value);
  TablePrinter& add(double value, int precision = 3);
  TablePrinter& add(std::int64_t value);
  TablePrinter& add(int value) { return add(static_cast<std::int64_t>(value)); }
  TablePrinter& add(std::size_t value) {
    return add(static_cast<std::int64_t>(value));
  }

  /// Render with aligned columns and a separator under the header.
  [[nodiscard]] std::string str() const;

  /// Render to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace logstruct::util
