#pragma once

/// \file flags.hpp
/// Tiny command-line flag parser shared by examples and figure harnesses.
///
/// Supports `--name=value`, `--name value`, and boolean `--name` /
/// `--no-name`. Unrecognized flags are reported and make parse() fail, so a
/// typo never silently runs the default experiment. Defining the same flag
/// twice is a hard error (it indicates two harness components fighting over
/// one name), and usage() lists flags in definition order so the help text
/// follows the harness's logical grouping.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace logstruct::util {

class Flags {
 public:
  /// Declare flags with defaults before parsing. Redefining a name aborts.
  void define_int(const std::string& name, std::int64_t def,
                  const std::string& help);
  void define_bool(const std::string& name, bool def, const std::string& help);
  void define_string(const std::string& name, const std::string& def,
                     const std::string& help);

  /// Parse argv; returns false (and prints usage) on error or --help.
  bool parse(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  /// True iff the flag is declared (any kind).
  [[nodiscard]] bool defined(const std::string& name) const {
    return index_.count(name) > 0;
  }

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  enum class Kind { Int, Bool, String };
  struct Flag {
    std::string name;
    Kind kind;
    std::string value;
    std::string def;
    std::string help;
  };

  Flag& define(const std::string& name, Kind kind, std::string def,
               const std::string& help);
  [[nodiscard]] const Flag* find(const std::string& name) const;
  [[nodiscard]] Flag* find(const std::string& name);

  std::vector<Flag> flags_;  ///< definition order
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace logstruct::util
