#pragma once

/// \file flags.hpp
/// Tiny command-line flag parser shared by examples and figure harnesses.
///
/// Supports `--name=value`, `--name value`, and boolean `--name` /
/// `--no-name`. Unrecognized flags are reported and make parse() fail, so a
/// typo never silently runs the default experiment.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace logstruct::util {

class Flags {
 public:
  /// Declare flags with defaults before parsing.
  void define_int(const std::string& name, std::int64_t def,
                  const std::string& help);
  void define_bool(const std::string& name, bool def, const std::string& help);
  void define_string(const std::string& name, const std::string& def,
                     const std::string& help);

  /// Parse argv; returns false (and prints usage) on error or --help.
  bool parse(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  enum class Kind { Int, Bool, String };
  struct Flag {
    Kind kind;
    std::string value;
    std::string def;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
};

}  // namespace logstruct::util
