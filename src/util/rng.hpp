#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation for simulators.
///
/// Every source of non-determinism in the Charm++/MPI simulators (network
/// jitter, compute-time noise, queue tie-breaking, data-dependent work) is
/// driven by an explicitly seeded Rng so that traces — and therefore every
/// experiment — are bit-reproducible.

#include <cstdint>

namespace logstruct::util {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator.
/// Not cryptographic; plenty for workload synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    return next() % bound;  // modulo bias negligible for our bounds
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent stream (e.g. one per processing element).
  Rng fork(std::uint64_t stream) noexcept {
    Rng child(state_ ^ (0xA24BAED4963EE407ULL * (stream + 1)));
    child.next();
    return child;
  }

 private:
  std::uint64_t state_;
};

}  // namespace logstruct::util
