#pragma once

/// \file stats.hpp
/// Small descriptive-statistics helpers used by metrics and bench summaries.

#include <cstdint>
#include <span>

namespace logstruct::util {

struct Summary {
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  std::size_t count = 0;
};

/// Descriptive summary of a sample; empty input yields a zeroed Summary.
Summary summarize(std::span<const double> values);
Summary summarize(std::span<const std::int64_t> values);

/// Least-squares slope of log(y) vs log(x); used by the scaling benches to
/// report empirical complexity exponents. Points with x<=0 or y<=0 are
/// skipped; fewer than two usable points yields 0.
double loglog_slope(std::span<const double> x, std::span<const double> y);

}  // namespace logstruct::util
