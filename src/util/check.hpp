#pragma once

/// \file check.hpp
/// Lightweight runtime checks that stay enabled in release builds.
///
/// The ordering pipeline relies on structural invariants (DAG-ness,
/// partition consistency) whose violation indicates a logic error rather
/// than bad input; those use LS_CHECK and abort with a message.  Input
/// validation of traces uses the softer trace::validate machinery instead.

#include <cstdio>
#include <cstdlib>

namespace logstruct::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "LS_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace logstruct::util

#define LS_CHECK(expr)                                                       \
  do {                                                                       \
    if (!(expr)) ::logstruct::util::check_failed(#expr, __FILE__, __LINE__,  \
                                                 nullptr);                   \
  } while (0)

#define LS_CHECK_MSG(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) ::logstruct::util::check_failed(#expr, __FILE__, __LINE__,  \
                                                 (msg));                     \
  } while (0)
