#pragma once

/// \file thread_pool.hpp
/// Shared work-stealing thread pool for the extraction pipeline.
///
/// One process-wide pool (ThreadPool::global()) backs every parallel
/// stage: trace freezing, initial partitioning, the per-phase order
/// passes, step assignment, and the metric kernels. Workers are spawned
/// lazily the first time a parallel_for asks for them and then reused, so
/// repeated pipeline runs pay thread start-up once.
///
/// parallel_for(threads, n, fn) runs fn(i) for every i in [0, n) using at
/// most `threads` participants (the calling thread plus stolen-from
/// workers). The index range is split into one contiguous shard per
/// participant; a participant drains its own shard from the front in
/// grain-sized chunks and, when empty, steals the back half of the
/// largest remaining shard — classic range stealing, so load imbalance
/// (one giant phase next to many tiny ones) never idles a thread while
/// work remains.
///
/// Determinism contract: every index is executed exactly once and fn must
/// write only to index-owned slots (or accumulate into per-participant
/// state that the caller combines in index order). Under that contract
/// results are bit-identical for ANY thread count — which is what the
/// golden-structure thread matrix tests enforce end-to-end.
///
/// Telemetry: heap allocations performed by workers inside a parallel_for
/// are credited to the calling thread's obs counters when the call
/// returns, so AllocScope / per-span / per-pass alloc_bytes keep summing
/// correctly when work fans out (see obs/memstats.hpp).
///
/// Nested parallel_for calls from inside a worker run inline serially:
/// the pipeline parallelizes one stage at a time, and inline execution
/// keeps a mis-nested call correct instead of deadlocked.

#include <cstdint>
#include <functional>

namespace logstruct::util {

class ThreadPool {
 public:
  /// A pool that may use up to `threads` participants (spawns threads-1
  /// workers lazily; the submitting thread is always a participant).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum participants this pool was built for (>= 1).
  [[nodiscard]] int threads() const { return threads_; }

  /// Run body(i) for every i in [0, n), blocking until all are done.
  /// At most min(threads(), limit) participants; the caller is one of
  /// them. Serial (inline, no locking) when n < 2 or limit <= 1.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& body,
                    int limit = 1 << 30);

  /// Chunked variant: body(begin, end) over disjoint subranges covering
  /// [0, n) exactly once. `grain` bounds the chunk size a participant
  /// claims at a time (also the stealing granularity floor).
  void parallel_for_chunks(
      std::int64_t n, std::int64_t grain,
      const std::function<void(std::int64_t, std::int64_t)>& body,
      int limit = 1 << 30);

  /// The process-wide pool, sized for the hardware; grows its worker set
  /// lazily as parallel_for limits demand them.
  static ThreadPool& global();

  /// std::thread::hardware_concurrency with a floor of 1.
  static int hardware_threads();

 private:
  /// Lazily spawn workers until at least `wanted` exist (capped at
  /// threads() - 1; the submitting thread is the remaining participant).
  void ensure_workers(int wanted);

  struct Impl;
  Impl* impl_;
  int threads_;
};

/// Process-wide default parallelism for stages without an explicit
/// thread-count parameter (trace freezing, metric kernels called with
/// threads = 0). Set once by the shared --threads harness flag; defaults
/// to 1 (fully serial) so tests and library users opt in explicitly.
[[nodiscard]] int default_parallelism();

/// Set the default; 0 resolves to hardware_threads().
void set_default_parallelism(int threads);

/// Resolve a thread-count knob: n >= 1 is explicit, 0 means
/// default_parallelism(). Always >= 1.
[[nodiscard]] int resolve_threads(int n);

/// Convenience wrapper over the global pool: serial loop when
/// resolve_threads(threads) == 1 or n < 2, parallel otherwise.
void parallel_for(int threads, std::int64_t n,
                  const std::function<void(std::int64_t)>& body);

/// Chunked convenience wrapper (see ThreadPool::parallel_for_chunks).
void parallel_for_chunks(
    int threads, std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace logstruct::util
