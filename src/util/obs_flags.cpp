#include "util/obs_flags.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "obs/export_chrome.hpp"
#include "obs/flightrec.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "obs/openmetrics.hpp"
#include "obs/progress.hpp"
#include "obs/sampler.hpp"
#include "obs/serve.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::util {

namespace {

struct StageAgg {
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t self_ns = 0;  ///< total minus time inside child spans
  std::int64_t alloc_bytes = 0;
};

std::map<std::string, StageAgg> aggregate_spans(
    const std::vector<obs::Span>& spans) {
  // Child time per span id (span ids are indices into the snapshot), so
  // self time = duration - time spent in directly nested spans. Summing
  // self time never double-counts, unlike summing raw durations.
  std::vector<std::int64_t> child_ns(spans.size(), 0);
  for (const obs::Span& s : spans) {
    if (s.parent >= 0 &&
        static_cast<std::size_t>(s.parent) < child_ns.size())
      child_ns[static_cast<std::size_t>(s.parent)] +=
          s.end_ns - s.begin_ns;
  }
  std::map<std::string, StageAgg> agg;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const obs::Span& s = spans[i];
    const std::int64_t dur = s.end_ns - s.begin_ns;
    StageAgg& a = agg[s.name];
    ++a.count;
    a.total_ns += dur;
    a.self_ns += dur - child_ns[i];
    a.alloc_bytes += s.alloc_bytes;
  }
  return agg;
}

bool write_text_file(const std::string& path, const std::string& text,
                     const char* what) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    obs::log(obs::Level::Error, "obs", "cannot open output for writing",
             {{"what", what}, {"path", path}});
    return false;
  }
  out << text << '\n';
  if (!out.good()) {
    obs::log(obs::Level::Error, "obs", "write failed",
             {{"what", what}, {"path", path}});
    return false;
  }
  obs::log(obs::Level::Info, "obs", "wrote telemetry output",
           {{"what", what}, {"path", path}});
  return true;
}

}  // namespace

void define_obs_flags(Flags& flags) {
  flags.define_bool("profile", false,
                    "print per-stage telemetry (span totals) on exit");
  flags.define_string("obs-json", "",
                      "write the JSON telemetry sidecar here");
  flags.define_string("obs-chrome", "",
                      "write a Chrome trace-event JSON file here "
                      "(open in Perfetto / chrome://tracing)");
  flags.define_string("log-level", "info",
                      "structured-log threshold: debug|info|warn|error");
  flags.define_int("threads", 1,
                   "worker threads for the parallel pipeline stages "
                   "(0 = all hardware threads); results are "
                   "bit-identical for any value");
  flags.define_bool("validate", false,
                    "run trace::validate() on every ingested trace and "
                    "print any structural problems");
  flags.define_string("eff-json", "",
                      "write the logstruct-effmetrics/v1 efficiency "
                      "report here (POP metrics per time bin and per "
                      "recovered phase; see docs/METRICS.md)");
  flags.define_int("eff-bins", 0,
                   "wall-clock bins for the --eff-json report "
                   "(0 = one bin per recovered phase)");
  flags.define_string("concurrency-json", "",
                      "write the logstruct-concurrency/v1 report here "
                      "(causally-unordered and commuting phase pairs per "
                      "window, from the vector-clock oracle; see "
                      "docs/CAUSALITY.md)");
  flags.define_int("concurrency-bins", 0,
                   "wall-clock bins for the --concurrency-json report "
                   "(0 = one bin per recovered phase)");
  flags.define_string("storage", "",
                      "trace storage backend: mem (in-RAM columns, the "
                      "default) or blocked (out-of-core .lsblk block "
                      "store with an LRU block cache; see "
                      "docs/STORAGE.md). Empty inherits "
                      "$LOGSTRUCT_STORAGE");
  flags.define_int("cache-mb", -1,
                   "block-cache budget in MiB for --storage=blocked "
                   "(0 = unbounded); -1 inherits $LOGSTRUCT_CACHE_MB "
                   "or the 256 MiB default");
  flags.define_string("obs-prom", "",
                      "write an OpenMetrics text exposition of the "
                      "final registry state here");
  flags.define_int("obs-port", -1,
                   "serve live telemetry over HTTP on 127.0.0.1:N "
                   "(GET /metrics, /healthz, /spans); 0 picks an "
                   "ephemeral port, -1 (default) disables");
  flags.define_int("obs-period-ms", 0,
                   "background sampler period in ms (RSS, alloc totals, "
                   "block-cache counters, pass progress into a bounded "
                   "ring; sidecar `sampler` block + Chrome counter "
                   "tracks); 0 disables");
  flags.define_bool("progress", false,
                    "paint a `pass done/total` ticker on stderr");
  flags.define_string("obs-flightrec", "",
                      "arm the crash flight recorder: on SIGSEGV/SIGABRT "
                      "dump recent span events, live counters, and RSS "
                      "here as logstruct-flightrec/v1 JSON");
}

void apply_obs_flags(const Flags& flags) {
  const std::string& level = flags.get_string("log-level");
  obs::Level l = obs::Level::Info;
  if (level == "debug")
    l = obs::Level::Debug;
  else if (level == "info")
    l = obs::Level::Info;
  else if (level == "warn")
    l = obs::Level::Warn;
  else if (level == "error")
    l = obs::Level::Error;
  else
    obs::log(obs::Level::Warn, "obs", "unknown log level, keeping info",
             {{"requested", level}});
  obs::Logger::global().set_min_level(l);

  std::int64_t threads = flags.get_int("threads");
  if (threads < 0) {
    obs::log(obs::Level::Warn, "obs",
             "negative --threads, running serial",
             {{"requested", std::to_string(threads)}});
    threads = 1;
  }
  set_default_parallelism(static_cast<int>(threads));

  // Storage flags seed the environment that trace/storage/options.cpp
  // reads on first use (util cannot link the trace library, so the env
  // var is the handoff). apply_obs_flags() runs before any trace is
  // built in every harness, which is early enough.
  const std::string& storage = flags.get_string("storage");
  if (!storage.empty()) {
    if (storage == "mem" || storage == "blocked") {
      setenv("LOGSTRUCT_STORAGE", storage.c_str(), 1);
    } else {
      obs::log(obs::Level::Warn, "obs",
               "unknown --storage backend, keeping current",
               {{"requested", storage}});
    }
  }
  const std::int64_t cache_mb = flags.get_int("cache-mb");
  if (cache_mb >= 0)
    setenv("LOGSTRUCT_CACHE_MB", std::to_string(cache_mb).c_str(), 1);

  // Live telemetry: start background machinery up front so the whole
  // run is observable (finish_obs quiesces and exports).
  const std::string& flightrec = flags.get_string("obs-flightrec");
  if (!flightrec.empty()) obs::FlightRecorder::global().arm(flightrec);
  const std::int64_t period_ms = flags.get_int("obs-period-ms");
  if (period_ms > 0)
    obs::Sampler::global().start(period_ms);
  const std::int64_t port = flags.get_int("obs-port");
  if (port >= 0 && port <= 65535)
    obs::MetricsServer::global().start(static_cast<int>(port));
  if (flags.get_bool("progress")) obs::Progress::enable_ticker(true);
}

std::string obs_sidecar_json(const std::string& program) {
  obs::PipelineTracer& tracer = obs::PipelineTracer::global();
  std::vector<obs::Span> spans = tracer.snapshot();
  auto agg = aggregate_spans(spans);
  const obs::MemStats mem = obs::read_mem_stats();

  // Recovery counters (fault-tolerant ingestion + degraded-quarantine
  // passes) are surfaced as their own top-level object so CI fuzz jobs
  // and obs_to_table.py --check can find them without walking the full
  // metrics dump.
  const obs::RegistrySnapshot reg = obs::Registry::global().snapshot();
  std::int64_t recovery_total = 0;
  std::vector<std::pair<std::string, std::int64_t>> recovery;
  for (const auto& [name, value] : reg.counters) {
    if (name.rfind("trace/recovery/", 0) == 0 ||
        name.rfind("order/degraded", 0) == 0) {
      recovery.emplace_back(name, value);
      recovery_total += value;
    }
  }

  obs::json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("logstruct-obs-sidecar/v4");
  w.key("program");
  w.value(program);
  w.key("obs_compiled");
  w.value(LOGSTRUCT_OBS != 0);
  w.key("alloc_hook");
  w.value(obs::alloc_hook_active());
  w.key("dropped_spans");
  w.value(static_cast<std::int64_t>(tracer.dropped()));
  w.key("peak_rss_kb");
  w.value(mem.peak_rss_kb);
  w.key("current_rss_kb");
  w.value(mem.current_rss_kb);
  w.key("stages");
  w.begin_object();
  for (const auto& [name, a] : agg) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(a.count);
    w.key("total_ns");
    w.value(a.total_ns);
    w.key("self_ns");
    w.value(a.self_ns);
    w.key("alloc_bytes");
    w.value(a.alloc_bytes);
    w.end_object();
  }
  w.end_object();
  w.key("recovery");
  w.begin_object();
  w.key("total");
  w.value(recovery_total);
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : recovery) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.end_object();
  // v4: the sampler time series and the flight-recorder reference.
  w.key("sampler");
  w.raw(obs::Sampler::global().to_json());
  w.key("flight_recorder");
  w.begin_object();
  w.key("armed");
  w.value(obs::FlightRecorder::global().armed());
  w.key("path");
  w.value(obs::FlightRecorder::global().path());
  w.key("ring_capacity");
  w.value(static_cast<std::int64_t>(obs::FlightRecorder::kRingSize));
  w.key("ring_dropped");
  w.value(obs::FlightRecorder::global().dropped());
  w.end_object();
  w.key("spans");
  w.raw(tracer.to_json());
  w.key("metrics");
  w.raw(obs::Registry::global().to_json());
  w.end_object();
  return std::move(w).str();
}

std::string obs_chrome_json(const std::string& program) {
  obs::PipelineTracer& tracer = obs::PipelineTracer::global();
  return obs::chrome_trace_json(tracer.snapshot(),
                                obs::Registry::global().snapshot(),
                                obs::Sampler::global().snapshot(), program);
}

bool finish_obs(const Flags& flags, const std::string& program) {
  const bool profile = flags.get_bool("profile");
  const std::string& path = flags.get_string("obs-json");
  const std::string& chrome_path = flags.get_string("obs-chrome");
  const std::string& prom_path = flags.get_string("obs-prom");

  // Quiesce the live-telemetry machinery before any export: one final
  // sample closes the time series, and joining the threads here keeps
  // exit clean (and TSan quiet) in every harness.
  if (obs::Sampler::global().running()) {
    obs::Sampler::global().sample_now();
    obs::Sampler::global().stop();
  }
  if (obs::MetricsServer::global().running())
    obs::MetricsServer::global().stop();
  if (obs::Progress::ticker_enabled()) obs::Progress::enable_ticker(false);

  if (profile) {
#if LOGSTRUCT_OBS
    std::vector<obs::Span> spans = obs::PipelineTracer::global().snapshot();
    auto agg = aggregate_spans(spans);
    std::vector<std::pair<std::string, StageAgg>> rows(agg.begin(),
                                                       agg.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.self_ns > b.second.self_ns;
    });
    // Shares are of summed *self* time (duration minus nested spans), so
    // the column totals 100% even though spans nest.
    std::int64_t grand_self = 0;
    for (const auto& [name, a] : rows) grand_self += a.self_ns;
    std::printf("\n--- telemetry (%zu spans) ---\n", spans.size());
    TablePrinter table({"stage", "calls", "total (ms)", "self (ms)",
                        "share", "alloc (KB)"});
    for (const auto& [name, a] : rows) {
      char share[16];
      std::snprintf(share, sizeof share, "%.1f%%",
                    grand_self > 0
                        ? 100.0 * static_cast<double>(a.self_ns) /
                              static_cast<double>(grand_self)
                        : 0.0);
      table.row()
          .add(name)
          .add(a.count)
          .add(static_cast<double>(a.total_ns) / 1e6, 3)
          .add(static_cast<double>(a.self_ns) / 1e6, 3)
          .add(share)
          .add(a.alloc_bytes / 1024);
    }
    table.print();
#else
    std::printf("\n--- telemetry unavailable: built with LOGSTRUCT_OBS=0 "
                "---\n");
#endif
  }

  bool ok = true;
  if (!chrome_path.empty())
    ok = write_text_file(chrome_path, obs_chrome_json(program),
                         "chrome trace") && ok;
  if (!path.empty())
    ok = write_text_file(path, obs_sidecar_json(program), "sidecar") && ok;
  if (!prom_path.empty()) {
    // openmetrics_text() already ends with "# EOF\n"; write verbatim so
    // the document stays checker-exact (no trailing blank line).
    std::ofstream out(prom_path, std::ios::binary);
    bool prom_ok = static_cast<bool>(out);
    if (prom_ok) {
      out << obs::openmetrics_text();
      prom_ok = out.good();
    }
    if (!prom_ok)
      obs::log(obs::Level::Error, "obs", "cannot write OpenMetrics file",
               {{"path", prom_path}});
    else
      obs::log(obs::Level::Info, "obs", "wrote telemetry output",
               {{"what", "openmetrics"}, {"path", prom_path}});
    ok = prom_ok && ok;
  }
  return ok;
}

}  // namespace logstruct::util
