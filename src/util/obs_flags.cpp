#include "util/obs_flags.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"

namespace logstruct::util {

namespace {

struct StageAgg {
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
};

std::map<std::string, StageAgg> aggregate_spans(
    const std::vector<obs::Span>& spans) {
  std::map<std::string, StageAgg> agg;
  for (const obs::Span& s : spans) {
    StageAgg& a = agg[s.name];
    ++a.count;
    a.total_ns += s.end_ns - s.begin_ns;
  }
  return agg;
}

}  // namespace

void define_obs_flags(Flags& flags) {
  flags.define_bool("profile", false,
                    "print per-stage telemetry (span totals) on exit");
  flags.define_string("obs-json", "",
                      "write the JSON telemetry sidecar here");
  flags.define_string("log-level", "info",
                      "structured-log threshold: debug|info|warn|error");
}

void apply_obs_flags(const Flags& flags) {
  const std::string& level = flags.get_string("log-level");
  obs::Level l = obs::Level::Info;
  if (level == "debug")
    l = obs::Level::Debug;
  else if (level == "info")
    l = obs::Level::Info;
  else if (level == "warn")
    l = obs::Level::Warn;
  else if (level == "error")
    l = obs::Level::Error;
  else
    obs::log(obs::Level::Warn, "obs", "unknown log level, keeping info",
             {{"requested", level}});
  obs::Logger::global().set_min_level(l);
}

std::string obs_sidecar_json(const std::string& program) {
  obs::PipelineTracer& tracer = obs::PipelineTracer::global();
  std::vector<obs::Span> spans = tracer.snapshot();
  auto agg = aggregate_spans(spans);

  obs::json::Writer w;
  w.begin_object();
  w.key("program");
  w.value(program);
  w.key("obs_compiled");
  w.value(LOGSTRUCT_OBS != 0);
  w.key("dropped_spans");
  w.value(static_cast<std::int64_t>(tracer.dropped()));
  w.key("stages");
  w.begin_object();
  for (const auto& [name, a] : agg) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(a.count);
    w.key("total_ns");
    w.value(a.total_ns);
    w.end_object();
  }
  w.end_object();
  w.key("spans");
  w.raw(tracer.to_json());
  w.key("metrics");
  w.raw(obs::Registry::global().to_json());
  w.end_object();
  return std::move(w).str();
}

bool finish_obs(const Flags& flags, const std::string& program) {
  const bool profile = flags.get_bool("profile");
  const std::string& path = flags.get_string("obs-json");

  if (profile) {
#if LOGSTRUCT_OBS
    std::vector<obs::Span> spans = obs::PipelineTracer::global().snapshot();
    auto agg = aggregate_spans(spans);
    std::vector<std::pair<std::string, StageAgg>> rows(agg.begin(),
                                                       agg.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.total_ns > b.second.total_ns;
    });
    std::int64_t grand = 0;
    for (const auto& [name, a] : rows) grand += a.total_ns;
    std::printf("\n--- telemetry (%zu spans) ---\n", spans.size());
    TablePrinter table({"stage", "calls", "total (ms)", "share"});
    for (const auto& [name, a] : rows) {
      // Shares are of the flat sum over all stage spans; nested spans
      // count both themselves and inside their parent, so shares can
      // exceed 100% in total — read them as relative weight.
      char share[16];
      std::snprintf(share, sizeof share, "%.1f%%",
                    grand > 0 ? 100.0 * static_cast<double>(a.total_ns) /
                                    static_cast<double>(grand)
                              : 0.0);
      table.row()
          .add(name)
          .add(a.count)
          .add(static_cast<double>(a.total_ns) / 1e6, 3)
          .add(share);
    }
    table.print();
#else
    std::printf("\n--- telemetry unavailable: built with LOGSTRUCT_OBS=0 "
                "---\n");
#endif
  }

  if (path.empty()) return true;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    obs::log(obs::Level::Error, "obs", "cannot open sidecar for writing",
             {{"path", path}});
    return false;
  }
  out << obs_sidecar_json(program) << '\n';
  if (!out.good()) {
    obs::log(obs::Level::Error, "obs", "sidecar write failed",
             {{"path", path}});
    return false;
  }
  obs::log(obs::Level::Info, "obs", "wrote telemetry sidecar",
           {{"path", path}});
  return true;
}

}  // namespace logstruct::util
