#pragma once

/// \file stopwatch.hpp
/// Wall-clock stopwatch for the extraction-time experiments (Figs. 18/19).

#include <chrono>

namespace logstruct::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace logstruct::util
