#pragma once

/// \file stopwatch.hpp
/// Wall-clock stopwatch for the extraction-time experiments (Figs. 18/19).
///
/// Beyond the original seconds()/reset(), the watch supports lap timing
/// (`lap()` returns the split since the last lap/reset and restarts it)
/// and pause()/resume() so harnesses can exclude setup — trace synthesis,
/// I/O — from the timed region.

#include <chrono>

namespace logstruct::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() {
    start_ = clock::now();
    banked_ = duration::zero();
    paused_ = false;
  }

  /// Elapsed seconds since construction or the last reset()/lap(),
  /// excluding paused stretches.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(banked_ + running()).count();
  }

  /// Return the elapsed split (like seconds()) and restart the watch; the
  /// paused/running state is preserved across the lap boundary.
  double lap() {
    double out = seconds();
    banked_ = duration::zero();
    start_ = clock::now();
    return out;
  }

  /// Stop accumulating time. Pausing a paused watch is a no-op.
  void pause() {
    if (paused_) return;
    banked_ += clock::now() - start_;
    paused_ = true;
  }

  /// Resume after pause(). Resuming a running watch is a no-op.
  void resume() {
    if (!paused_) return;
    start_ = clock::now();
    paused_ = false;
  }

  [[nodiscard]] bool paused() const { return paused_; }

 private:
  using clock = std::chrono::steady_clock;
  using duration = clock::duration;

  [[nodiscard]] duration running() const {
    return paused_ ? duration::zero() : clock::now() - start_;
  }

  clock::time_point start_;
  duration banked_ = duration::zero();
  bool paused_ = false;
};

}  // namespace logstruct::util
