#pragma once

/// \file csv.hpp
/// Minimal CSV emission for benchmark harnesses.
///
/// Benches print human-readable tables to stdout and, when given an output
/// path, also dump machine-readable CSV so EXPERIMENTS.md numbers can be
/// regenerated and post-processed.

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace logstruct::util {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// separators or quotes).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Start a new row. Subsequent add() calls fill it left to right.
  CsvWriter& row();

  CsvWriter& add(std::string_view value);
  CsvWriter& add(double value);
  CsvWriter& add(std::int64_t value);
  CsvWriter& add(int value) { return add(static_cast<std::int64_t>(value)); }
  CsvWriter& add(std::size_t value) {
    return add(static_cast<std::int64_t>(value));
  }

  /// Serialize everything (header + rows).
  [[nodiscard]] std::string str() const;

  /// Write to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  static std::string escape(std::string_view value);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace logstruct::util
