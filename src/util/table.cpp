#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace logstruct::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

TablePrinter& TablePrinter::row() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::add(std::string_view value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().emplace_back(value);
  return *this;
}

TablePrinter& TablePrinter::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return add(std::string_view(buf));
}

TablePrinter& TablePrinter::add(std::int64_t value) {
  return add(std::string_view(std::to_string(value)));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << cell;
      if (i + 1 < width.size())
        os << std::string(width[i] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < width.size(); ++i)
    total += width[i] + (i + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TablePrinter::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace logstruct::util
