#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/memstats.hpp"

namespace logstruct::util {

namespace {

/// True while the current thread is executing inside a pool job; nested
/// parallel_for calls then run inline serially instead of deadlocking on
/// the single job slot.
thread_local bool t_in_pool_job = false;

/// One participant's contiguous index range. Claims (owner pops from the
/// front, thieves split off the back) are serialized by `mu`; the range
/// is small shared state, so a plain mutex is both simple and exactly
/// what ThreadSanitizer can verify.
struct Shard {
  std::mutex mu;
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

}  // namespace

struct ThreadPool::Impl {
  struct Job {
    const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
    std::vector<Shard> shards;
    std::int64_t grain = 1;
    // Guarded by the pool mutex:
    int tickets = 0;  ///< worker participation slots left
    int active = 0;   ///< participants currently inside participate()
    obs::AllocCounters worker_allocs;  ///< summed from finished workers
  };

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::thread> workers;
  Job* job = nullptr;
  bool stop = false;
  /// Serializes submissions from distinct threads (one job slot).
  std::mutex submit_mu;

  void worker_loop() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      cv.wait(lk, [this] {
        return stop || (job != nullptr && job->tickets > 0);
      });
      if (stop) return;
      Job* j = job;
      --j->tickets;
      ++j->active;
      lk.unlock();

      const obs::AllocCounters before = obs::thread_allocs();
      t_in_pool_job = true;
      participate(*j);
      t_in_pool_job = false;
      const obs::AllocCounters after = obs::thread_allocs();

      lk.lock();
      j->worker_allocs.bytes += after.bytes - before.bytes;
      j->worker_allocs.count += after.count - before.count;
      if (--j->active == 0) cv.notify_all();
    }
  }

  /// Drain shards until every index is claimed. Own shard first (front,
  /// grain-sized chunks), then steal the back half of the fullest
  /// remaining shard.
  static void participate(Job& j) {
    const std::size_t nshards = j.shards.size();
    for (;;) {
      // Pick the shard with the most remaining work. The snapshot is
      // racy-by-design (sizes move under their own mutexes); the claim
      // below re-checks under the shard's lock, so a stale pick only
      // costs a retry.
      std::size_t pick = nshards;
      std::int64_t pick_size = 0;
      for (std::size_t s = 0; s < nshards; ++s) {
        std::int64_t size;
        {
          std::lock_guard<std::mutex> g(j.shards[s].mu);
          size = j.shards[s].end - j.shards[s].begin;
        }
        if (size > pick_size) {
          pick_size = size;
          pick = s;
        }
      }
      if (pick == nshards) return;  // every shard empty: job drained

      Shard& shard = j.shards[pick];
      std::int64_t lo = 0;
      std::int64_t hi = 0;
      {
        std::lock_guard<std::mutex> g(shard.mu);
        const std::int64_t size = shard.end - shard.begin;
        if (size <= 0) continue;  // lost the race; re-scan
        // Steal the back half (at least one grain) and run it here; the
        // front stays claimable by the shard's other visitors.
        const std::int64_t take =
            std::max(j.grain, (size + 1) / 2);
        lo = std::max(shard.begin, shard.end - take);
        hi = shard.end;
        shard.end = lo;
      }
      for (std::int64_t c = lo; c < hi; c += j.grain)
        (*j.body)(c, std::min(hi, c + j.grain));
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(new Impl), threads_(std::max(1, threads)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t)>& body,
    int limit) {
  parallel_for_chunks(
      n, /*grain=*/1,
      [&body](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) body(i);
      },
      limit);
}

void ThreadPool::parallel_for_chunks(
    std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    int limit) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  const int participants = static_cast<int>(std::min<std::int64_t>(
      std::min(threads_, std::max(1, limit)), n));
  if (participants <= 1 || t_in_pool_job) {
    // Serial (or nested-from-a-worker) execution: one chunk sweep, no
    // locking, identical index coverage.
    for (std::int64_t c = 0; c < n; c += grain)
      body(c, std::min(n, c + grain));
    return;
  }

  std::lock_guard<std::mutex> submit(impl_->submit_mu);
  Impl::Job job;
  job.body = &body;
  job.grain = grain;
  job.tickets = participants - 1;
  job.shards = std::vector<Shard>(static_cast<std::size_t>(participants));
  // Contiguous shards, remainder spread over the leading shards; every
  // index appears in exactly one shard.
  const std::int64_t base = n / participants;
  const std::int64_t extra = n % participants;
  std::int64_t at = 0;
  for (std::int64_t s = 0; s < participants; ++s) {
    const std::int64_t len = base + (s < extra ? 1 : 0);
    job.shards[static_cast<std::size_t>(s)].begin = at;
    job.shards[static_cast<std::size_t>(s)].end = at + len;
    at += len;
  }

  ensure_workers(participants - 1);
  {
    std::lock_guard<std::mutex> g(impl_->mu);
    job.active = 1;  // the calling thread
    impl_->job = &job;
  }
  impl_->cv.notify_all();

  t_in_pool_job = true;
  Impl::participate(job);
  t_in_pool_job = false;

  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    job.tickets = 0;  // late workers must not join a drained job
    --job.active;
    impl_->cv.wait(lk, [&job] { return job.active == 0; });
    impl_->job = nullptr;
  }
  // Credit worker-side heap traffic to this thread so enclosing
  // AllocScope / span deltas keep summing correctly across the fan-out.
  obs::credit_external_allocs(job.worker_allocs);
}

void ThreadPool::ensure_workers(int wanted) {
  std::lock_guard<std::mutex> g(impl_->mu);
  const int cap = threads_ - 1;
  wanted = std::min(wanted, cap);
  while (static_cast<int>(impl_->workers.size()) < wanted)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

namespace {
std::atomic<int> g_default_parallelism{1};
}  // namespace

int default_parallelism() {
  return g_default_parallelism.load(std::memory_order_relaxed);
}

void set_default_parallelism(int threads) {
  if (threads <= 0) threads = ThreadPool::hardware_threads();
  g_default_parallelism.store(threads, std::memory_order_relaxed);
}

int resolve_threads(int n) {
  return n >= 1 ? n : default_parallelism();
}

void parallel_for(int threads, std::int64_t n,
                  const std::function<void(std::int64_t)>& body) {
  const int t = resolve_threads(threads);
  if (t <= 1 || n < 2) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool::global().parallel_for(n, body, t);
}

void parallel_for_chunks(
    int threads, std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const int t = resolve_threads(threads);
  grain = std::max<std::int64_t>(1, grain);
  if (t <= 1 || n < 2) {
    for (std::int64_t c = 0; c < n; c += grain)
      body(c, std::min(n, c + grain));
    return;
  }
  ThreadPool::global().parallel_for_chunks(n, grain, body, t);
}

}  // namespace logstruct::util
