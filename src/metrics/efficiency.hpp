#pragma once

/// \file efficiency.hpp
/// Time-resolved POP-style efficiency metrics over sliced windows.
///
/// The paper's payoff is that recovered logical structure (phases/steps)
/// attributes performance sharper than wall-clock slicing; this suite
/// makes that measurable. Four kernels compute, per window of a
/// WindowSet (fixed-width time bins or recovered phases):
///
///   parallel efficiency       busy_avg / span
///   load balance              busy_avg / busy_max
///   communication efficiency  busy_max / span
///   serialization efficiency  busy_max / ideal_span
///   transfer efficiency       ideal_span / span
///
/// where busy is per-processor sub-block compute inside the window,
/// span the window's wall-clock extent, and ideal_span the window's
/// longest dependency chain of compute under a zero-latency network
/// (the POP "ideal network" replay). The identities
/// parallel = balance x communication and communication =
/// serialization x transfer hold exactly (before clamping to [0, 1]).
/// Definitions, edge cases, and the export schema are documented in
/// docs/METRICS.md.
///
/// All kernels run on the shared work-stealing pool with index-owned
/// writes and fixed-order reductions — bit-identical results for any
/// thread count — and carry the window quarantine provenance
/// (degraded_windows) like the per-run metric kernels do.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "metrics/windows.hpp"
#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::util {
class Flags;
}

namespace logstruct::metrics {

/// Shared per-window precompute the four kernels consume: per-processor
/// busy time, dependency (message) counts and latency sums, and the
/// zero-latency replay span. Computed once per WindowSet.
struct WindowLoads {
  std::int32_t num_procs = 0;

  /// Busy (sub-block compute) ns, flattened [window * num_procs + proc].
  std::vector<trace::TimeNs> busy;
  /// Processors with at least one event in the window.
  std::vector<std::int32_t> procs_active;
  /// Events per window.
  std::vector<std::int32_t> events;
  /// Dependency rows whose receive lands in the window.
  std::vector<std::int64_t> messages;
  /// Sum over those rows of max(0, recv time - send time).
  std::vector<trace::TimeNs> transfer_wait;
  std::vector<trace::TimeNs> busy_sum;
  std::vector<trace::TimeNs> busy_max;
  /// Longest in-window chain of sub-block compute through block order
  /// and dependency edges with message latencies set to zero.
  std::vector<trace::TimeNs> ideal_span;
};

/// `threads` fans the per-window accumulation out over the shared pool
/// (0 = util::default_parallelism()); windows own disjoint event ranges
/// and every reduction runs in fixed (id) order, so the result is
/// bit-identical for any thread count.
WindowLoads compute_window_loads(const trace::Trace& trace,
                                 const WindowSet& windows, int threads = 0);

/// Summary shared by the kernels: worst and mean window, computed over
/// non-empty windows only (empty bins report 0 and are excluded).
struct EffSummary {
  double min = 0;
  double mean = 0;
  std::int32_t min_window = -1;
};

struct ParallelEfficiency {
  std::vector<double> per_window;
  EffSummary summary;
  /// Windows quarantined by trace-level recovery (Window::degraded):
  /// ratios there rest on repaired, not observed, dependencies.
  std::int32_t degraded_windows = 0;
};

struct LoadBalance {
  std::vector<double> per_window;
  EffSummary summary;
  std::int32_t degraded_windows = 0;
};

struct CommunicationEfficiency {
  std::vector<double> per_window;
  EffSummary summary;
  std::int32_t degraded_windows = 0;
};

struct SerializationTransfer {
  std::vector<double> serialization;
  std::vector<double> transfer;
  EffSummary serialization_summary;
  EffSummary transfer_summary;
  std::int32_t degraded_windows = 0;
};

ParallelEfficiency parallel_efficiency(const WindowSet& windows,
                                       const WindowLoads& loads,
                                       int threads = 0);
LoadBalance load_balance(const WindowSet& windows, const WindowLoads& loads,
                         int threads = 0);
CommunicationEfficiency communication_efficiency(const WindowSet& windows,
                                                 const WindowLoads& loads,
                                                 int threads = 0);
SerializationTransfer serialization_transfer(const WindowSet& windows,
                                             const WindowLoads& loads,
                                             int threads = 0);

/// All four kernels over one shared WindowLoads precompute, plus the
/// window metadata the exporters need.
struct EfficiencySuite {
  WindowKind kind = WindowKind::TimeBin;
  trace::TimeNs bin_width_ns = 0;  ///< 0 for phase windows
  std::vector<Window> windows;
  WindowLoads loads;
  ParallelEfficiency parallel;
  LoadBalance balance;
  CommunicationEfficiency communication;
  SerializationTransfer sertrans;
  std::int32_t degraded_windows = 0;

  [[nodiscard]] std::int32_t num_windows() const {
    return static_cast<std::int32_t>(windows.size());
  }
};

EfficiencySuite efficiency_suite(const trace::Trace& trace,
                                 const WindowSet& windows, int threads = 0);

/// Serialize suites as a `logstruct-effmetrics/v1` artifact (schema in
/// docs/METRICS.md; validated by `tools/obs_to_table.py --check`).
std::string efficiency_report_json(const trace::Trace& trace,
                                   const std::string& program,
                                   std::span<const EfficiencySuite> suites);

/// Honor the shared `--eff-json` / `--eff-bins` harness flags (defined
/// by util::define_obs_flags): when `--eff-json=<path>` was given, run
/// the suite under both slicings — recovered phases and `--eff-bins`
/// wall-clock bins (0 = one bin per phase) — and write the artifact.
/// No-op (returning true) when the flag is unset; false on write
/// failure, like util::finish_obs.
bool write_efficiency_report(const util::Flags& flags,
                             const trace::Trace& trace,
                             const order::LogicalStructure& ls,
                             const std::string& program);

}  // namespace logstruct::metrics
