#pragma once

/// \file imbalance.hpp
/// Per-phase computation imbalance (paper §4, Fig. 14).
///
/// For each phase, sum sub-block durations per processor; the phase's
/// imbalance is the gap between the most and least loaded participating
/// processors, and each processor's *spread* is its excess over the least
/// loaded one. The spread is mapped back onto every event of that phase
/// and processor.

#include <vector>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::metrics {

struct Imbalance {
  /// max-min duration gap per phase.
  std::vector<trace::TimeNs> per_phase;
  /// spread (duration - min) per phase per processor; -1 when the
  /// processor has no events in the phase.
  std::vector<std::vector<trace::TimeNs>> per_phase_proc;
  /// spread of (event's phase, event's processor), per event.
  std::vector<trace::TimeNs> per_event;
  /// Phases quarantined by trace-level recovery (PhaseResult::degraded):
  /// spreads over those regions rest on repaired, not observed,
  /// dependencies. 0 for clean traces.
  std::int32_t degraded_phases = 0;
};

/// `threads` fans the per-phase spread computation and the per-event
/// mapping out over the shared pool (0 = util::default_parallelism());
/// each phase / event owns its output slots, so results are
/// bit-identical for any thread count. The load scatter stays serial.
Imbalance imbalance(const trace::Trace& trace,
                    const order::LogicalStructure& ls, int threads = 0);

}  // namespace logstruct::metrics
