#pragma once

/// \file duration.hpp
/// Differential duration (paper §4, Fig. 15).
///
/// Computations at the same logical step of the same phase are "the same
/// action" and should take the same time; differential duration is each
/// sub-block's excess over the fastest sub-block at its (phase, step).

#include <vector>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::metrics {

struct DifferentialDuration {
  std::vector<trace::TimeNs> per_event;  ///< excess time at (phase, step)
  trace::TimeNs max_value = 0;
  trace::EventId max_event = trace::kNone;
  /// Phases quarantined by trace-level recovery (PhaseResult::degraded):
  /// excess over those regions rests on repaired, not observed,
  /// dependencies. 0 for clean traces.
  std::int32_t degraded_phases = 0;
};

/// `threads` fans the per-event excess pass out over the shared pool
/// (0 = util::default_parallelism()); the max reduction runs over a
/// fixed chunk grid, so output is bit-identical for any count.
DifferentialDuration differential_duration(
    const trace::Trace& trace, const order::LogicalStructure& ls,
    int threads = 0);

}  // namespace logstruct::metrics
