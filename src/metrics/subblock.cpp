#include "metrics/subblock.hpp"

#include "obs/obs.hpp"

namespace logstruct::metrics {

std::vector<trace::TimeNs> subblock_durations(const trace::Trace& trace) {
  OBS_SPAN_ANON("metrics/subblock_durations");
  std::vector<trace::TimeNs> dur(
      static_cast<std::size_t>(trace.num_events()), 0);
  for (trace::BlockId b = 0; b < trace.num_blocks(); ++b) {
    const trace::SerialBlock blk = trace.block(b);
    const auto bev = trace.events_of_block(b);
    if (bev.empty()) continue;
    trace::TimeNs prev = blk.begin;
    for (trace::EventId e : bev) {
      const trace::TimeNs t = trace.event_time(e);
      dur[static_cast<std::size_t>(e)] += t - prev;
      prev = t;
    }
    trace::TimeNs leftover = blk.end - prev;
    if (leftover > 0) {
      trace::EventId owner =
          blk.trigger != trace::kNone ? blk.trigger : bev.back();
      dur[static_cast<std::size_t>(owner)] += leftover;
    }
  }
  return dur;
}

}  // namespace logstruct::metrics
