#pragma once

/// \file concurrency.hpp
/// Concurrency report: the causality engine as a user-facing metric.
///
/// The vector-clock oracle (order/causality.hpp) does not just police the
/// pipeline — it answers a question profilers cannot: which recovered
/// phases are *causally unordered*, i.e. could have executed in either
/// order (or simultaneously) without changing the computation? Per window
/// of a WindowSet this kernel counts:
///
///   phases_active     recovered phases with >= 1 event in the window
///   unordered_pairs   pairs of those phases with no phase-DAG path in
///                     either direction (candidates for overlap)
///   commuting_pairs   unordered pairs that also touch disjoint chare
///                     sets — commutativity candidates: reordering them
///                     cannot even race on a chare's state
///
/// For phase-sliced windows the pair counts degenerate (one phase per
/// window), so those windows instead report the phase's *concurrency
/// degree*: how many other phases are unordered with (resp. commute
/// with) it. The exporter writes `logstruct-concurrency/v1` (see
/// docs/CAUSALITY.md) via the shared `--concurrency-json` /
/// `--concurrency-bins` harness flags.
///
/// Determinism: per-window results are index-owned parallel_for writes
/// and the global pair counts reduce in fixed phase order — bit-identical
/// for any thread count on either storage backend.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "metrics/windows.hpp"
#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::util {
class Flags;
}

namespace logstruct::metrics {

struct WindowConcurrency {
  std::int32_t phases_active = 0;
  /// TimeBin windows: causally-unordered pairs among the active phases.
  /// Phase windows: this phase's concurrency degree (unordered others).
  std::int64_t unordered_pairs = 0;
  /// The subset of unordered pairs whose chare sets are disjoint.
  std::int64_t commuting_pairs = 0;
};

struct ConcurrencyReport {
  WindowKind kind = WindowKind::TimeBin;
  trace::TimeNs bin_width_ns = 0;  ///< 0 for phase windows
  std::vector<Window> windows;
  std::vector<WindowConcurrency> per_window;

  /// Whole-trace pair census over all recovered phases.
  std::int32_t num_phases = 0;
  std::int64_t phase_pairs_total = 0;
  std::int64_t phase_pairs_unordered = 0;
  std::int64_t phase_pairs_commuting = 0;
  std::int32_t degraded_windows = 0;

  [[nodiscard]] std::int32_t num_windows() const {
    return static_cast<std::int32_t>(windows.size());
  }
};

/// Compute the report over one WindowSet. `threads` fans the per-window
/// loop out over the shared pool (0 = util::default_parallelism()).
ConcurrencyReport concurrency_report(const trace::Trace& trace,
                                     const order::LogicalStructure& ls,
                                     const WindowSet& windows,
                                     int threads = 0);

/// Serialize reports as a `logstruct-concurrency/v1` artifact
/// (docs/CAUSALITY.md; validated by `tools/obs_to_table.py --check`).
std::string concurrency_report_json(const trace::Trace& trace,
                                    const std::string& program,
                                    std::span<const ConcurrencyReport> reports);

/// Honor the shared `--concurrency-json` / `--concurrency-bins` harness
/// flags (util::define_obs_flags): when `--concurrency-json=<path>` was
/// given, compute the report under both slicings — recovered phases and
/// `--concurrency-bins` wall-clock bins (0 = one bin per phase) — and
/// write the artifact. No-op (returning true) when the flag is unset;
/// false on write failure, like metrics::write_efficiency_report.
bool write_concurrency_report(const util::Flags& flags,
                              const trace::Trace& trace,
                              const order::LogicalStructure& ls,
                              const std::string& program);

}  // namespace logstruct::metrics
