#include "metrics/duration.hpp"

#include <limits>
#include <unordered_map>

#include "metrics/subblock.hpp"
#include "obs/obs.hpp"

namespace logstruct::metrics {

DifferentialDuration differential_duration(
    const trace::Trace& trace, const order::LogicalStructure& ls) {
  OBS_SPAN_ANON("metrics/differential_duration");
  DifferentialDuration out;
  out.per_event.assign(static_cast<std::size_t>(trace.num_events()), 0);
  std::vector<trace::TimeNs> dur = subblock_durations(trace);

  // (phase, step) -> fastest sub-block duration.
  std::unordered_map<std::int64_t, trace::TimeNs> fastest;
  auto key = [&](trace::EventId e) {
    return (static_cast<std::int64_t>(
                ls.phases.phase_of_event[static_cast<std::size_t>(e)])
            << 32) |
           static_cast<std::uint32_t>(
               ls.global_step[static_cast<std::size_t>(e)]);
  };
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    auto [it, inserted] = fastest.try_emplace(
        key(e), dur[static_cast<std::size_t>(e)]);
    if (!inserted)
      it->second = std::min(it->second, dur[static_cast<std::size_t>(e)]);
  }
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    trace::TimeNs excess =
        dur[static_cast<std::size_t>(e)] - fastest[key(e)];
    out.per_event[static_cast<std::size_t>(e)] = excess;
    if (excess > out.max_value) {
      out.max_value = excess;
      out.max_event = e;
    }
  }
  return out;
}

}  // namespace logstruct::metrics
