#include "metrics/duration.hpp"

#include <limits>
#include <unordered_map>

#include "metrics/subblock.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::metrics {

DifferentialDuration differential_duration(
    const trace::Trace& trace, const order::LogicalStructure& ls,
    int threads) {
  OBS_SPAN_ANON("metrics/differential_duration");
  threads = util::resolve_threads(threads);
  DifferentialDuration out;
  out.degraded_phases = ls.phases.degraded_phases;
  out.per_event.assign(static_cast<std::size_t>(trace.num_events()), 0);
  std::vector<trace::TimeNs> dur = subblock_durations(trace);

  // (phase, step) -> fastest sub-block duration.
  std::unordered_map<std::int64_t, trace::TimeNs> fastest;
  auto key = [&](trace::EventId e) {
    return (static_cast<std::int64_t>(
                ls.phases.phase_of_event[static_cast<std::size_t>(e)])
            << 32) |
           static_cast<std::uint32_t>(
               ls.global_step[static_cast<std::size_t>(e)]);
  };
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    auto [it, inserted] = fastest.try_emplace(
        key(e), dur[static_cast<std::size_t>(e)]);
    if (!inserted)
      it->second = std::min(it->second, dur[static_cast<std::size_t>(e)]);
  }
  // Chunked max reduction over a grid that depends only on the trace
  // size; partials combine in chunk order, so any thread count — serial
  // included — keeps the first-event-wins tie-break bit-identical.
  const std::int64_t n = trace.num_events();
  const std::int64_t chunks = (n + 4095) / 4096;
  std::vector<trace::TimeNs> part_max(static_cast<std::size_t>(chunks), 0);
  std::vector<trace::EventId> part_event(static_cast<std::size_t>(chunks),
                                         trace::kNone);
  util::parallel_for(threads, chunks, [&](std::int64_t c) {
    const std::int64_t lo = n * c / chunks;
    const std::int64_t hi = n * (c + 1) / chunks;
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto e = static_cast<trace::EventId>(i);
      trace::TimeNs excess =
          dur[static_cast<std::size_t>(e)] - fastest.at(key(e));
      out.per_event[static_cast<std::size_t>(e)] = excess;
      if (excess > part_max[static_cast<std::size_t>(c)]) {
        part_max[static_cast<std::size_t>(c)] = excess;
        part_event[static_cast<std::size_t>(c)] = e;
      }
    }
  });
  for (std::int64_t c = 0; c < chunks; ++c) {
    if (part_max[static_cast<std::size_t>(c)] > out.max_value) {
      out.max_value = part_max[static_cast<std::size_t>(c)];
      out.max_event = part_event[static_cast<std::size_t>(c)];
    }
  }
  return out;
}

}  // namespace logstruct::metrics
