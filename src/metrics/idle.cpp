#include "metrics/idle.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace logstruct::metrics {

IdleExperienced idle_experienced(const trace::Trace& trace) {
  OBS_SPAN_ANON("metrics/idle_experienced");
  IdleExperienced out;
  out.per_event.assign(static_cast<std::size_t>(trace.num_events()), 0);
  out.per_block.assign(static_cast<std::size_t>(trace.num_blocks()), 0);

  for (const trace::IdleSpan& span : trace.idles()) {
    const trace::TimeNs length = span.end - span.begin;
    auto blocks = trace.blocks_of_proc(span.proc);
    // First block beginning at or after the idle's end.
    auto it = std::lower_bound(
        blocks.begin(), blocks.end(), span.end,
        [&trace](trace::BlockId b, trace::TimeNs t) {
          return trace.block(b).begin < t;
        });
    bool first = true;
    for (; it != blocks.end(); ++it) {
      const trace::SerialBlock& blk = trace.block(*it);
      bool assign = false;
      if (first) {
        // The block directly after the idle always experiences it.
        assign = true;
        first = false;
      } else if (blk.trigger != trace::kNone &&
                 trace.event(blk.trigger).partner != trace::kNone) {
        // Subsequent blocks experience the idle if their dependency
        // started before the idle ended (they could have been running).
        const trace::Event& send =
            trace.event(trace.event(blk.trigger).partner);
        if (send.time < span.end) {
          assign = true;
        } else {
          break;  // dependent on an event after the idle: stop the walk
        }
      } else {
        break;  // unknown dependency: stop conservatively
      }
      if (assign) {
        out.per_block[static_cast<std::size_t>(*it)] += length;
        if (!blk.events.empty())
          out.per_event[static_cast<std::size_t>(blk.events.front())] +=
              length;
      }
    }
  }
  return out;
}

}  // namespace logstruct::metrics
