#include "metrics/idle.hpp"

#include <algorithm>

#include "metrics/depview.hpp"
#include "obs/obs.hpp"

namespace logstruct::metrics {

IdleExperienced idle_experienced(const trace::Trace& trace) {
  OBS_SPAN_ANON("metrics/idle_experienced");
  IdleExperienced out;
  out.per_event.assign(static_cast<std::size_t>(trace.num_events()), 0);
  out.per_block.assign(static_cast<std::size_t>(trace.num_blocks()), 0);

  // When a block's trigger started: the time of its gating dependency per
  // the frozen table — matching send, fan-out origin, or the last send of
  // its collective (previously collective triggers stopped the walk).
  IncomingDeps deps(trace);
  auto trigger_time = [&](const trace::SerialBlock& blk) -> trace::TimeNs {
    if (blk.trigger == trace::kNone) return -1;
    trace::EventId s = deps.binding_sender(trace, blk.trigger);
    return s == trace::kNone ? -1 : trace.event_time(s);
  };

  for (const trace::IdleSpan& span : trace.idles()) {
    const trace::TimeNs length = span.end - span.begin;
    auto blocks = trace.blocks_of_proc(span.proc);
    // First block beginning at or after the idle's end.
    auto it = std::lower_bound(
        blocks.begin(), blocks.end(), span.end,
        [&trace](trace::BlockId b, trace::TimeNs t) {
          return trace.block(b).begin < t;
        });
    bool first = true;
    for (; it != blocks.end(); ++it) {
      const trace::SerialBlock& blk = trace.block(*it);
      bool assign = false;
      if (first) {
        // The block directly after the idle always experiences it.
        assign = true;
        first = false;
      } else if (trace::TimeNs dep = trigger_time(blk); dep >= 0) {
        // Subsequent blocks experience the idle if their dependency
        // started before the idle ended (they could have been running).
        if (dep < span.end) {
          assign = true;
        } else {
          break;  // dependent on an event after the idle: stop the walk
        }
      } else {
        break;  // unknown dependency: stop conservatively
      }
      if (assign) {
        out.per_block[static_cast<std::size_t>(*it)] += length;
        const auto bev = trace.events_of_block(*it);
        if (!bev.empty())
          out.per_event[static_cast<std::size_t>(bev.front())] += length;
      }
    }
  }
  return out;
}

}  // namespace logstruct::metrics
