#include "metrics/lateness.hpp"

#include <limits>
#include <unordered_map>

#include "metrics/depview.hpp"
#include "obs/obs.hpp"

namespace logstruct::metrics {

Lateness lateness(const trace::Trace& trace,
                  const order::LogicalStructure& ls, bool same_phase_only) {
  OBS_SPAN_ANON("metrics/lateness");
  Lateness out;
  out.per_event.assign(static_cast<std::size_t>(trace.num_events()), 0);

  auto key = [&](trace::EventId e) -> std::int64_t {
    std::int64_t step = ls.global_step[static_cast<std::size_t>(e)];
    if (!same_phase_only) return step;
    return (static_cast<std::int64_t>(
                ls.phases.phase_of_event[static_cast<std::size_t>(e)])
            << 32) |
           static_cast<std::uint32_t>(step);
  };

  std::unordered_map<std::int64_t, trace::TimeNs> earliest;
  std::unordered_map<std::int64_t, std::int32_t> peers;
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    auto [it, inserted] = earliest.try_emplace(key(e), trace.event(e).time);
    if (!inserted) it->second = std::min(it->second, trace.event(e).time);
    ++peers[key(e)];
  }

  double sum = 0;
  std::int64_t counted = 0;
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    trace::TimeNs late = trace.event(e).time - earliest[key(e)];
    out.per_event[static_cast<std::size_t>(e)] = late;
    if (late > out.max_value) {
      out.max_value = late;
      out.max_event = e;
    }
    if (peers[key(e)] > 1) {
      sum += static_cast<double>(late);
      ++counted;
    }
  }
  out.mean = counted ? sum / static_cast<double>(counted) : 0.0;

  // Blame: charge each gated receive's lateness to the chare whose
  // message arrived last (one reverse pass over the dependency table).
  out.caused_by_chare.assign(static_cast<std::size_t>(trace.num_chares()),
                             0);
  IncomingDeps deps(trace);
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    trace::EventId s = deps.binding_sender(trace, e);
    if (s == trace::kNone) continue;
    out.caused_by_chare[static_cast<std::size_t>(trace.event(s).chare)] +=
        out.per_event[static_cast<std::size_t>(e)];
  }
  return out;
}

}  // namespace logstruct::metrics
