#include "metrics/lateness.hpp"

#include <limits>
#include <unordered_map>

#include "metrics/depview.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::metrics {

namespace {

/// Fixed reduction grid: a function of n alone (never of the thread
/// count), so chunked partials combine identically no matter how many
/// workers computed them — including the serial case.
std::int64_t reduction_chunks(std::int64_t n) {
  return (n + 4095) / 4096;
}

std::int64_t chunk_begin(std::int64_t n, std::int64_t chunks,
                         std::int64_t c) {
  return n * c / chunks;
}

}  // namespace

Lateness lateness(const trace::Trace& trace,
                  const order::LogicalStructure& ls, bool same_phase_only,
                  int threads) {
  OBS_SPAN_ANON("metrics/lateness");
  threads = util::resolve_threads(threads);
  Lateness out;
  out.degraded_phases = ls.phases.degraded_phases;
  out.per_event.assign(static_cast<std::size_t>(trace.num_events()), 0);

  auto key = [&](trace::EventId e) -> std::int64_t {
    std::int64_t step = ls.global_step[static_cast<std::size_t>(e)];
    if (!same_phase_only) return step;
    return (static_cast<std::int64_t>(
                ls.phases.phase_of_event[static_cast<std::size_t>(e)])
            << 32) |
           static_cast<std::uint32_t>(step);
  };

  std::unordered_map<std::int64_t, trace::TimeNs> earliest;
  std::unordered_map<std::int64_t, std::int32_t> peers;
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    const trace::TimeNs t = trace.event_time(e);
    auto [it, inserted] = earliest.try_emplace(key(e), t);
    if (!inserted) it->second = std::min(it->second, t);
    ++peers[key(e)];
  }

  // Per-event lateness + reductions over the fixed chunk grid: each
  // chunk owns its per_event slots and partial slot, and the partials
  // combine serially in chunk order — bit-identical for any threads.
  const std::int64_t n = trace.num_events();
  const std::int64_t chunks = reduction_chunks(n);
  struct Partial {
    trace::TimeNs max_value = 0;
    trace::EventId max_event = trace::kNone;
    double sum = 0;
    std::int64_t counted = 0;
  };
  std::vector<Partial> parts(static_cast<std::size_t>(chunks));
  util::parallel_for(threads, chunks, [&](std::int64_t c) {
    Partial& part = parts[static_cast<std::size_t>(c)];
    const std::int64_t lo = chunk_begin(n, chunks, c);
    const std::int64_t hi = chunk_begin(n, chunks, c + 1);
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto e = static_cast<trace::EventId>(i);
      trace::TimeNs late = trace.event(e).time - earliest.at(key(e));
      out.per_event[static_cast<std::size_t>(e)] = late;
      if (late > part.max_value) {
        part.max_value = late;
        part.max_event = e;
      }
      if (peers.at(key(e)) > 1) {
        part.sum += static_cast<double>(late);
        ++part.counted;
      }
    }
  });
  double sum = 0;
  std::int64_t counted = 0;
  for (const Partial& part : parts) {
    if (part.max_value > out.max_value) {
      out.max_value = part.max_value;
      out.max_event = part.max_event;
    }
    sum += part.sum;
    counted += part.counted;
  }
  out.mean = counted ? sum / static_cast<double>(counted) : 0.0;

  // Blame: charge each gated receive's lateness to the chare whose
  // message arrived last (one reverse pass over the dependency table).
  // Finding the binding sender scans each receive's sender list — fan
  // that out (index-owned slots); the scatter into chares stays serial.
  out.caused_by_chare.assign(static_cast<std::size_t>(trace.num_chares()),
                             0);
  IncomingDeps deps(trace);
  std::vector<trace::EventId> binding(
      static_cast<std::size_t>(trace.num_events()), trace::kNone);
  util::parallel_for(threads, n, [&](std::int64_t e) {
    binding[static_cast<std::size_t>(e)] =
        deps.binding_sender(trace, static_cast<trace::EventId>(e));
  });
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    trace::EventId s = binding[static_cast<std::size_t>(e)];
    if (s == trace::kNone) continue;
    out.caused_by_chare[static_cast<std::size_t>(trace.event(s).chare)] +=
        out.per_event[static_cast<std::size_t>(e)];
  }
  return out;
}

}  // namespace logstruct::metrics
