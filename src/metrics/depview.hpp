#pragma once

/// \file depview.hpp
/// Reverse view over the trace's frozen dependency table: for each
/// receiving event, the span of events it depends on (its matching send,
/// fan-out origin, or every send of its collective). Built in
/// O(events + dependencies) straight off the SoA columns — counting sort
/// into a CSR, no per-event allocation.

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace logstruct::metrics {

class IncomingDeps {
 public:
  explicit IncomingDeps(const trace::Trace& trace) {
    const auto sends = trace.dep_sends();
    const auto recvs = trace.dep_recvs();
    begin_.assign(static_cast<std::size_t>(trace.num_events()) + 1, 0);
    for (trace::EventId r : recvs)
      ++begin_[static_cast<std::size_t>(r) + 1];
    for (std::size_t i = 1; i < begin_.size(); ++i)
      begin_[i] += begin_[i - 1];
    senders_.resize(recvs.size());
    std::vector<std::int32_t> cursor(begin_.begin(), begin_.end() - 1);
    for (std::size_t i = 0; i < recvs.size(); ++i)
      senders_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(recvs[i])]++)] = sends[i];
  }

  /// Events `recv` depends on; empty for sends and dependency-free events.
  [[nodiscard]] std::span<const trace::EventId> senders(
      trace::EventId recv) const {
    const auto b = static_cast<std::size_t>(
        begin_[static_cast<std::size_t>(recv)]);
    const auto e = static_cast<std::size_t>(
        begin_[static_cast<std::size_t>(recv) + 1]);
    return std::span<const trace::EventId>(senders_).subspan(b, e - b);
  }

  /// The dependency that gated `recv`: the last-arriving sender
  /// (ties broken toward the smaller event id), or kNone.
  [[nodiscard]] trace::EventId binding_sender(const trace::Trace& trace,
                                              trace::EventId recv) const {
    trace::EventId best = trace::kNone;
    trace::TimeNs best_time = 0;
    for (trace::EventId s : senders(recv)) {
      const trace::TimeNs ts = trace.event_time(s);
      if (best == trace::kNone || ts > best_time) {
        best = s;
        best_time = ts;
      }
    }
    return best;
  }

 private:
  std::vector<std::int32_t> begin_;
  std::vector<trace::EventId> senders_;
};

}  // namespace logstruct::metrics
