#pragma once

/// \file subblock.hpp
/// Sub-block decomposition of serial blocks (paper §4, Fig. 13).
///
/// Dependency events divide each serial block into event-delimited units
/// of computation: the sub-block of event e spans from the previous event
/// in the block (or the block's begin) to e. Any leftover duration after
/// the last event goes to the block-starting event when one was recorded,
/// otherwise to the last event.

#include <vector>

#include "trace/trace.hpp"

namespace logstruct::metrics {

/// Duration of each event's sub-block (0 for events whose block assigns
/// them nothing beyond a zero span).
std::vector<trace::TimeNs> subblock_durations(const trace::Trace& trace);

}  // namespace logstruct::metrics
