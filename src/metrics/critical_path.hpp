#pragma once

/// \file critical_path.hpp
/// Critical-path analysis over the recovered dependency structure.
///
/// A natural extension of the paper's metrics: the longest chain of
/// physical time through the happened-before relation — sub-block compute
/// plus message latencies — bounds how far any optimization of off-path
/// work can go. The path is expressed in the logical structure's terms so
/// each hop has (chare, global step) coordinates.

#include <vector>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::metrics {

struct CriticalPath {
  /// Events along the path, earliest first.
  std::vector<trace::EventId> events;
  /// Physical duration covered by the path (compute + latency).
  trace::TimeNs length_ns = 0;
  /// Fraction of the trace's end time the path explains.
  double coverage = 0;
  /// Per-chare share of on-path sub-block time, index = ChareId.
  std::vector<trace::TimeNs> chare_share;
  /// Phases quarantined by trace-level recovery (PhaseResult::degraded):
  /// a path crossing those regions rests on repaired, not observed,
  /// dependencies. 0 for clean traces.
  std::int32_t degraded_phases = 0;
};

/// Longest chain under: (a) an event costs its sub-block duration,
/// (b) a receive additionally costs its message latency (recv time -
/// send time), (c) chain edges are the final per-chare order plus every
/// row of the trace's dependency table — matches, fan-out copies, and
/// collective closures (so the path follows reductions instead of
/// breaking at them). Deterministic tie-breaking.
/// `threads` fans the per-block duration/tail precompute out over the
/// shared pool (0 = util::default_parallelism()); the longest-path core
/// is inherently sequential and unaffected. Bit-identical for any count.
CriticalPath critical_path(const trace::Trace& trace,
                           const order::LogicalStructure& ls,
                           int threads = 0);

}  // namespace logstruct::metrics
