#pragma once

/// \file windows.hpp
/// Sliced-window views over a frozen trace.
///
/// A WindowSet partitions a trace's events into disjoint windows — either
/// fixed-width wall-clock time bins or the recovered phases of a
/// PhaseResult — and precomputes, per window, a CSR view of (a) the
/// events it owns and (b) the rows of the frozen dependency table whose
/// *receive* lands in it. The time-resolved efficiency kernels
/// (metrics/efficiency.hpp) iterate these views instead of re-scanning
/// the whole trace per window; the side-by-side bin-vs-phase comparison
/// (examples/efficiency_compare.cpp) is the paper's attribution claim
/// made runnable. Construction is O(events + dependencies) with
/// counting sorts; per-window event order is ascending event id, so
/// fixed-order reductions over a window are bit-identical for any
/// thread count. See docs/METRICS.md for the window semantics.

#include <cstdint>
#include <span>
#include <vector>

#include "order/phases.hpp"
#include "trace/trace.hpp"

namespace logstruct::metrics {

enum class WindowKind : std::uint8_t { TimeBin, Phase };

struct Window {
  /// Wall-clock extent. TimeBin: [begin, end) except the last bin, whose
  /// end is the trace end time (inclusive). Phase: the earliest and
  /// latest event timestamps of the phase (inclusive).
  trace::TimeNs begin = 0;
  trace::TimeNs end = 0;
  /// Source phase id (Phase kind), -1 for time bins.
  std::int32_t phase = -1;
  /// Quarantine provenance: the phase was degraded by trace-level
  /// recovery (PhaseResult::degraded), or — for time bins — the bin
  /// contains an event of a degraded chare. Efficiency over such a
  /// window rests on repaired, not observed, dependencies.
  bool degraded = false;

  [[nodiscard]] trace::TimeNs span() const { return end - begin; }
};

class WindowSet {
 public:
  /// Slice [0, trace.end_time()] into `bins` equal-width windows (>= 1;
  /// clamped). Every event lands in exactly one bin by its timestamp.
  static WindowSet time_bins(const trace::Trace& trace, std::int32_t bins);

  /// Slice into bins of `width_ns` (>= 1; clamped). The last bin absorbs
  /// the remainder.
  static WindowSet time_bins_of_width(const trace::Trace& trace,
                                      trace::TimeNs width_ns);

  /// One window per recovered phase, in phase-id order; extents from
  /// order::phase_extents. Degraded phases carry their quarantine flag.
  static WindowSet phases(const trace::Trace& trace,
                          const order::PhaseResult& phases);

  [[nodiscard]] WindowKind kind() const { return kind_; }
  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(windows_.size());
  }
  [[nodiscard]] const Window& window(std::int32_t w) const {
    return windows_[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] std::span<const Window> windows() const { return windows_; }

  /// Events owned by window w, ascending event id.
  [[nodiscard]] std::span<const trace::EventId> events_of(
      std::int32_t w) const {
    return csr_span(event_begin_, events_, w);
  }

  /// Rows of the trace's dependency table whose receive is in window w,
  /// ascending row index. Row r reads back through
  /// Trace::dep_sends()[r] / dep_recvs()[r] / dep_kinds()[r].
  [[nodiscard]] std::span<const std::int64_t> deps_of(std::int32_t w) const {
    return csr_span(dep_begin_, deps_, w);
  }

  /// Window owning event e (every event belongs to exactly one window).
  [[nodiscard]] std::int32_t window_of(trace::EventId e) const {
    return window_of_event_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] std::span<const std::int32_t> window_of_events() const {
    return window_of_event_;
  }

  /// Number of windows carrying the degraded quarantine flag.
  [[nodiscard]] std::int32_t degraded_windows() const {
    return degraded_windows_;
  }

  /// Bin width for TimeBin sets (the last bin may differ); 0 for phases.
  [[nodiscard]] trace::TimeNs bin_width() const { return bin_width_; }

  // --- iteration --------------------------------------------------------
  /// One window plus its event/dependency views; what the sliced-window
  /// iterator yields.
  struct View {
    const WindowSet* set = nullptr;
    std::int32_t index = 0;

    [[nodiscard]] const Window& window() const {
      return set->window(index);
    }
    [[nodiscard]] std::span<const trace::EventId> events() const {
      return set->events_of(index);
    }
    [[nodiscard]] std::span<const std::int64_t> deps() const {
      return set->deps_of(index);
    }
  };

  class iterator {
   public:
    iterator(const WindowSet* set, std::int32_t index)
        : view_{set, index} {}
    View operator*() const { return view_; }
    iterator& operator++() {
      ++view_.index;
      return *this;
    }
    bool operator!=(const iterator& other) const {
      return view_.index != other.view_.index;
    }
    bool operator==(const iterator& other) const {
      return view_.index == other.view_.index;
    }

   private:
    View view_;
  };

  [[nodiscard]] iterator begin() const { return iterator(this, 0); }
  [[nodiscard]] iterator end() const { return iterator(this, size()); }

 private:
  template <typename T>
  [[nodiscard]] std::span<const T> csr_span(
      const std::vector<std::int64_t>& begin, const std::vector<T>& flat,
      std::int32_t w) const {
    const auto b = static_cast<std::size_t>(
        begin[static_cast<std::size_t>(w)]);
    const auto e = static_cast<std::size_t>(
        begin[static_cast<std::size_t>(w) + 1]);
    return std::span<const T>(flat).subspan(b, e - b);
  }

  /// Fill events_/deps_/degraded from window_of_event_ (counting sorts).
  void index_members(const trace::Trace& trace, bool flag_degraded_chares);

  WindowKind kind_ = WindowKind::TimeBin;
  trace::TimeNs bin_width_ = 0;
  std::vector<Window> windows_;
  std::vector<std::int32_t> window_of_event_;
  std::vector<std::int64_t> event_begin_;  ///< CSR over events_
  std::vector<trace::EventId> events_;
  std::vector<std::int64_t> dep_begin_;  ///< CSR over deps_
  std::vector<std::int64_t> deps_;
  std::int32_t degraded_windows_ = 0;
};

}  // namespace logstruct::metrics
