#include "metrics/windows.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "order/stats.hpp"

namespace logstruct::metrics {

void WindowSet::index_members(const trace::Trace& trace,
                              bool flag_degraded_chares) {
  const auto num_windows = windows_.size();
  const auto num_events = static_cast<std::size_t>(trace.num_events());

  // Events per window: counting sort in event-id order, so each
  // window's list comes out id-sorted (the fixed reduction order the
  // efficiency kernels rely on).
  event_begin_.assign(num_windows + 1, 0);
  for (std::size_t e = 0; e < num_events; ++e)
    ++event_begin_[static_cast<std::size_t>(window_of_event_[e]) + 1];
  for (std::size_t w = 1; w < event_begin_.size(); ++w)
    event_begin_[w] += event_begin_[w - 1];
  events_.resize(num_events);
  std::vector<std::int64_t> cursor(event_begin_.begin(),
                                   event_begin_.end() - 1);
  for (std::size_t e = 0; e < num_events; ++e) {
    const auto w = static_cast<std::size_t>(window_of_event_[e]);
    events_[static_cast<std::size_t>(cursor[w]++)] =
        static_cast<trace::EventId>(e);
  }

  // Dependency rows land in the window of their receive, row-id sorted.
  const auto recvs = trace.dep_recvs();
  dep_begin_.assign(num_windows + 1, 0);
  for (std::size_t r = 0; r < recvs.size(); ++r)
    ++dep_begin_[static_cast<std::size_t>(
                     window_of_event_[static_cast<std::size_t>(recvs[r])]) +
                 1];
  for (std::size_t w = 1; w < dep_begin_.size(); ++w)
    dep_begin_[w] += dep_begin_[w - 1];
  deps_.resize(recvs.size());
  cursor.assign(dep_begin_.begin(), dep_begin_.end() - 1);
  for (std::size_t r = 0; r < recvs.size(); ++r) {
    const auto w = static_cast<std::size_t>(
        window_of_event_[static_cast<std::size_t>(recvs[r])]);
    deps_[static_cast<std::size_t>(cursor[w]++)] =
        static_cast<std::int64_t>(r);
  }

  // A time bin inherits the quarantine flag of any degraded chare whose
  // event it contains (phase windows carry the flag from PhaseResult).
  if (flag_degraded_chares && trace.num_degraded_chares() > 0) {
    for (std::size_t e = 0; e < num_events; ++e) {
      if (trace.is_degraded_chare(
              trace.event(static_cast<trace::EventId>(e)).chare))
        windows_[static_cast<std::size_t>(window_of_event_[e])].degraded =
            true;
    }
  }
  degraded_windows_ = 0;
  for (const Window& w : windows_)
    if (w.degraded) ++degraded_windows_;

  OBS_COUNTER_ADD("metrics/windows/built",
                  static_cast<std::int64_t>(num_windows));
}

WindowSet WindowSet::time_bins(const trace::Trace& trace,
                               std::int32_t bins) {
  OBS_SPAN_ANON("metrics/windows/time_bins");
  WindowSet set;
  set.kind_ = WindowKind::TimeBin;
  bins = std::max<std::int32_t>(1, bins);
  const trace::TimeNs end = std::max<trace::TimeNs>(trace.end_time(), 1);
  const trace::TimeNs width =
      std::max<trace::TimeNs>(1, (end + bins - 1) / bins);

  set.bin_width_ = width;
  set.windows_.resize(static_cast<std::size_t>(bins));
  for (std::int32_t w = 0; w < bins; ++w) {
    Window& win = set.windows_[static_cast<std::size_t>(w)];
    win.begin = static_cast<trace::TimeNs>(w) * width;
    win.end = w + 1 == bins ? end : win.begin + width;
  }

  set.window_of_event_.resize(static_cast<std::size_t>(trace.num_events()));
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    auto w = static_cast<std::int32_t>(trace.event_time(e) / width);
    set.window_of_event_[static_cast<std::size_t>(e)] =
        std::min(w, bins - 1);
  }
  set.index_members(trace, /*flag_degraded_chares=*/true);
  return set;
}

WindowSet WindowSet::time_bins_of_width(const trace::Trace& trace,
                                        trace::TimeNs width_ns) {
  width_ns = std::max<trace::TimeNs>(1, width_ns);
  const trace::TimeNs end = std::max<trace::TimeNs>(trace.end_time(), 1);
  const auto bins =
      static_cast<std::int32_t>((end + width_ns - 1) / width_ns);
  return time_bins(trace, bins);
}

WindowSet WindowSet::phases(const trace::Trace& trace,
                            const order::PhaseResult& phases) {
  OBS_SPAN_ANON("metrics/windows/phases");
  WindowSet set;
  set.kind_ = WindowKind::Phase;

  const std::vector<order::PhaseExtent> extents =
      order::phase_extents(trace, phases);
  set.windows_.resize(static_cast<std::size_t>(phases.num_phases()));
  for (std::int32_t p = 0; p < phases.num_phases(); ++p) {
    Window& win = set.windows_[static_cast<std::size_t>(p)];
    win.begin = extents[static_cast<std::size_t>(p)].begin;
    win.end = extents[static_cast<std::size_t>(p)].end;
    win.phase = p;
    win.degraded = phases.is_degraded(p);
  }

  set.window_of_event_.assign(phases.phase_of_event.begin(),
                              phases.phase_of_event.end());
  set.index_members(trace, /*flag_degraded_chares=*/false);
  return set;
}

}  // namespace logstruct::metrics
