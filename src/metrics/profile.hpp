#pragma once

/// \file profile.hpp
/// Projections-style statistical profiles (paper §8's comparison point).
///
/// Charm++'s own tool aggregates per entry method — grain size, usage,
/// counts — without logical context. This module computes those profiles
/// (overall and per phase) so users can reproduce the "traditional" view
/// next to the paper's event-level structural one.

#include <cstdint>
#include <string>
#include <vector>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::metrics {

struct EntryProfile {
  trace::EntryId entry = trace::kNone;
  std::string name;
  bool runtime = false;
  std::int64_t executions = 0;
  trace::TimeNs total_ns = 0;
  trace::TimeNs min_ns = 0;
  trace::TimeNs max_ns = 0;
  [[nodiscard]] double mean_ns() const {
    return executions ? static_cast<double>(total_ns) /
                            static_cast<double>(executions)
                      : 0.0;
  }
};

/// Per-entry grain-size profile over the whole trace, sorted by total
/// time descending. Entries with no executions are omitted.
std::vector<EntryProfile> entry_profile(const trace::Trace& trace);

/// Utilization: fraction of [0, end_time] each processor spent inside
/// recorded serial blocks / recorded idle / neither ("other").
struct ProcUtilization {
  trace::ProcId proc = 0;
  double busy = 0;
  double idle = 0;
  double other = 0;
};
std::vector<ProcUtilization> utilization(const trace::Trace& trace);

/// Per-phase grain-size profile: total block time attributed to each
/// phase (a block's span counts toward the phase holding its first
/// event), sorted by phase id.
struct PhaseProfile {
  std::int32_t phase = 0;
  bool runtime = false;
  std::int64_t blocks = 0;
  trace::TimeNs total_ns = 0;
};
std::vector<PhaseProfile> phase_profile(const trace::Trace& trace,
                                        const order::LogicalStructure& ls);

}  // namespace logstruct::metrics
