#include "metrics/critical_path.hpp"

#include <algorithm>

#include "metrics/depview.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::metrics {

CriticalPath critical_path(const trace::Trace& trace,
                           const order::LogicalStructure& ls, int threads) {
  OBS_SPAN_ANON("metrics/critical_path");
  threads = util::resolve_threads(threads);
  CriticalPath out;
  out.degraded_phases = ls.phases.degraded_phases;
  const auto n = static_cast<std::size_t>(trace.num_events());
  if (n == 0) return out;

  // Plain event-gap durations: event e costs the span from the previous
  // event in its block (or the block begin) to e. Unlike the §4 sub-block
  // decomposition, the leftover tail of a block is NOT reassigned to the
  // trigger — that would double-count wall time when a path passes
  // through the trigger and a later event of the same block. With gap
  // durations every interval a path sums is disjoint, so coverage <= 1.
  std::vector<trace::TimeNs> dur(n, 0);
  std::vector<trace::TimeNs> tail(n, 0);
  // Every event belongs to exactly one block, so the per-block fills
  // write disjoint dur/tail slots and fan out race-free.
  util::parallel_for(
      threads, trace.num_blocks(), [&](std::int64_t b) {
        const trace::SerialBlock blk =
            trace.block(static_cast<trace::BlockId>(b));
        const auto bev =
            trace.events_of_block(static_cast<trace::BlockId>(b));
        trace::TimeNs prev = blk.begin;
        for (trace::EventId e : bev) {
          dur[static_cast<std::size_t>(e)] = trace.event(e).time - prev;
          prev = trace.event(e).time;
        }
        // The trailing compute after the last event is path work too (it
        // is what a receive-only block DOES) — but it happens AFTER the
        // event, so it only counts when the path continues along the
        // chare (or ends here), never when it leaves through the event's
        // outgoing message (the sender keeps computing while the message
        // flies).
        if (!bev.empty())
          tail[static_cast<std::size_t>(bev.back())] = blk.end - prev;
      });

  // Longest distance ending at each event. Process in physical-time order
  // (a valid topological order of both edge families: matching sends
  // precede their receives, and the per-chare order within a phase only
  // moves receives earlier — so use the happened-before edges in their
  // PHYSICAL direction: prior event in the chare's physical order, and
  // the matching send).
  std::vector<trace::EventId> order(n);
  for (std::size_t i = 0; i < n; ++i)
    order[i] = static_cast<trace::EventId>(i);
  std::sort(order.begin(), order.end(),
            [&trace](trace::EventId a, trace::EventId b) {
              const trace::TimeNs ta = trace.event_time(a);
              const trace::TimeNs tb = trace.event_time(b);
              if (ta != tb) return ta < tb;
              return a < b;
            });

  // dist_at: longest chain arriving at the event's own timestamp (used by
  // outgoing message edges). dist_full = dist_at + trailing tail (used by
  // chare-order continuation and as the final path length).
  std::vector<trace::TimeNs> dist_at(n, 0);
  std::vector<trace::EventId> pred(n, trace::kNone);
  std::vector<trace::EventId> last_on_chare(
      static_cast<std::size_t>(trace.num_chares()), trace::kNone);
  auto dist_full = [&](trace::EventId e) {
    return dist_at[static_cast<std::size_t>(e)] +
           tail[static_cast<std::size_t>(e)];
  };

  // All dependency edges come from the frozen table's reverse view:
  // matches and fan-out copies (what ev.partner used to give) plus every
  // send of a collective, so the path no longer breaks at reductions.
  IncomingDeps deps(trace);

  trace::EventId best = order.front();
  for (trace::EventId e : order) {
    const trace::Event& ev = trace.event(e);
    trace::TimeNs incoming = 0;
    trace::EventId from = trace::kNone;

    trace::EventId prev =
        last_on_chare[static_cast<std::size_t>(ev.chare)];
    if (prev != trace::kNone) {
      incoming = dist_full(prev);
      from = prev;
    }
    for (trace::EventId s : deps.senders(e)) {
      trace::TimeNs latency = ev.time - trace.event(s).time;
      trace::TimeNs via = dist_at[static_cast<std::size_t>(s)] + latency;
      if (via > incoming) {
        incoming = via;
        from = s;
      }
    }
    dist_at[static_cast<std::size_t>(e)] =
        incoming + dur[static_cast<std::size_t>(e)];
    pred[static_cast<std::size_t>(e)] = from;
    last_on_chare[static_cast<std::size_t>(ev.chare)] = e;
    if (dist_full(e) > dist_full(best)) best = e;
  }

  for (trace::EventId e = best; e != trace::kNone;
       e = pred[static_cast<std::size_t>(e)]) {
    out.events.push_back(e);
  }
  std::reverse(out.events.begin(), out.events.end());
  out.length_ns = dist_full(best);
  out.coverage = static_cast<double>(out.length_ns) /
                 static_cast<double>(
                     std::max<trace::TimeNs>(trace.end_time(), 1));

  out.chare_share.assign(static_cast<std::size_t>(trace.num_chares()), 0);
  for (std::size_t i = 0; i < out.events.size(); ++i) {
    trace::EventId e = out.events[i];
    trace::TimeNs share = dur[static_cast<std::size_t>(e)];
    // The tail counted toward the path only where the path kept following
    // the chare (or ended).
    bool left_by_message = false;
    if (i + 1 < out.events.size() &&
        trace.event(out.events[i + 1]).kind == trace::EventKind::Recv) {
      auto senders = deps.senders(out.events[i + 1]);
      left_by_message =
          std::find(senders.begin(), senders.end(), e) != senders.end();
    }
    if (!left_by_message) share += tail[static_cast<std::size_t>(e)];
    out.chare_share[static_cast<std::size_t>(trace.event(e).chare)] += share;
  }
  (void)ls;
  return out;
}

}  // namespace logstruct::metrics
