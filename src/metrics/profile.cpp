#include "metrics/profile.hpp"

#include <algorithm>
#include <limits>

#include "obs/obs.hpp"

namespace logstruct::metrics {

std::vector<EntryProfile> entry_profile(const trace::Trace& trace) {
  OBS_SPAN_ANON("metrics/entry_profile");
  std::vector<EntryProfile> rows(trace.entries().size());
  for (std::size_t e = 0; e < trace.entries().size(); ++e) {
    rows[e].entry = static_cast<trace::EntryId>(e);
    rows[e].name = trace.entries()[e].name;
    rows[e].runtime = trace.entries()[e].runtime;
    rows[e].min_ns = std::numeric_limits<trace::TimeNs>::max();
  }
  for (const trace::SerialBlock& blk : trace.blocks()) {
    EntryProfile& row = rows[static_cast<std::size_t>(blk.entry)];
    trace::TimeNs span = blk.end - blk.begin;
    ++row.executions;
    row.total_ns += span;
    row.min_ns = std::min(row.min_ns, span);
    row.max_ns = std::max(row.max_ns, span);
  }
  rows.erase(std::remove_if(rows.begin(), rows.end(),
                            [](const EntryProfile& r) {
                              return r.executions == 0;
                            }),
             rows.end());
  std::sort(rows.begin(), rows.end(),
            [](const EntryProfile& a, const EntryProfile& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.entry < b.entry;
            });
  return rows;
}

std::vector<ProcUtilization> utilization(const trace::Trace& trace) {
  OBS_SPAN_ANON("metrics/utilization");
  const double end = static_cast<double>(
      std::max<trace::TimeNs>(trace.end_time(), 1));
  std::vector<ProcUtilization> rows(
      static_cast<std::size_t>(trace.num_procs()));
  for (trace::ProcId p = 0; p < trace.num_procs(); ++p) {
    rows[static_cast<std::size_t>(p)].proc = p;
    trace::TimeNs busy = 0;
    for (trace::BlockId b : trace.blocks_of_proc(p))
      busy += trace.block(b).end - trace.block(b).begin;
    trace::TimeNs idle = trace.total_idle(p);
    auto& row = rows[static_cast<std::size_t>(p)];
    row.busy = static_cast<double>(busy) / end;
    row.idle = static_cast<double>(idle) / end;
    row.other = std::max(0.0, 1.0 - row.busy - row.idle);
  }
  return rows;
}

std::vector<PhaseProfile> phase_profile(const trace::Trace& trace,
                                        const order::LogicalStructure& ls) {
  OBS_SPAN_ANON("metrics/phase_profile");
  std::vector<PhaseProfile> rows(
      static_cast<std::size_t>(ls.num_phases()));
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    rows[static_cast<std::size_t>(p)].phase = p;
    rows[static_cast<std::size_t>(p)].runtime =
        ls.phases.runtime[static_cast<std::size_t>(p)];
  }
  for (trace::BlockId b = 0; b < trace.num_blocks(); ++b) {
    const trace::SerialBlock blk = trace.block(b);
    const auto bev = trace.events_of_block(b);
    if (bev.empty()) continue;
    auto phase = static_cast<std::size_t>(
        ls.phases.phase_of_event[static_cast<std::size_t>(bev.front())]);
    ++rows[phase].blocks;
    rows[phase].total_ns += blk.end - blk.begin;
  }
  return rows;
}

}  // namespace logstruct::metrics
