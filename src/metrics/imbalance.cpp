#include "metrics/imbalance.hpp"

#include <algorithm>
#include <limits>

#include "metrics/subblock.hpp"
#include "obs/obs.hpp"

namespace logstruct::metrics {

Imbalance imbalance(const trace::Trace& trace,
                    const order::LogicalStructure& ls) {
  OBS_SPAN_ANON("metrics/imbalance");
  Imbalance out;
  const std::size_t phases =
      static_cast<std::size_t>(ls.num_phases());
  const std::size_t procs = static_cast<std::size_t>(trace.num_procs());
  std::vector<trace::TimeNs> dur = subblock_durations(trace);

  std::vector<std::vector<trace::TimeNs>> load(
      phases, std::vector<trace::TimeNs>(procs, -1));
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    auto ph = static_cast<std::size_t>(
        ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    auto pr = static_cast<std::size_t>(trace.event(e).proc);
    if (load[ph][pr] < 0) load[ph][pr] = 0;
    load[ph][pr] += dur[static_cast<std::size_t>(e)];
  }

  out.per_phase.assign(phases, 0);
  out.per_phase_proc.assign(phases, std::vector<trace::TimeNs>(procs, -1));
  for (std::size_t ph = 0; ph < phases; ++ph) {
    trace::TimeNs lo = std::numeric_limits<trace::TimeNs>::max();
    trace::TimeNs hi = std::numeric_limits<trace::TimeNs>::min();
    for (std::size_t pr = 0; pr < procs; ++pr) {
      if (load[ph][pr] < 0) continue;  // proc absent from the phase
      lo = std::min(lo, load[ph][pr]);
      hi = std::max(hi, load[ph][pr]);
    }
    if (hi < lo) continue;  // empty phase cannot occur, but be safe
    out.per_phase[ph] = hi - lo;
    for (std::size_t pr = 0; pr < procs; ++pr) {
      if (load[ph][pr] >= 0) out.per_phase_proc[ph][pr] = load[ph][pr] - lo;
    }
  }

  out.per_event.assign(static_cast<std::size_t>(trace.num_events()), 0);
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    auto ph = static_cast<std::size_t>(
        ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    auto pr = static_cast<std::size_t>(trace.event(e).proc);
    out.per_event[static_cast<std::size_t>(e)] =
        std::max<trace::TimeNs>(out.per_phase_proc[ph][pr], 0);
  }
  return out;
}

}  // namespace logstruct::metrics
