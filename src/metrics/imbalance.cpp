#include "metrics/imbalance.hpp"

#include <algorithm>
#include <limits>

#include "metrics/subblock.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::metrics {

Imbalance imbalance(const trace::Trace& trace,
                    const order::LogicalStructure& ls, int threads) {
  OBS_SPAN_ANON("metrics/imbalance");
  threads = util::resolve_threads(threads);
  Imbalance out;
  out.degraded_phases = ls.phases.degraded_phases;
  const std::size_t phases =
      static_cast<std::size_t>(ls.num_phases());
  const std::size_t procs = static_cast<std::size_t>(trace.num_procs());
  std::vector<trace::TimeNs> dur = subblock_durations(trace);

  std::vector<std::vector<trace::TimeNs>> load(
      phases, std::vector<trace::TimeNs>(procs, -1));
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    auto ph = static_cast<std::size_t>(
        ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    auto pr = static_cast<std::size_t>(trace.event(e).proc);
    if (load[ph][pr] < 0) load[ph][pr] = 0;
    load[ph][pr] += dur[static_cast<std::size_t>(e)];
  }

  // Each phase owns its per_phase / per_phase_proc slots, so the spread
  // computation fans out over phases race-free.
  out.per_phase.assign(phases, 0);
  out.per_phase_proc.assign(phases, std::vector<trace::TimeNs>(procs, -1));
  util::parallel_for(threads, static_cast<std::int64_t>(phases),
                     [&](std::int64_t p) {
    const auto ph = static_cast<std::size_t>(p);
    trace::TimeNs lo = std::numeric_limits<trace::TimeNs>::max();
    trace::TimeNs hi = std::numeric_limits<trace::TimeNs>::min();
    for (std::size_t pr = 0; pr < procs; ++pr) {
      if (load[ph][pr] < 0) continue;  // proc absent from the phase
      lo = std::min(lo, load[ph][pr]);
      hi = std::max(hi, load[ph][pr]);
    }
    if (hi < lo) return;  // empty phase cannot occur, but be safe
    out.per_phase[ph] = hi - lo;
    for (std::size_t pr = 0; pr < procs; ++pr) {
      if (load[ph][pr] >= 0) out.per_phase_proc[ph][pr] = load[ph][pr] - lo;
    }
  });

  // Pure per-event read of the finished tables — index-owned writes.
  out.per_event.assign(static_cast<std::size_t>(trace.num_events()), 0);
  util::parallel_for(threads, trace.num_events(), [&](std::int64_t i) {
    const auto e = static_cast<trace::EventId>(i);
    auto ph = static_cast<std::size_t>(
        ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    auto pr = static_cast<std::size_t>(trace.event(e).proc);
    out.per_event[static_cast<std::size_t>(e)] =
        std::max<trace::TimeNs>(out.per_phase_proc[ph][pr], 0);
  });
  return out;
}

}  // namespace logstruct::metrics
