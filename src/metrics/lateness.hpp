#pragma once

/// \file lateness.hpp
/// Traditional lateness (Isaacs et al. [13]), for comparison.
///
/// Lateness is the difference in completion (physical) time among
/// operations at the same logical timestep. The paper argues it suits
/// bulk-synchronous programs but not task-based ones: with
/// non-deterministic scheduling there is no expectation that same-step
/// events execute simultaneously, so lateness flags healthy asynchrony as
/// a problem. It is provided to let users make that comparison on their
/// own traces (and to test the claim: see bench/fig12_idle and the
/// metrics tests).

#include <vector>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::metrics {

struct Lateness {
  /// time(e) - min{ time(e') : e' at the same global step }, per event.
  std::vector<trace::TimeNs> per_event;
  trace::TimeNs max_value = 0;
  trace::EventId max_event = trace::kNone;
  /// Mean over events with at least one same-step peer.
  double mean = 0;
  /// Blame view over the dependency table: each late receive's lateness
  /// attributed to the chare whose message gated it (the last-arriving
  /// sender among its matches / fan-out origin / collective sends).
  /// Index = ChareId; sums to the total lateness of gated receives.
  std::vector<trace::TimeNs> caused_by_chare;
  /// Phases quarantined by trace-level recovery (PhaseResult::degraded):
  /// values over those regions rest on repaired, not observed,
  /// dependencies. 0 for clean traces.
  std::int32_t degraded_phases = 0;
};

/// Lateness over global steps. `same_phase_only` restricts peers to the
/// event's own phase (the variant meaningful for task-based traces).
/// `threads` fans the per-event passes out over the shared pool (0 =
/// util::default_parallelism()); reductions run over a fixed chunk grid
/// that depends only on the trace size, so every thread count — serial
/// included — produces bit-identical output.
Lateness lateness(const trace::Trace& trace,
                  const order::LogicalStructure& ls,
                  bool same_phase_only = false, int threads = 0);

}  // namespace logstruct::metrics
