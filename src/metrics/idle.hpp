#pragma once

/// \file idle.hpp
/// Idle experienced (paper §4, Fig. 11).
///
/// Recorded scheduler idle indicates inefficiency; this metric charges an
/// idle span to the serial blocks that *experienced* it: the block that
/// begins right after the idle, plus each subsequent block on the same
/// processor whose triggering dependency started before the idle ended
/// (those blocks were runnable-in-principle but starved). The walk stops
/// at the first block that depends on an event from after the idle span.

#include <vector>

#include "trace/trace.hpp"

namespace logstruct::metrics {

struct IdleExperienced {
  /// Nanoseconds of idle experienced, per event (assigned to the first
  /// event of each affected block; 0 elsewhere).
  std::vector<trace::TimeNs> per_event;
  /// Same, aggregated per block.
  std::vector<trace::TimeNs> per_block;
};

IdleExperienced idle_experienced(const trace::Trace& trace);

}  // namespace logstruct::metrics
