#include "metrics/efficiency.hpp"

#include <algorithm>
#include <fstream>

#include "metrics/depview.hpp"
#include "metrics/subblock.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::metrics {

namespace {

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// Shared shape of the four kernels: map every window to a ratio, then
/// summarize over non-empty windows in fixed (window-id) order. The
/// per-window writes are index-owned, so the fan-out is race-free and
/// bit-identical for any thread count.
template <typename Fn>
void per_window_ratio(const WindowSet& windows, const WindowLoads& loads,
                      int threads, std::vector<double>& out,
                      EffSummary& summary, Fn&& ratio) {
  const std::int64_t n = windows.size();
  out.assign(static_cast<std::size_t>(n), 0.0);
  util::parallel_for(threads, n, [&](std::int64_t w) {
    const auto i = static_cast<std::size_t>(w);
    if (loads.events[i] == 0) return;  // empty window stays 0
    const trace::TimeNs span = windows.window(
        static_cast<std::int32_t>(w)).span();
    out[i] = span == 0 ? 1.0 : clamp01(ratio(i, span));
  });
  summary = EffSummary{};
  double sum = 0;
  std::int64_t counted = 0;
  for (std::int64_t w = 0; w < n; ++w) {
    const auto i = static_cast<std::size_t>(w);
    if (loads.events[i] == 0) continue;
    sum += out[i];
    ++counted;
    if (summary.min_window < 0 || out[i] < summary.min) {
      summary.min = out[i];
      summary.min_window = static_cast<std::int32_t>(w);
    }
  }
  summary.mean = counted ? sum / static_cast<double>(counted) : 0.0;
}

double busy_avg(const WindowLoads& loads, std::size_t w) {
  const std::int32_t procs = loads.procs_active[w];
  return procs ? static_cast<double>(loads.busy_sum[w]) /
                     static_cast<double>(procs)
               : 0.0;
}

}  // namespace

WindowLoads compute_window_loads(const trace::Trace& trace,
                                 const WindowSet& windows, int threads) {
  OBS_SPAN_ANON("metrics/window_loads");
  threads = util::resolve_threads(threads);
  const auto num_windows = static_cast<std::size_t>(windows.size());
  const auto num_procs = static_cast<std::size_t>(trace.num_procs());
  const auto num_events = static_cast<std::size_t>(trace.num_events());

  WindowLoads loads;
  loads.num_procs = trace.num_procs();
  loads.busy.assign(num_windows * num_procs, 0);
  loads.procs_active.assign(num_windows, 0);
  loads.events.assign(num_windows, 0);
  loads.messages.assign(num_windows, 0);
  loads.transfer_wait.assign(num_windows, 0);
  loads.busy_sum.assign(num_windows, 0);
  loads.busy_max.assign(num_windows, 0);
  loads.ideal_span.assign(num_windows, 0);

  const std::vector<trace::TimeNs> dur = subblock_durations(trace);

  // Rank of every event in per-processor execution order (blocks on a
  // proc run serially in begin-time order; events within a block in
  // physical order). The zero-latency replay keeps this serialization —
  // the POP ideal network removes transfer time, not processors — which
  // also guarantees ideal_span >= busy_max, so serialization <= 1 and
  // comm = serialization x transfer holds exactly.
  std::vector<std::int64_t> proc_rank(num_events, 0);
  for (std::int32_t p = 0; p < trace.num_procs(); ++p) {
    std::int64_t rank = 0;
    for (trace::BlockId b : trace.blocks_of_proc(p))
      for (trace::EventId e : trace.events_of_block(b))
        proc_rank[static_cast<std::size_t>(e)] = rank++;
  }

  IncomingDeps deps(trace);
  const auto dep_sends = trace.dep_sends();
  const auto dep_recvs = trace.dep_recvs();

  // Zero-latency replay scratch, shared across windows: every window
  // touches only its own events (windows partition the event set), so
  // the fan-out below stays index-owned.
  std::vector<trace::TimeNs> finish(num_events, 0);
  std::vector<std::uint8_t> state(num_events, 0);  // 0 new, 1 open, 2 done
  // Per-window predecessor in proc order, restricted to in-window
  // events (a phase's events interleave with other phases on a proc, so
  // the global proc chain cannot be reused directly).
  std::vector<trace::EventId> prev_in_window(num_events, trace::kNone);

  obs::Progress progress("metrics/window_loads",
                         static_cast<std::int64_t>(num_windows));
  util::parallel_for(
      threads, static_cast<std::int64_t>(num_windows),
      [&](std::int64_t wi) {
        const auto w = static_cast<std::int32_t>(wi);
        const auto wz = static_cast<std::size_t>(wi);
        const auto events = windows.events_of(w);
        loads.events[wz] = static_cast<std::int32_t>(events.size());

        // Per-proc busy time, accumulated in ascending event id order.
        trace::TimeNs* busy = loads.busy.data() + wz * num_procs;
        for (trace::EventId e : events)
          busy[static_cast<std::size_t>(trace.event(e).proc)] +=
              dur[static_cast<std::size_t>(e)];
        std::vector<std::uint8_t> touched(num_procs, 0);
        for (trace::EventId e : events)
          touched[static_cast<std::size_t>(trace.event(e).proc)] = 1;
        for (std::size_t p = 0; p < num_procs; ++p) {
          if (!touched[p]) continue;
          ++loads.procs_active[wz];
          loads.busy_sum[wz] += busy[p];
          loads.busy_max[wz] = std::max(loads.busy_max[wz], busy[p]);
        }

        // Message rows landing in this window, ascending row index.
        const auto rows = windows.deps_of(w);
        loads.messages[wz] = static_cast<std::int64_t>(rows.size());
        for (std::int64_t r : rows) {
          const trace::TimeNs latency =
              trace.event(dep_recvs[static_cast<std::size_t>(r)]).time -
              trace.event(dep_sends[static_cast<std::size_t>(r)]).time;
          loads.transfer_wait[wz] += std::max<trace::TimeNs>(0, latency);
        }

        // Chain this window's events per proc in execution order.
        std::vector<trace::EventId> order(events.begin(), events.end());
        std::sort(order.begin(), order.end(),
                  [&](trace::EventId a, trace::EventId b) {
                    const trace::ProcId pa = trace.event(a).proc;
                    const trace::ProcId pb = trace.event(b).proc;
                    if (pa != pb) return pa < pb;
                    return proc_rank[static_cast<std::size_t>(a)] <
                           proc_rank[static_cast<std::size_t>(b)];
                  });
        for (std::size_t i = 0; i < order.size(); ++i) {
          const bool same_proc =
              i > 0 && trace.event(order[i - 1]).proc ==
                           trace.event(order[i]).proc;
          prev_in_window[static_cast<std::size_t>(order[i])] =
              same_proc ? order[i - 1] : trace::kNone;
        }

        // Zero-latency replay: longest chain of sub-block compute over
        // per-proc serialization order and in-window dependencies.
        // Iterative DFS with memoized finish times; a cycle (impossible
        // in a valid trace, tolerated defensively) contributes 0.
        auto for_each_pred = [&](trace::EventId v, auto&& fn) {
          const trace::EventId prev =
              prev_in_window[static_cast<std::size_t>(v)];
          if (prev != trace::kNone) fn(prev);
          for (trace::EventId s : deps.senders(v))
            if (windows.window_of(s) == w) fn(s);
        };
        std::vector<trace::EventId> stack;
        for (trace::EventId e : events) {
          if (state[static_cast<std::size_t>(e)] == 2) continue;
          stack.push_back(e);
          while (!stack.empty()) {
            const trace::EventId v = stack.back();
            const auto vz = static_cast<std::size_t>(v);
            if (state[vz] == 2) {
              stack.pop_back();
              continue;
            }
            if (state[vz] == 0) {
              state[vz] = 1;
              for_each_pred(v, [&](trace::EventId pred) {
                if (state[static_cast<std::size_t>(pred)] == 0)
                  stack.push_back(pred);
              });
              continue;
            }
            trace::TimeNs chain = 0;
            for_each_pred(v, [&](trace::EventId pred) {
              if (state[static_cast<std::size_t>(pred)] == 2)
                chain = std::max(chain,
                                 finish[static_cast<std::size_t>(pred)]);
            });
            finish[vz] = chain + dur[vz];
            state[vz] = 2;
            stack.pop_back();
          }
        }
        for (trace::EventId e : events)
          loads.ideal_span[wz] = std::max(
              loads.ideal_span[wz], finish[static_cast<std::size_t>(e)]);
        obs::Progress::tick();
      });

  OBS_COUNTER_ADD("metrics/efficiency/windows",
                  static_cast<std::int64_t>(num_windows));
  return loads;
}

ParallelEfficiency parallel_efficiency(const WindowSet& windows,
                                       const WindowLoads& loads,
                                       int threads) {
  OBS_SPAN_ANON("metrics/parallel_efficiency");
  ParallelEfficiency out;
  out.degraded_windows = windows.degraded_windows();
  per_window_ratio(windows, loads, threads, out.per_window, out.summary,
                   [&](std::size_t w, trace::TimeNs span) {
                     return busy_avg(loads, w) /
                            static_cast<double>(span);
                   });
  return out;
}

LoadBalance load_balance(const WindowSet& windows, const WindowLoads& loads,
                         int threads) {
  OBS_SPAN_ANON("metrics/load_balance");
  LoadBalance out;
  out.degraded_windows = windows.degraded_windows();
  per_window_ratio(windows, loads, threads, out.per_window, out.summary,
                   [&](std::size_t w, trace::TimeNs) {
                     return loads.busy_max[w] > 0
                                ? busy_avg(loads, w) /
                                      static_cast<double>(loads.busy_max[w])
                                : 1.0;
                   });
  return out;
}

CommunicationEfficiency communication_efficiency(const WindowSet& windows,
                                                 const WindowLoads& loads,
                                                 int threads) {
  OBS_SPAN_ANON("metrics/communication_efficiency");
  CommunicationEfficiency out;
  out.degraded_windows = windows.degraded_windows();
  per_window_ratio(windows, loads, threads, out.per_window, out.summary,
                   [&](std::size_t w, trace::TimeNs span) {
                     return static_cast<double>(loads.busy_max[w]) /
                            static_cast<double>(span);
                   });
  return out;
}

SerializationTransfer serialization_transfer(const WindowSet& windows,
                                             const WindowLoads& loads,
                                             int threads) {
  OBS_SPAN_ANON("metrics/serialization_transfer");
  SerializationTransfer out;
  out.degraded_windows = windows.degraded_windows();
  per_window_ratio(windows, loads, threads, out.serialization,
                   out.serialization_summary,
                   [&](std::size_t w, trace::TimeNs) {
                     return loads.ideal_span[w] > 0
                                ? static_cast<double>(loads.busy_max[w]) /
                                      static_cast<double>(
                                          loads.ideal_span[w])
                                : 1.0;
                   });
  per_window_ratio(windows, loads, threads, out.transfer,
                   out.transfer_summary,
                   [&](std::size_t w, trace::TimeNs span) {
                     return static_cast<double>(loads.ideal_span[w]) /
                            static_cast<double>(span);
                   });
  return out;
}

EfficiencySuite efficiency_suite(const trace::Trace& trace,
                                 const WindowSet& windows, int threads) {
  OBS_SPAN(sp, "metrics/efficiency_suite");
  EfficiencySuite suite;
  suite.kind = windows.kind();
  suite.bin_width_ns = windows.bin_width();
  suite.windows.assign(windows.windows().begin(), windows.windows().end());
  suite.degraded_windows = windows.degraded_windows();
  suite.loads = compute_window_loads(trace, windows, threads);
  suite.parallel = parallel_efficiency(windows, suite.loads, threads);
  suite.balance = load_balance(windows, suite.loads, threads);
  suite.communication =
      communication_efficiency(windows, suite.loads, threads);
  suite.sertrans = serialization_transfer(windows, suite.loads, threads);
  sp.attr("windows", windows.size());
  sp.attr("degraded_windows", suite.degraded_windows);
  return suite;
}

namespace {

void write_summary(obs::json::Writer& w, const char* name,
                   const EffSummary& s) {
  w.key(name);
  w.begin_object();
  w.key("min");
  w.value(s.min);
  w.key("mean");
  w.value(s.mean);
  w.key("min_window");
  w.value(s.min_window);
  w.end_object();
}

}  // namespace

std::string efficiency_report_json(const trace::Trace& trace,
                                   const std::string& program,
                                   std::span<const EfficiencySuite> suites) {
  obs::json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("logstruct-effmetrics/v1");
  w.key("program");
  w.value(program);
  w.key("trace");
  w.begin_object();
  w.key("events");
  w.value(trace.num_events());
  w.key("procs");
  w.value(trace.num_procs());
  w.key("end_ns");
  w.value(static_cast<std::int64_t>(trace.end_time()));
  w.key("degraded_chares");
  w.value(trace.num_degraded_chares());
  w.end_object();
  w.key("suites");
  w.begin_array();
  for (const EfficiencySuite& suite : suites) {
    w.begin_object();
    w.key("mode");
    w.value(suite.kind == WindowKind::TimeBin ? "time_bins" : "phases");
    if (suite.kind == WindowKind::TimeBin) {
      w.key("bin_width_ns");
      w.value(static_cast<std::int64_t>(suite.bin_width_ns));
    }
    w.key("num_windows");
    w.value(suite.num_windows());
    w.key("degraded_windows");
    w.value(suite.degraded_windows);
    w.key("summary");
    w.begin_object();
    write_summary(w, "parallel", suite.parallel.summary);
    write_summary(w, "load_balance", suite.balance.summary);
    write_summary(w, "communication", suite.communication.summary);
    write_summary(w, "serialization", suite.sertrans.serialization_summary);
    write_summary(w, "transfer", suite.sertrans.transfer_summary);
    w.end_object();
    w.key("windows");
    w.begin_array();
    for (std::int32_t i = 0; i < suite.num_windows(); ++i) {
      const auto iz = static_cast<std::size_t>(i);
      const Window& win = suite.windows[iz];
      w.begin_object();
      w.key("index");
      w.value(i);
      w.key("begin_ns");
      w.value(static_cast<std::int64_t>(win.begin));
      w.key("end_ns");
      w.value(static_cast<std::int64_t>(win.end));
      if (win.phase >= 0) {
        w.key("phase");
        w.value(win.phase);
      }
      w.key("degraded");
      w.value(win.degraded);
      w.key("events");
      w.value(suite.loads.events[iz]);
      w.key("procs");
      w.value(suite.loads.procs_active[iz]);
      w.key("messages");
      w.value(suite.loads.messages[iz]);
      w.key("busy_sum_ns");
      w.value(static_cast<std::int64_t>(suite.loads.busy_sum[iz]));
      w.key("busy_max_ns");
      w.value(static_cast<std::int64_t>(suite.loads.busy_max[iz]));
      w.key("ideal_span_ns");
      w.value(static_cast<std::int64_t>(suite.loads.ideal_span[iz]));
      w.key("transfer_wait_ns");
      w.value(static_cast<std::int64_t>(suite.loads.transfer_wait[iz]));
      w.key("parallel");
      w.value(suite.parallel.per_window[iz]);
      w.key("load_balance");
      w.value(suite.balance.per_window[iz]);
      w.key("communication");
      w.value(suite.communication.per_window[iz]);
      w.key("serialization");
      w.value(suite.sertrans.serialization[iz]);
      w.key("transfer");
      w.value(suite.sertrans.transfer[iz]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

bool write_efficiency_report(const util::Flags& flags,
                             const trace::Trace& trace,
                             const order::LogicalStructure& ls,
                             const std::string& program) {
  if (!flags.defined("eff-json")) return true;
  const std::string& path = flags.get_string("eff-json");
  if (path.empty()) return true;

  const WindowSet phase_windows = WindowSet::phases(trace, ls.phases);
  std::int64_t bins = flags.get_int("eff-bins");
  if (bins <= 0) bins = std::max<std::int64_t>(1, phase_windows.size());
  const WindowSet bin_windows =
      WindowSet::time_bins(trace, static_cast<std::int32_t>(bins));

  const EfficiencySuite suites[] = {
      efficiency_suite(trace, bin_windows),
      efficiency_suite(trace, phase_windows),
  };
  const std::string doc = efficiency_report_json(trace, program, suites);

  std::ofstream out(path, std::ios::binary);
  if (out) out << doc << '\n';
  if (!out || !out.good()) {
    obs::log(obs::Level::Error, "metrics",
             "cannot write efficiency report", {{"path", path}});
    return false;
  }
  obs::log(obs::Level::Info, "metrics", "wrote efficiency report",
           {{"path", path}});
  return true;
}

}  // namespace logstruct::metrics
