#include "metrics/concurrency.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "order/causality.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::metrics {

namespace {

/// Per-phase chare occupancy bitsets: commuting(p, q) needs "do p and q
/// touch disjoint chare sets", and a bitset intersection answers it in
/// O(chares / 64) words.
class PhaseChares {
 public:
  PhaseChares(const trace::Trace& trace, const order::LogicalStructure& ls) {
    num_phases_ = ls.phases.num_phases();
    words_ = (static_cast<std::size_t>(trace.num_chares()) + 63) / 64;
    bits_.assign(static_cast<std::size_t>(num_phases_) * words_, 0);
    const std::int32_t n = trace.num_events();
    for (std::int32_t e = 0; e < n; ++e) {
      const std::int32_t p =
          ls.phases.phase_of_event[static_cast<std::size_t>(e)];
      if (p < 0) continue;
      const trace::ChareId c = trace.event(e).chare;
      if (c < 0) continue;
      bits_[static_cast<std::size_t>(p) * words_ +
            static_cast<std::size_t>(c) / 64] |=
          std::uint64_t{1} << (c % 64);
    }
  }

  [[nodiscard]] bool disjoint(std::int32_t p, std::int32_t q) const {
    const std::uint64_t* a = bits_.data() +
                             static_cast<std::size_t>(p) * words_;
    const std::uint64_t* b = bits_.data() +
                             static_cast<std::size_t>(q) * words_;
    for (std::size_t w = 0; w < words_; ++w)
      if (a[w] & b[w]) return false;
    return true;
  }

 private:
  std::int32_t num_phases_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace

ConcurrencyReport concurrency_report(const trace::Trace& trace,
                                     const order::LogicalStructure& ls,
                                     const WindowSet& windows, int threads) {
  OBS_SPAN_ANON("metrics/concurrency_report");
  ConcurrencyReport out;
  out.kind = windows.kind();
  out.bin_width_ns = windows.bin_width();
  out.windows.assign(windows.windows().begin(), windows.windows().end());
  out.per_window.assign(static_cast<std::size_t>(windows.size()), {});
  out.degraded_windows = windows.degraded_windows();
  out.num_phases = ls.phases.num_phases();

  const order::PhaseReachability reach(ls.phases.dag);
  const PhaseChares chares(trace, ls);

  // Whole-trace census in fixed (p, q) order — deterministic reduction.
  const std::int32_t np = out.num_phases;
  out.phase_pairs_total =
      static_cast<std::int64_t>(np) * (np - 1) / 2;
  for (std::int32_t p = 0; p < np; ++p) {
    for (std::int32_t q = p + 1; q < np; ++q) {
      if (!reach.concurrent(p, q)) continue;
      ++out.phase_pairs_unordered;
      if (chares.disjoint(p, q)) ++out.phase_pairs_commuting;
    }
  }

  // Per-window: each index owned by exactly one worker, so the parallel
  // fan-out is race-free and bit-identical for any thread count.
  const auto phase_of_event =
      std::span<const std::int32_t>(ls.phases.phase_of_event);
  util::parallel_for(
      threads, windows.size(), [&](std::int64_t wi) {
        const auto w = static_cast<std::int32_t>(wi);
        WindowConcurrency& wc =
            out.per_window[static_cast<std::size_t>(wi)];
        if (windows.kind() == WindowKind::Phase) {
          // One phase per window: report its concurrency degree.
          const std::int32_t p = windows.window(w).phase;
          wc.phases_active = 1;
          if (p < 0) return;
          for (std::int32_t q = 0; q < np; ++q) {
            if (!reach.concurrent(p, q)) continue;
            ++wc.unordered_pairs;
            if (chares.disjoint(p, q)) ++wc.commuting_pairs;
          }
          return;
        }
        // Time bin: census over the distinct phases active in the bin.
        std::vector<std::int32_t> active;
        for (const trace::EventId e : windows.events_of(w)) {
          const std::int32_t p = phase_of_event[static_cast<std::size_t>(e)];
          if (p >= 0) active.push_back(p);
        }
        std::sort(active.begin(), active.end());
        active.erase(std::unique(active.begin(), active.end()),
                     active.end());
        wc.phases_active = static_cast<std::int32_t>(active.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
          for (std::size_t j = i + 1; j < active.size(); ++j) {
            if (!reach.concurrent(active[i], active[j])) continue;
            ++wc.unordered_pairs;
            if (chares.disjoint(active[i], active[j]))
              ++wc.commuting_pairs;
          }
        }
      });

  obs::Registry& reg = obs::Registry::global();
  reg.counter("metrics/concurrency/windows").add(windows.size());
  reg.counter("metrics/concurrency/unordered_pairs")
      .add(out.phase_pairs_unordered);
  reg.counter("metrics/concurrency/commuting_pairs")
      .add(out.phase_pairs_commuting);
  return out;
}

std::string concurrency_report_json(
    const trace::Trace& trace, const std::string& program,
    std::span<const ConcurrencyReport> reports) {
  obs::json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("logstruct-concurrency/v1");
  w.key("program");
  w.value(program);
  w.key("trace");
  w.begin_object();
  w.key("events");
  w.value(trace.num_events());
  w.key("procs");
  w.value(trace.num_procs());
  w.key("end_ns");
  w.value(static_cast<std::int64_t>(trace.end_time()));
  w.key("degraded_chares");
  w.value(trace.num_degraded_chares());
  w.end_object();
  if (!reports.empty()) {
    // The census is window-slicing independent; emit it once.
    const ConcurrencyReport& first = reports.front();
    w.key("phases");
    w.begin_object();
    w.key("count");
    w.value(first.num_phases);
    w.key("pairs_total");
    w.value(first.phase_pairs_total);
    w.key("pairs_unordered");
    w.value(first.phase_pairs_unordered);
    w.key("pairs_commuting");
    w.value(first.phase_pairs_commuting);
    w.end_object();
  }
  w.key("suites");
  w.begin_array();
  for (const ConcurrencyReport& rep : reports) {
    w.begin_object();
    w.key("mode");
    w.value(rep.kind == WindowKind::TimeBin ? "time_bins" : "phases");
    if (rep.kind == WindowKind::TimeBin) {
      w.key("bin_width_ns");
      w.value(static_cast<std::int64_t>(rep.bin_width_ns));
    }
    w.key("num_windows");
    w.value(rep.num_windows());
    w.key("degraded_windows");
    w.value(rep.degraded_windows);
    w.key("windows");
    w.begin_array();
    for (std::int32_t i = 0; i < rep.num_windows(); ++i) {
      const auto iz = static_cast<std::size_t>(i);
      const Window& win = rep.windows[iz];
      const WindowConcurrency& wc = rep.per_window[iz];
      w.begin_object();
      w.key("index");
      w.value(i);
      w.key("begin_ns");
      w.value(static_cast<std::int64_t>(win.begin));
      w.key("end_ns");
      w.value(static_cast<std::int64_t>(win.end));
      if (win.phase >= 0) {
        w.key("phase");
        w.value(win.phase);
      }
      w.key("degraded");
      w.value(win.degraded);
      w.key("phases_active");
      w.value(wc.phases_active);
      w.key("unordered_pairs");
      w.value(wc.unordered_pairs);
      w.key("commuting_pairs");
      w.value(wc.commuting_pairs);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

bool write_concurrency_report(const util::Flags& flags,
                              const trace::Trace& trace,
                              const order::LogicalStructure& ls,
                              const std::string& program) {
  if (!flags.defined("concurrency-json")) return true;
  const std::string& path = flags.get_string("concurrency-json");
  if (path.empty()) return true;

  const WindowSet phase_windows = WindowSet::phases(trace, ls.phases);
  std::int64_t bins = flags.get_int("concurrency-bins");
  if (bins <= 0) bins = std::max<std::int64_t>(1, phase_windows.size());
  const WindowSet bin_windows =
      WindowSet::time_bins(trace, static_cast<std::int32_t>(bins));

  const ConcurrencyReport reports[] = {
      concurrency_report(trace, ls, bin_windows),
      concurrency_report(trace, ls, phase_windows),
  };
  const std::string doc = concurrency_report_json(trace, program, reports);

  std::ofstream out(path, std::ios::binary);
  if (out) out << doc << '\n';
  if (!out || !out.good()) {
    obs::log(obs::Level::Error, "metrics",
             "cannot write concurrency report", {{"path", path}});
    return false;
  }
  obs::log(obs::Level::Info, "metrics", "wrote concurrency report",
           {{"path", path}});
  return true;
}

}  // namespace logstruct::metrics
