#pragma once

/// \file scc.hpp
/// Strongly connected components (iterative Tarjan).
///
/// The paper's "cycle merge" collapses every SCC of the partition graph into
/// one partition so that each pipeline pass starts and ends with a DAG.

#include <vector>

#include "graph/digraph.hpp"

namespace logstruct::graph {

struct SccResult {
  /// Component id per node; components are numbered in reverse topological
  /// order of the condensation (i.e., component of an edge's head is <= the
  /// tail's... specifically Tarjan emits sinks first).
  std::vector<std::int32_t> component;
  std::int32_t num_components = 0;
};

/// Compute SCCs. Safe for large graphs (explicit stack, no recursion).
SccResult strongly_connected_components(const Digraph& g);

/// True iff the graph has no directed cycle (every SCC is a single node).
bool is_dag(const Digraph& g);

}  // namespace logstruct::graph
