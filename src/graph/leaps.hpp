#pragma once

/// \file leaps.hpp
/// Leap computation for the phase DAG.
///
/// The paper (§3.1.4) defines a *leap* as the set of partitions at the same
/// maximum distance from the beginning of the partition graph. Leap k of a
/// node = length of the longest path from any source to it.

#include <vector>

#include "graph/digraph.hpp"

namespace logstruct::graph {

/// Longest distance from any source node (sources get leap 0). Requires a
/// DAG (checked).
std::vector<std::int32_t> compute_leaps(const Digraph& g);

/// Group node ids by leap: result[k] = nodes whose leap is k, ascending.
std::vector<std::vector<NodeId>> group_by_leap(
    const std::vector<std::int32_t>& leaps);

}  // namespace logstruct::graph
