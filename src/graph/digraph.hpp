#pragma once

/// \file digraph.hpp
/// Compact directed graph used for the partition graph and phase DAG.
///
/// Nodes are dense integer ids [0, n). Edges are kept as per-node sorted,
/// deduplicated successor/predecessor vectors; the partition pipeline
/// rebuilds graphs wholesale after each merge pass, so the representation
/// optimizes for bulk construction + traversal rather than incremental
/// deletion.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace logstruct::graph {

using NodeId = std::int32_t;

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(NodeId num_nodes) { reset(num_nodes); }

  void reset(NodeId num_nodes);

  /// Add edge u->v. Self-loops are ignored. Duplicates are removed by
  /// finalize(); callers may add freely.
  void add_edge(NodeId u, NodeId v);

  /// Sort and deduplicate adjacency; must be called after the last add_edge
  /// and before queries that rely on sorted adjacency.
  void finalize();

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(succ_.size());
  }
  [[nodiscard]] std::size_t num_edges() const;

  [[nodiscard]] std::span<const NodeId> successors(NodeId u) const {
    return succ_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] std::span<const NodeId> predecessors(NodeId u) const {
    return pred_[static_cast<std::size_t>(u)];
  }

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// All edges as (u, v) pairs; mainly for tests and rebuilds.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
};

}  // namespace logstruct::graph
