#include "graph/digraph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace logstruct::graph {

void Digraph::reset(NodeId num_nodes) {
  LS_CHECK(num_nodes >= 0);
  succ_.assign(static_cast<std::size_t>(num_nodes), {});
  pred_.assign(static_cast<std::size_t>(num_nodes), {});
}

void Digraph::add_edge(NodeId u, NodeId v) {
  LS_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  if (u == v) return;
  succ_[static_cast<std::size_t>(u)].push_back(v);
  pred_[static_cast<std::size_t>(v)].push_back(u);
}

void Digraph::finalize() {
  auto dedup = [](std::vector<NodeId>& adj) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  };
  for (auto& adj : succ_) dedup(adj);
  for (auto& adj : pred_) dedup(adj);
}

std::size_t Digraph::num_edges() const {
  std::size_t count = 0;
  for (const auto& adj : succ_) count += adj.size();
  return count;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  const auto& adj = succ_[static_cast<std::size_t>(u)];
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Digraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : successors(u)) out.emplace_back(u, v);
  }
  return out;
}

}  // namespace logstruct::graph
