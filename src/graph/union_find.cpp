#include "graph/union_find.hpp"

#include <numeric>

#include "util/check.hpp"

namespace logstruct::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

std::int32_t UnionFind::find(std::int32_t x) {
  LS_CHECK(x >= 0 && static_cast<std::size_t>(x) < parent_.size());
  std::int32_t root = x;
  while (parent_[static_cast<std::size_t>(root)] != root)
    root = parent_[static_cast<std::size_t>(root)];
  while (parent_[static_cast<std::size_t>(x)] != root) {
    std::int32_t next = parent_[static_cast<std::size_t>(x)];
    parent_[static_cast<std::size_t>(x)] = root;
    x = next;
  }
  return root;
}

std::int32_t UnionFind::unite(std::int32_t a, std::int32_t b) {
  std::int32_t ra = find(a);
  std::int32_t rb = find(b);
  if (ra == rb) return ra;
  if (size_[static_cast<std::size_t>(ra)] < size_[static_cast<std::size_t>(rb)])
    std::swap(ra, rb);
  parent_[static_cast<std::size_t>(rb)] = ra;
  size_[static_cast<std::size_t>(ra)] += size_[static_cast<std::size_t>(rb)];
  --num_sets_;
  return ra;
}

std::vector<std::int32_t> UnionFind::dense_labels() {
  std::vector<std::int32_t> label(parent_.size(), -1);
  std::int32_t next = 0;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    std::int32_t root = find(static_cast<std::int32_t>(i));
    if (label[static_cast<std::size_t>(root)] < 0)
      label[static_cast<std::size_t>(root)] = next++;
    label[i] = label[static_cast<std::size_t>(root)];
  }
  return label;
}

}  // namespace logstruct::graph
