#pragma once

/// \file union_find.hpp
/// Disjoint-set forest with path compression + union by size.
///
/// Used to apply a batch of scheduled partition merges (Algorithms 1-4 of
/// the paper all produce "schedule_merge(p, q)" pairs that are applied
/// together).

#include <cstdint>
#include <vector>

namespace logstruct::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set.
  std::int32_t find(std::int32_t x);

  /// Merge the sets of a and b; returns the surviving representative.
  std::int32_t unite(std::int32_t a, std::int32_t b);

  [[nodiscard]] std::size_t size() const { return parent_.size(); }

  /// Number of distinct sets.
  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }

  /// Relabel representatives to dense ids [0, num_sets); returns the map
  /// original-id -> dense set id.
  std::vector<std::int32_t> dense_labels();

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> size_;
  std::size_t num_sets_;
};

}  // namespace logstruct::graph
