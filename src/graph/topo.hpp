#pragma once

/// \file topo.hpp
/// Topological ordering (Kahn's algorithm) over a DAG.

#include <vector>

#include "graph/digraph.hpp"

namespace logstruct::graph {

/// Topological order of g. LS_CHECK-fails if g has a cycle — callers must
/// cycle-merge first, which is exactly the paper's invariant.
std::vector<NodeId> topological_order(const Digraph& g);

}  // namespace logstruct::graph
