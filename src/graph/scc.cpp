#include "graph/scc.hpp"

#include <algorithm>

namespace logstruct::graph {

SccResult strongly_connected_components(const Digraph& g) {
  const NodeId n = g.num_nodes();
  SccResult result;
  result.component.assign(static_cast<std::size_t>(n), -1);

  std::vector<std::int32_t> index(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<NodeId> stack;
  std::int32_t next_index = 0;

  // Explicit DFS frame: node + position within its successor list.
  struct Frame {
    NodeId node;
    std::size_t child;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    dfs.push_back({root, 0});
    index[static_cast<std::size_t>(root)] = next_index;
    lowlink[static_cast<std::size_t>(root)] = next_index;
    ++next_index;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      auto succ = g.successors(frame.node);
      if (frame.child < succ.size()) {
        NodeId w = succ[frame.child++];
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] = next_index;
          lowlink[static_cast<std::size_t>(w)] = next_index;
          ++next_index;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(frame.node)] =
              std::min(lowlink[static_cast<std::size_t>(frame.node)],
                       index[static_cast<std::size_t>(w)]);
        }
      } else {
        NodeId v = frame.node;
        dfs.pop_back();
        if (!dfs.empty()) {
          NodeId parent = dfs.back().node;
          lowlink[static_cast<std::size_t>(parent)] =
              std::min(lowlink[static_cast<std::size_t>(parent)],
                       lowlink[static_cast<std::size_t>(v)]);
        }
        if (lowlink[static_cast<std::size_t>(v)] ==
            index[static_cast<std::size_t>(v)]) {
          // v is the root of an SCC; pop it off the component stack.
          while (true) {
            NodeId w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            result.component[static_cast<std::size_t>(w)] =
                result.num_components;
            if (w == v) break;
          }
          ++result.num_components;
        }
      }
    }
  }
  return result;
}

bool is_dag(const Digraph& g) {
  SccResult scc = strongly_connected_components(g);
  return scc.num_components == g.num_nodes();
}

}  // namespace logstruct::graph
