#include "graph/leaps.hpp"

#include <algorithm>

#include "graph/topo.hpp"

namespace logstruct::graph {

std::vector<std::int32_t> compute_leaps(const Digraph& g) {
  std::vector<NodeId> order = topological_order(g);
  std::vector<std::int32_t> leap(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId u : order) {
    for (NodeId v : g.successors(u)) {
      leap[static_cast<std::size_t>(v)] =
          std::max(leap[static_cast<std::size_t>(v)],
                   leap[static_cast<std::size_t>(u)] + 1);
    }
  }
  return leap;
}

std::vector<std::vector<NodeId>> group_by_leap(
    const std::vector<std::int32_t>& leaps) {
  std::int32_t max_leap = -1;
  for (std::int32_t l : leaps) max_leap = std::max(max_leap, l);
  std::vector<std::vector<NodeId>> groups(
      static_cast<std::size_t>(max_leap + 1));
  for (std::size_t i = 0; i < leaps.size(); ++i)
    groups[static_cast<std::size_t>(leaps[i])].push_back(
        static_cast<NodeId>(i));
  return groups;
}

}  // namespace logstruct::graph
