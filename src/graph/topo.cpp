#include "graph/topo.hpp"

#include "util/check.hpp"

namespace logstruct::graph {

std::vector<NodeId> topological_order(const Digraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::int32_t> indegree(static_cast<std::size_t>(n), 0);
  for (NodeId u = 0; u < n; ++u)
    indegree[static_cast<std::size_t>(u)] =
        static_cast<std::int32_t>(g.predecessors(u).size());

  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<NodeId> frontier;
  for (NodeId u = 0; u < n; ++u)
    if (indegree[static_cast<std::size_t>(u)] == 0) frontier.push_back(u);

  std::size_t head = 0;
  while (head < frontier.size()) {
    NodeId u = frontier[head++];
    order.push_back(u);
    for (NodeId v : g.successors(u)) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) frontier.push_back(v);
    }
  }
  LS_CHECK_MSG(static_cast<NodeId>(order.size()) == n,
               "topological_order called on a cyclic graph");
  return order;
}

}  // namespace logstruct::graph
