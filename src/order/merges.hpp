#pragma once

/// \file merges.hpp
/// Phase-finding merge passes (paper §3.1.2 - §3.1.3).
///
/// Every pass follows the paper's discipline: schedule merges, apply them,
/// then cycle-merge so the partition graph is a DAG again. Application and
/// runtime partitions are only ever combined by cycle merges.
///
/// The OrderContext overloads are the pipeline's pass bodies: they pull
/// serial-block units and scratch buffers from the shared context. The
/// PartitionGraph overloads are standalone wrappers (tests, external
/// callers) that build a throwaway context.

#include "order/options.hpp"
#include "order/partition_graph.hpp"

namespace logstruct::order {

class OrderContext;

/// Algorithm 1: merge the partitions holding matching ends of each remote
/// method invocation (same-kind pairs only), then cycle-merge.
void dependency_merge(OrderContext& ctx);
void dependency_merge(PartitionGraph& pg);

/// Algorithm 2: restore merges broken by the application/runtime split —
/// same-kind neighbors within one (absorbed) serial block, then
/// cycle-merge.
void repair_merge(OrderContext& ctx);
void repair_merge(PartitionGraph& pg, const PartitionOptions& opts);

/// §3.1.3, second rule: when the chares of one multi-chare partition all
/// continue into serial n+1 but land in several partitions, merge those
/// successors (same-kind only), then cycle-merge.
void neighbor_serial_merge(OrderContext& ctx);
void neighbor_serial_merge(PartitionGraph& pg, const PartitionOptions& opts);

}  // namespace logstruct::order
