#pragma once

/// \file partition_graph.hpp
/// The partition graph G_P(V, E) the phase-finding stage operates on.
///
/// Vertices are partitions (sets of dependency events); directed edges are
/// happened-before relations. All of the paper's merge passes reduce to:
/// schedule a batch of pair merges, apply them (batched union-find, applied
/// in place), and collapse any strongly connected components ("cycle
/// merge") so the graph is a DAG again.
///
/// Merges are incremental: only the event/chare lists of partitions that
/// actually merged are touched (sorted-run merges, no global re-sort), the
/// edge list is kept as a flat vector that is remapped in place, and the
/// adjacency structure (dag()) is rebuilt lazily — deferred edge
/// compaction — only when a query needs it after a mutation dirtied it.
/// Partition ids keep the exact historical relabeling semantics
/// (union-find dense labels for pair merges, Tarjan component order for
/// cycle merges), so downstream tie-breaks are bit-identical to the old
/// full-rebuild implementation.
///
/// Thread-safety: concurrent const queries are safe, including dag() —
/// its lazy materialization is guarded by a double-checked atomic flag
/// and mutex, so any number of readers may race the first rebuild.
/// Mutations (apply_merges, cycle_merge, add_edges_bulk) still require
/// exclusive access, like a standard container.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "trace/trace.hpp"

namespace logstruct::order {

using PartId = std::int32_t;

class PartitionGraph {
 public:
  explicit PartitionGraph(const trace::Trace& trace);

  /// Construction: add a partition owning `events` (must be time-sorted).
  PartId add_partition(std::vector<trace::EventId> events, bool runtime);

  /// Construction: record a happened-before edge (self-edges ignored).
  void add_edge(PartId from, PartId to);

  /// Must be called after the last add_partition/add_edge and before any
  /// query or merge.
  void finalize();

  // --- queries ------------------------------------------------------------
  [[nodiscard]] std::int32_t num_partitions() const {
    return static_cast<std::int32_t>(events_.size());
  }
  [[nodiscard]] std::span<const trace::EventId> events(PartId p) const {
    return events_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] bool runtime(PartId p) const {
    return runtime_[static_cast<std::size_t>(p)];
  }
  /// Sorted unique chares with events in p.
  [[nodiscard]] std::span<const trace::ChareId> chares(PartId p) const {
    return chares_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] PartId part_of(trace::EventId e) const {
    return part_of_[static_cast<std::size_t>(e)];
  }
  /// Deduplicated adjacency over the current partitions. Rebuilt lazily
  /// after mutations; cheap to call repeatedly between them. Safe to
  /// call from concurrent readers: the first caller materializes under
  /// a lock, the rest see the published result.
  [[nodiscard]] const graph::Digraph& dag() const {
    ensure_dag();
    return dag_;
  }
  [[nodiscard]] const trace::Trace& trace() const { return *trace_; }

  /// First event of chare c inside partition p (kNone if c has none).
  /// "Initial source" queries of §3.1.4 build on this.
  [[nodiscard]] trace::EventId first_event_of_chare(PartId p,
                                                    trace::ChareId c) const;

  // --- mutation -----------------------------------------------------------
  /// Apply a batch of scheduled merges; invalidates partition ids.
  /// Returns true if anything merged.
  bool apply_merges(std::span<const std::pair<PartId, PartId>> pairs);

  /// Merge every SCC into a single partition. Returns true if anything
  /// merged. Afterwards dag() is acyclic.
  bool cycle_merge();

  /// Add happened-before edges after construction (deduplicated lazily).
  void add_edges_bulk(std::span<const std::pair<PartId, PartId>> edges);

  /// Total merges applied so far (for pipeline statistics).
  [[nodiscard]] std::int64_t merges_applied() const { return merges_; }

  /// Heap bytes reserved by the flat edge vector (capacity, not size):
  /// the deferred-compaction design means capacity is the honest cost.
  /// Feeds the `order/partition_graph/edge_capacity_bytes` gauge.
  [[nodiscard]] std::int64_t edge_capacity_bytes() const {
    return static_cast<std::int64_t>(edges_.capacity() *
                                     sizeof(std::pair<PartId, PartId>));
  }

  /// Approximate total container footprint (events, chares, part_of,
  /// edges; capacities). Feeds `order/partition_graph/footprint_bytes`.
  [[nodiscard]] std::int64_t memory_bytes() const;

  /// Structural version counter: bumped by every mutation that can change
  /// partition ids, membership, or reachability. Caches of derived values
  /// (leaps, condensations, leap groups) key on this to know when to
  /// recompute. 0 only before finalize().
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  /// Collapse partitions in place: partition p becomes label[p]. Labels
  /// must be dense [0, num_new) and order-preserving per the caller's
  /// merge semantics. Touches only merged groups' event/chare lists.
  void relabel(const std::vector<std::int32_t>& label, std::int32_t num_new);
  void ensure_dag() const;

  const trace::Trace* trace_;
  std::vector<std::vector<trace::EventId>> events_;
  std::vector<bool> runtime_;
  std::vector<std::vector<trace::ChareId>> chares_;
  std::vector<PartId> part_of_;
  /// Guard for the lazy dag_ rebuild: double-checked atomic dirty flag
  /// plus the mutex the winning reader materializes under. Copyable so
  /// PartitionGraph keeps value semantics — a copy takes the flag value
  /// and a fresh mutex.
  struct DagGuard {
    std::atomic<bool> dirty{true};
    std::mutex mu;
    DagGuard() = default;
    DagGuard(const DagGuard& o) : dirty(o.dirty.load()) {}
    DagGuard& operator=(const DagGuard& o) {
      dirty.store(o.dirty.load());
      return *this;
    }
  };

  // Flat happened-before edge list (may contain duplicates between
  // compactions); dag_ is materialized from it on demand.
  mutable std::vector<std::pair<PartId, PartId>> edges_;
  mutable graph::Digraph dag_;
  mutable DagGuard dag_guard_;
  bool finalized_ = false;
  std::int64_t merges_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace logstruct::order
