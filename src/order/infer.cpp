#include "order/infer.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "graph/leaps.hpp"
#include "order/context.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::order {

namespace {

/// (time, partition) of every partition-initial source event of a chare:
/// the chare's first event inside the partition, when that event is a
/// send.
struct ChareSource {
  trace::TimeNs time;
  PartId part;
};

std::vector<std::vector<ChareSource>> collect_initial_sources(
    const PartitionGraph& pg, int threads) {
  const trace::Trace& trace = pg.trace();
  // Per-partition scans are independent (index-owned output slots); the
  // scatter into per-chare lists stays serial, and the (time, part) sort
  // is a total order — at most one source per (partition, chare) — so
  // the result is deterministic for any thread count.
  std::vector<std::vector<std::pair<trace::ChareId, ChareSource>>>
      per_part(static_cast<std::size_t>(pg.num_partitions()));
  util::parallel_for(threads, pg.num_partitions(), [&](std::int64_t pi) {
    const auto p = static_cast<PartId>(pi);
    std::unordered_set<std::int64_t> seen;  // chares already seen in p
    for (trace::EventId e : pg.events(p)) {
      const trace::Event& ev = trace.event(e);
      std::int64_t key = static_cast<std::int64_t>(ev.chare);
      if (!seen.insert(key).second) continue;  // not the chare's first
      if (ev.kind == trace::EventKind::Send)
        per_part[static_cast<std::size_t>(pi)].emplace_back(
            ev.chare, ChareSource{ev.time, p});
    }
  });
  std::vector<std::vector<ChareSource>> per_chare(
      static_cast<std::size_t>(trace.num_chares()));
  for (const auto& list : per_part) {
    for (const auto& [c, src] : list)
      per_chare[static_cast<std::size_t>(c)].push_back(src);
  }
  util::parallel_for(
      threads, static_cast<std::int64_t>(per_chare.size()),
      [&](std::int64_t c) {
        auto& list = per_chare[static_cast<std::size_t>(c)];
        std::sort(list.begin(), list.end(),
                  [](const ChareSource& a, const ChareSource& b) {
                    if (a.time != b.time) return a.time < b.time;
                    return a.part < b.part;
                  });
      });
  return per_chare;
}

/// Earliest initial-source time of partition p restricted to chares in
/// `filter` (all chares when filter is empty). Returns max() if none.
trace::TimeNs earliest_initial_source(
    const PartitionGraph& pg, PartId p,
    const std::vector<trace::ChareId>& filter) {
  const trace::Trace& trace = pg.trace();
  trace::TimeNs best = std::numeric_limits<trace::TimeNs>::max();
  for (trace::ChareId c : filter.empty()
                              ? std::vector<trace::ChareId>(
                                    pg.chares(p).begin(), pg.chares(p).end())
                              : filter) {
    trace::EventId e = pg.first_event_of_chare(p, c);
    if (e == trace::kNone) continue;
    if (trace.event(e).kind != trace::EventKind::Send) continue;
    best = std::min(best, trace.event(e).time);
  }
  return best;
}

/// Earliest event time of p on any processor in `procs`.
trace::TimeNs earliest_event_on_procs(
    const PartitionGraph& pg, PartId p,
    const std::vector<trace::ProcId>& procs) {
  const trace::Trace& trace = pg.trace();
  for (trace::EventId e : pg.events(p)) {  // events are time-sorted
    if (std::find(procs.begin(), procs.end(), trace.event(e).proc) !=
        procs.end())
      return trace.event(e).time;
  }
  return std::numeric_limits<trace::TimeNs>::max();
}

std::vector<trace::ProcId> procs_of(const PartitionGraph& pg, PartId p) {
  std::vector<trace::ProcId> out;
  for (trace::EventId e : pg.events(p)) out.push_back(pg.trace().event(e).proc);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Decide the inferred order between two same-leap partitions sharing a
/// chare: by initial sources on shared chares, else per-processor
/// (§3.1.4), else earliest event, else id. Returns (earlier, later).
std::pair<PartId, PartId> order_pair(const PartitionGraph& pg, PartId p,
                                     PartId q) {
  // Shared chares.
  std::vector<trace::ChareId> shared;
  std::set_intersection(pg.chares(p).begin(), pg.chares(p).end(),
                        pg.chares(q).begin(), pg.chares(q).end(),
                        std::back_inserter(shared));
  constexpr trace::TimeNs kInf = std::numeric_limits<trace::TimeNs>::max();
  trace::TimeNs tp = earliest_initial_source(pg, p, shared);
  trace::TimeNs tq = earliest_initial_source(pg, q, shared);
  if (tp == kInf || tq == kInf) {
    // No initial sources on shared chares: the more liberal per-processor
    // comparison.
    std::vector<trace::ProcId> pp = procs_of(pg, p);
    std::vector<trace::ProcId> qq = procs_of(pg, q);
    std::vector<trace::ProcId> both;
    std::set_intersection(pp.begin(), pp.end(), qq.begin(), qq.end(),
                          std::back_inserter(both));
    if (!both.empty()) {
      tp = earliest_event_on_procs(pg, p, both);
      tq = earliest_event_on_procs(pg, q, both);
    }
  }
  if (tp == kInf || tq == kInf || tp == tq) {
    // Final fallback: first event anywhere, then id.
    tp = pg.trace().event(pg.events(p).front()).time;
    tq = pg.trace().event(pg.events(q).front()).time;
  }
  if (tp < tq) return {p, q};
  if (tq < tp) return {q, p};
  return p < q ? std::pair{p, q} : std::pair{q, p};
}

bool leap_property_holds(
    const PartitionGraph& pg,
    const std::vector<std::vector<graph::NodeId>>& groups) {
  for (const auto& group : groups) {
    std::unordered_set<trace::ChareId> seen;
    for (PartId p : group) {
      for (trace::ChareId c : pg.chares(p)) {
        if (!seen.insert(c).second) return false;
      }
    }
  }
  return true;
}

}  // namespace

void infer_source_order(OrderContext& ctx) {
  PartitionGraph& pg = ctx.pg();
  auto per_chare =
      collect_initial_sources(pg, ctx.options().effective_threads());
  auto& edges = ctx.scratch_edges();
  for (const auto& list : per_chare) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i - 1].part != list[i].part)
        edges.emplace_back(list[i - 1].part, list[i].part);
    }
  }
  pg.add_edges_bulk(edges);
  pg.cycle_merge();
}

void infer_source_order(PartitionGraph& pg) {
  OrderContext ctx(pg.trace(), Options{});
  ctx.attach_pg(pg);
  infer_source_order(ctx);
}

void enforce_leap_property(OrderContext& ctx) {
  PartitionGraph& pg = ctx.pg();
  const PartitionOptions& opts = ctx.options().partition;
  // Each round sweeps EVERY leap (like the paper's Algorithm 4, which
  // computes all_leaps once per pass), batching the scheduled merges and
  // inferred order edges, then applies them together and re-derives the
  // leaps. Merges shrink the graph and order edges permanently separate a
  // pair, so the loop terminates; the cap is a safety net for logic
  // errors. Edges are only added between same-leap pairs, which cannot
  // close a cycle among themselves (a cycle would need a path between two
  // leaps in both directions); cycles through merged partitions are
  // handled by the cycle merge after applying. The leap groups come from
  // the context cache: recomputed only when the previous round actually
  // mutated the graph (epoch moved), and still warm for the downstream
  // passes once the fixpoint is reached.
  const std::int64_t cap =
      16 + 4 * static_cast<std::int64_t>(pg.num_partitions());
  for (std::int64_t round = 0;; ++round) {
    LS_CHECK_MSG(round < cap, "leap-property fixpoint did not converge");
    const auto& groups = ctx.leap_groups();

    auto& merges = ctx.scratch_pairs();
    auto& edges = ctx.scratch_edges();
    std::unordered_map<trace::ChareId, PartId> owner;
    for (const auto& group : groups) {
      owner.clear();  // chare -> first partition of this leap that owns it
      for (PartId p : group) {
        for (trace::ChareId c : pg.chares(p)) {
          auto [it, inserted] = owner.try_emplace(c, p);
          if (inserted || it->second == p) continue;
          PartId q = it->second;
          if (pg.runtime(p) == pg.runtime(q) && opts.leap_merge) {
            merges.emplace_back(q, p);
          } else {
            edges.push_back(order_pair(pg, q, p));
          }
        }
      }
    }
    if (merges.empty() && edges.empty()) return;
    if (merges.empty() && !edges.empty()) {
      // Deduplicate (several shared chares can produce the same pair).
      std::sort(edges.begin(), edges.end());
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
      pg.add_edges_bulk(edges);
    }
    // With merges pending, partition ids are about to be invalidated;
    // edges recomputed next round against fresh leaps.
    if (!merges.empty()) pg.apply_merges(merges);
    pg.cycle_merge();
  }
}

void enforce_leap_property(PartitionGraph& pg,
                           const PartitionOptions& opts) {
  Options all;
  all.partition = opts;
  OrderContext ctx(pg.trace(), all);
  ctx.attach_pg(pg);
  enforce_leap_property(ctx);
}

void enforce_chare_paths(OrderContext& ctx) {
  PartitionGraph& pg = ctx.pg();
  const auto& leaps = ctx.leaps();
  const auto& groups = ctx.leap_groups();
  const trace::Trace& trace = pg.trace();

  // For each chare: the nearest later leap containing it and the owning
  // partition there (unique thanks to property 1).
  std::vector<std::int32_t> next_leap(
      static_cast<std::size_t>(trace.num_chares()), -1);
  std::vector<PartId> next_owner(
      static_cast<std::size_t>(trace.num_chares()), -1);

  auto& edges = ctx.scratch_edges();
  for (std::int32_t k = static_cast<std::int32_t>(groups.size()) - 1; k >= 0;
       --k) {
    for (PartId p : groups[static_cast<std::size_t>(k)]) {
      // Chares covered by direct successors.
      std::unordered_set<trace::ChareId> covered;
      for (graph::NodeId succ : pg.dag().successors(p)) {
        for (trace::ChareId c : pg.chares(succ)) covered.insert(c);
      }
      for (trace::ChareId c : pg.chares(p)) {
        if (covered.count(c)) continue;
        std::int32_t nl = next_leap[static_cast<std::size_t>(c)];
        if (nl == -1) continue;  // no later leap contains c: property met
        edges.emplace_back(p, next_owner[static_cast<std::size_t>(c)]);
      }
    }
    for (PartId p : groups[static_cast<std::size_t>(k)]) {
      for (trace::ChareId c : pg.chares(p)) {
        next_leap[static_cast<std::size_t>(c)] = k;
        next_owner[static_cast<std::size_t>(c)] = p;
      }
    }
  }

  // Algorithm 5 alone does not deliver the paper's stated goal ("a single
  // path through the phase DAG for each chare"): a partition whose direct
  // successor holds the chare at a LATER leap can skip over an
  // intermediate, unordered occurrence, letting two of the chare's phases
  // overlap in global steps. Close the gap by chaining each chare's
  // partitions in leap order (property 1 makes the leaps distinct, so the
  // chain is forward-only and cannot create a cycle or change any leap).
  {
    std::vector<std::vector<std::pair<std::int32_t, PartId>>> occurrences(
        static_cast<std::size_t>(trace.num_chares()));
    for (PartId p = 0; p < pg.num_partitions(); ++p) {
      for (trace::ChareId c : pg.chares(p))
        occurrences[static_cast<std::size_t>(c)].emplace_back(
            leaps[static_cast<std::size_t>(p)], p);
    }
    for (auto& list : occurrences) {
      std::sort(list.begin(), list.end());
      for (std::size_t i = 1; i < list.size(); ++i)
        edges.emplace_back(list[i - 1].second, list[i].second);
    }
  }
  pg.add_edges_bulk(edges);
}

void enforce_chare_paths(PartitionGraph& pg) {
  OrderContext ctx(pg.trace(), Options{});
  ctx.attach_pg(pg);
  enforce_chare_paths(ctx);
}

bool check_leap_property(OrderContext& ctx) {
  return leap_property_holds(ctx.pg(), ctx.leap_groups());
}

bool check_leap_property(const PartitionGraph& pg) {
  auto leaps = graph::compute_leaps(pg.dag());
  auto groups = graph::group_by_leap(leaps);
  return leap_property_holds(pg, groups);
}

bool check_chare_paths(const PartitionGraph& pg) {
  auto leaps = graph::compute_leaps(pg.dag());
  auto groups = graph::group_by_leap(leaps);

  std::vector<std::int32_t> next_leap(
      static_cast<std::size_t>(pg.trace().num_chares()), -1);
  bool ok = true;
  for (std::int32_t k = static_cast<std::int32_t>(groups.size()) - 1; k >= 0;
       --k) {
    for (PartId p : groups[static_cast<std::size_t>(k)]) {
      std::unordered_set<trace::ChareId> covered;
      for (graph::NodeId succ : pg.dag().successors(p)) {
        for (trace::ChareId c : pg.chares(succ)) covered.insert(c);
      }
      for (trace::ChareId c : pg.chares(p)) {
        if (!covered.count(c) &&
            next_leap[static_cast<std::size_t>(c)] != -1)
          ok = false;
      }
    }
    for (PartId p : groups[static_cast<std::size_t>(k)]) {
      for (trace::ChareId c : pg.chares(p))
        next_leap[static_cast<std::size_t>(c)] = k;
    }
  }
  return ok;
}

}  // namespace logstruct::order
