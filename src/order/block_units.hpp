#pragma once

/// \file block_units.hpp
/// Serial-block units shared by the pipeline stages.
///
/// A *unit* is a serial block after SDAG absorption (§2.1): the group of
/// executions the developer wrote as one serial. Initial partitioning
/// splits units at app/runtime boundaries; the repair merge restores
/// same-unit connections; step assignment orders whole units per chare.

#include <vector>

#include "trace/trace.hpp"

namespace logstruct::order {

struct BlockUnits {
  /// block -> representative block (identity when absorption is off).
  std::vector<trace::BlockId> rep;
  /// Per representative block: its unit's events, time-sorted. Empty for
  /// non-representative or event-less blocks.
  std::vector<std::vector<trace::EventId>> events;
  /// event -> representative block of its unit.
  std::vector<trace::BlockId> unit_of_event;
};

BlockUnits compute_block_units(const trace::Trace& trace,
                               bool sdag_absorption);

}  // namespace logstruct::order
