#pragma once

/// \file options.hpp
/// Configuration of the logical-structure pipeline.
///
/// Every heuristic of the paper is individually switchable so the ablation
/// experiments (notably Fig. 17: structure computed *without* the §3.1.4
/// inference and merging) run through the same code path.

namespace logstruct::order {

struct PartitionOptions {
  /// §3.1.1: split serial blocks where dependencies cross the
  /// application/runtime boundary.
  bool split_app_runtime = true;

  /// §2.1: absorb `when`-triggered entry executions into their serial and
  /// add serial-n -> serial-(n+1) happened-before edges.
  bool sdag_inference = true;

  /// §3.1.3 (Algorithm 2): restore merges broken by the app/runtime split.
  bool repair_serial_blocks = true;

  /// §3.1.3, second rule: merge partitions of neighboring serials entered
  /// by the same multi-chare group.
  bool neighbor_serial_merge = true;

  /// §3.1.4 (Algorithm 3): order partition-initial source events per chare
  /// by physical time and add the implied happened-before edges.
  bool infer_source_order = true;

  /// §3.1.4 (Algorithm 4): merge same-kind partitions that overlap in
  /// chares at the same leap. When disabled, overlapping partitions are
  /// forced into sequence with physical-time edges instead (the Fig. 17
  /// ablation).
  bool leap_merge = true;

  /// Message-passing model: per-process physical-time order implies
  /// happened-before (§3.4). Enable for MPI traces; Charm++ traces must
  /// not assume it.
  bool process_order_edges = false;

  /// With process_order_edges: treat the order of RECEIVES on a process
  /// as a control dependency too. The paper notes this Isaacs'13
  /// assumption "is not always true, e.g., Figure 10" — its reordering
  /// model (§3.2.1) lets receives replay earlier, so the relaxed edges
  /// (false) only make each send depend on the receives and send that
  /// physically preceded it.
  bool strict_receive_order = true;

  /// Debug: run per-pass invariant checks (DAG-ness, event coverage,
  /// properties 1-2) after every pipeline pass; O(V+E) per pass. Also
  /// forced on by the LOGSTRUCT_CHECK_PASSES environment variable.
  bool check_passes = false;
};

struct StepOptions {
  /// §3.2.1: reorder serial blocks by idealized replay (w clock). False =
  /// per-chare physical-time order (the Fig. 8a / Fig. 10a comparisons).
  bool reorder = true;

  /// Message-passing variant of the w clock: sends are pinned after the
  /// receives that physically preceded them; only receives reorder.
  bool mpi_mode = false;

  /// Worker threads for step assignment. 0 = follow Options::threads
  /// (and through it the process default). Phases are independent (§3.3:
  /// "as each phase is handled individually, this stage could be
  /// parallelized"); results are identical for any thread count.
  int threads = 0;
};

struct Options {
  PartitionOptions partition;
  StepOptions step;

  /// Worker threads for the whole pipeline (initial partitioning, merge
  /// passes, step assignment, w clock). 0 = follow the process-wide
  /// default set by the --threads flag (util::default_parallelism()),
  /// which itself defaults to 1 — so the library stays serial unless
  /// somebody opts in. Results are bit-identical for any value.
  int threads = 0;

  /// Degraded-input policy. A trace repaired by fault-tolerant ingestion
  /// (trace::repair / a recovering reader) carries degraded chares —
  /// chares whose dependencies were altered to make the salvage
  /// well-formed. true (default): quarantine — the pipeline runs
  /// normally, but phases touching a degraded chare are flagged
  /// (PhaseResult::degraded) and counted in the `order/degraded_phases`
  /// obs counter so consumers know which regions rest on repaired data.
  /// false: refuse — LS_CHECK-abort when handed a degraded trace, for
  /// pipelines that must never silently analyze repaired input.
  bool allow_degraded = true;

  /// Debug: run the vector-clock causality oracle after stepping (the
  /// "check_causality" pass, order/causality.hpp) and abort with exact
  /// event/edge provenance if any dependency row, intra-block pair, or
  /// phase-DAG edge of the recovered structure contradicts
  /// happened-before. O(V + E) plus the clock sweep. Also forced on by
  /// the LOGSTRUCT_CHECK_CAUSALITY environment variable (the ASan/TSan
  /// CI jobs set it). Edges touching degraded phases are quarantined,
  /// not judged. See docs/CAUSALITY.md.
  bool check_causality = false;

  /// Resolve the pipeline thread count to a concrete value >= 1; the
  /// implementation is in options.cpp (needs util/thread_pool.hpp,
  /// which this header deliberately does not pull in).
  [[nodiscard]] int effective_threads() const;

  /// Charm++ trace defaults (the paper's main configuration).
  static Options charm() { return Options{}; }

  /// Charm++ without the §3.1.4 inference/merging (paper Fig. 17).
  static Options charm_no_inference() {
    Options o;
    o.partition.infer_source_order = false;
    o.partition.leap_merge = false;
    return o;
  }

  /// Physical-time ordering of serial blocks (paper Fig. 8a).
  static Options charm_no_reorder() {
    Options o;
    o.step.reorder = false;
    return o;
  }

  /// MPI traces with reordering (paper Fig. 10b): receives are free to
  /// replay earlier, so their physical order is not a dependency.
  static Options mpi() {
    Options o;
    o.partition.split_app_runtime = false;   // no runtime chares
    o.partition.sdag_inference = false;
    o.partition.neighbor_serial_merge = false;
    o.partition.process_order_edges = true;
    o.partition.strict_receive_order = false;
    o.step.mpi_mode = true;
    return o;
  }

  /// MPI organization of Isaacs et al. [13] as used in the paper's
  /// Fig. 10a / Fig. 16a / Fig. 20(a,c): strict per-process
  /// happened-before and stepping without reordering.
  static Options mpi_baseline13() {
    Options o = mpi();
    o.partition.strict_receive_order = true;
    o.step.reorder = false;
    return o;
  }
};

}  // namespace logstruct::order
