#pragma once

/// \file io.hpp
/// Serialization of computed logical structures (.lstruct).
///
/// A structure is expensive to recompute on big traces (Fig. 19); tools
/// that render or re-analyze (the HTML viewer, metric sweeps) can archive
/// it next to the .lstrace and reload in O(events). The format stores the
/// per-event assignment, the phase table and DAG, and the w clock; derived
/// orderings (per-phase event lists, chare sequences) are rebuilt against
/// the trace at load time, which also cross-checks that trace and
/// structure belong together.

#include <iosfwd>
#include <string>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::order {

void write_structure(const LogicalStructure& ls, std::ostream& out);

/// Parse a structure written by write_structure and re-derive the
/// trace-dependent pieces. Throws std::runtime_error on malformed input
/// or a trace/structure mismatch (wrong event count).
LogicalStructure read_structure(std::istream& in, const trace::Trace& trace);

bool save_structure(const LogicalStructure& ls, const std::string& path);
LogicalStructure load_structure(const std::string& path,
                                const trace::Trace& trace);

}  // namespace logstruct::order
