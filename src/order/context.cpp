#include "order/context.hpp"

#include <type_traits>

#include "graph/leaps.hpp"
#include "util/check.hpp"

namespace logstruct::order {

PartitionGraph& OrderContext::pg() {
  LS_CHECK_MSG(pg_ != nullptr, "pass needs a partition graph before initial");
  return *pg_;
}

const PartitionGraph& OrderContext::pg() const {
  LS_CHECK_MSG(pg_ != nullptr, "pass needs a partition graph before initial");
  return *pg_;
}

void OrderContext::set_pg(PartitionGraph&& pg) {
  pg_storage_.emplace(std::move(pg));
  pg_ = &*pg_storage_;
  leaps_epoch_ = 0;
  groups_epoch_ = 0;
}

void OrderContext::attach_pg(PartitionGraph& pg) {
  pg_storage_.reset();
  pg_ = &pg;
  leaps_epoch_ = 0;
  groups_epoch_ = 0;
}

const std::vector<std::int32_t>& OrderContext::leaps() {
  const std::uint64_t epoch = pg().epoch();
  if (leaps_epoch_ != epoch) {
    leaps_ = graph::compute_leaps(pg().dag());
    leaps_epoch_ = epoch;
  }
  return leaps_;
}

const std::vector<std::vector<graph::NodeId>>& OrderContext::leap_groups() {
  const std::uint64_t epoch = pg().epoch();
  if (groups_epoch_ != epoch) {
    groups_ = graph::group_by_leap(leaps());
    groups_epoch_ = epoch;
  }
  return groups_;
}

const BlockUnits& OrderContext::units(bool sdag_absorption) {
  auto& slot = sdag_absorption ? units_absorbed_ : units_raw_;
  if (!slot) slot = compute_block_units(*trace_, sdag_absorption);
  return *slot;
}

std::vector<std::pair<PartId, PartId>>& OrderContext::scratch_pairs() {
  scratch_pairs_.clear();
  return scratch_pairs_;
}

std::vector<std::pair<PartId, PartId>>& OrderContext::scratch_edges() {
  scratch_edges_.clear();
  return scratch_edges_;
}

std::int64_t OrderContext::arena_bytes() const {
  auto vec_bytes = [](const auto& v) {
    return static_cast<std::int64_t>(v.capacity() *
                                     sizeof(typename std::decay_t<
                                            decltype(v)>::value_type));
  };
  std::int64_t b = vec_bytes(scratch_pairs_) + vec_bytes(scratch_edges_) +
                   vec_bytes(leaps_) + vec_bytes(groups_);
  for (const auto& g : groups_) b += vec_bytes(g);
  return b;
}

}  // namespace logstruct::order
