#include "order/stats.hpp"

#include <algorithm>
#include <string>
#include <string_view>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace logstruct::order {

StructureStats compute_stats(const trace::Trace& trace,
                             const LogicalStructure& ls) {
  StructureStats s;
  s.num_phases = ls.num_phases();
  for (bool rt : ls.phases.runtime) {
    if (rt) ++s.runtime_phases;
    else ++s.app_phases;
  }
  s.width = ls.max_step + 1;

  double height_sum = 0;
  for (std::int32_t h : ls.phase_height) height_sum += h;
  s.avg_phase_height =
      ls.num_phases() ? height_sum / ls.num_phases() : 0.0;

  std::unordered_map<std::int32_t, std::int32_t> per_step;
  for (trace::EventId e = 0; e < trace.num_events(); ++e)
    ++per_step[ls.global_step[static_cast<std::size_t>(e)]];
  if (!per_step.empty()) {
    s.avg_occupancy = static_cast<double>(trace.num_events()) /
                      static_cast<double>(per_step.size());
  }

  // Same-chare same-step collisions.
  std::unordered_set<std::int64_t> seen;
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    std::int64_t key =
        (static_cast<std::int64_t>(trace.event(e).chare) << 32) |
        static_cast<std::uint32_t>(
            ls.global_step[static_cast<std::size_t>(e)]);
    if (!seen.insert(key).second) ++s.chare_step_violations;
  }

  s.order_conflicts = ls.order_conflicts;
  s.initial_partitions = ls.phases.initial_partitions;
  s.merges = ls.phases.merges;
  return s;
}

std::vector<PhaseExtent> phase_extents(const trace::Trace& trace,
                                       const PhaseResult& phases) {
  std::vector<PhaseExtent> out(
      static_cast<std::size_t>(phases.num_phases()));
  for (std::int32_t p = 0; p < phases.num_phases(); ++p) {
    const auto& events = phases.events[static_cast<std::size_t>(p)];
    if (events.empty()) continue;
    PhaseExtent& ext = out[static_cast<std::size_t>(p)];
    ext.begin = trace.event(events.front()).time;
    ext.end = ext.begin;
    // Phase events are time-sorted, but scan anyway: the extent must be
    // correct even for hand-built PhaseResults in tests.
    for (trace::EventId e : events) {
      ext.begin = std::min(ext.begin, trace.event(e).time);
      ext.end = std::max(ext.end, trace.event(e).time);
    }
  }
  return out;
}

std::vector<PhaseStat> phase_table(const trace::Trace& trace,
                                   const LogicalStructure& ls) {
  std::vector<PhaseStat> rows;
  rows.reserve(static_cast<std::size_t>(ls.num_phases()));
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    PhaseStat row;
    row.id = p;
    row.runtime = ls.phases.runtime[static_cast<std::size_t>(p)];
    row.events = static_cast<std::int32_t>(
        ls.phases.events[static_cast<std::size_t>(p)].size());
    std::unordered_set<trace::ChareId> chares;
    for (trace::EventId e : ls.phases.events[static_cast<std::size_t>(p)])
      chares.insert(trace.event(e).chare);
    row.chares = static_cast<std::int32_t>(chares.size());
    row.leap = ls.phases.leap[static_cast<std::size_t>(p)];
    row.offset = ls.phase_offset[static_cast<std::size_t>(p)];
    row.height = ls.phase_height[static_cast<std::size_t>(p)];
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const PhaseStat& a,
                                         const PhaseStat& b) {
    if (a.offset != b.offset) return a.offset < b.offset;
    return a.id < b.id;
  });
  return rows;
}

double step_overlap(const LogicalStructure& ls, std::int32_t p,
                    std::int32_t q) {
  std::int32_t p0 = ls.phase_offset[static_cast<std::size_t>(p)];
  std::int32_t p1 = p0 + ls.phase_height[static_cast<std::size_t>(p)];
  std::int32_t q0 = ls.phase_offset[static_cast<std::size_t>(q)];
  std::int32_t q1 = q0 + ls.phase_height[static_cast<std::size_t>(q)];
  std::int32_t lo = std::max(p0, q0);
  std::int32_t hi = std::min(p1, q1);
  if (hi < lo) return 0.0;
  return static_cast<double>(hi - lo + 1) / static_cast<double>(p1 - p0 + 1);
}

double phase_compactness(const trace::Trace& trace,
                         const LogicalStructure& ls, std::int32_t phase) {
  std::unordered_map<trace::ChareId,
                     std::pair<std::int32_t, std::int32_t>>
      span;  // chare -> (min step, max step)
  std::unordered_map<trace::ChareId, std::int32_t> count;
  for (trace::EventId e :
       ls.phases.events[static_cast<std::size_t>(phase)]) {
    trace::ChareId c = trace.event(e).chare;
    std::int32_t st = ls.global_step[static_cast<std::size_t>(e)];
    auto it = span.find(c);
    if (it == span.end()) {
      span[c] = {st, st};
    } else {
      it->second.first = std::min(it->second.first, st);
      it->second.second = std::max(it->second.second, st);
    }
    ++count[c];
  }
  if (span.empty()) return 1.0;
  double total = 0;
  for (const auto& [c, mm] : span) {
    double width = mm.second - mm.first + 1;
    total += static_cast<double>(count[c]) / width;
  }
  return total / static_cast<double>(span.size());
}

std::string phase_signature(const trace::Trace& trace,
                            const LogicalStructure& ls) {
  std::string sig;
  for (const auto& row : phase_table(trace, ls)) {
    if (row.runtime) {
      sig += 'r';
    } else if (row.height == 1 && row.events == 2 * row.chares &&
               trace.collectives().empty()) {
      sig += 't';
    } else if (row.height == 1 && !trace.collectives().empty()) {
      sig += 'a';
    } else {
      sig += 'p';
    }
  }
  return sig;
}

PhasePattern detect_pattern(const std::string& signature,
                            std::int32_t min_repeats) {
  const std::size_t n = signature.size();
  for (std::size_t unit_len = 1; unit_len <= n; ++unit_len) {
    for (std::size_t lead = 0; lead + unit_len <= n; ++lead) {
      std::size_t tail = n - lead;
      if (tail % unit_len != 0) continue;
      auto repeats = static_cast<std::int32_t>(tail / unit_len);
      if (repeats < min_repeats) continue;
      std::string_view unit(signature.data() + lead, unit_len);
      bool ok = true;
      for (std::size_t pos = lead; ok && pos < n; pos += unit_len)
        ok = std::string_view(signature.data() + pos, unit_len) == unit;
      if (ok) {
        PhasePattern p;
        p.lead = signature.substr(0, lead);
        p.unit = std::string(unit);
        p.repeats = repeats;
        return p;
      }
    }
  }
  return PhasePattern{signature, "", 0};
}

}  // namespace logstruct::order
