#include "order/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace logstruct::order {

namespace {
constexpr const char* kMagic = "lstruct";
constexpr int kVersion = 1;
}  // namespace

void write_structure(const LogicalStructure& ls, std::ostream& out) {
  out << kMagic << ' ' << kVersion << '\n';
  out << "counts " << ls.phases.phase_of_event.size() << ' '
      << ls.num_phases() << ' ' << ls.max_step << ' ' << ls.order_conflicts
      << ' ' << ls.phases.initial_partitions << ' ' << ls.phases.merges
      << '\n';
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    out << "phase " << p << ' '
        << (ls.phases.runtime[static_cast<std::size_t>(p)] ? 1 : 0) << ' '
        << ls.phases.leap[static_cast<std::size_t>(p)] << ' '
        << ls.phase_offset[static_cast<std::size_t>(p)] << ' '
        << ls.phase_height[static_cast<std::size_t>(p)] << '\n';
  }
  for (auto [u, v] : ls.phases.dag.edges())
    out << "edge " << u << ' ' << v << '\n';
  // Per event: phase, local step, w. One line per event keeps the format
  // greppable; global step is offset + local.
  for (std::size_t e = 0; e < ls.phases.phase_of_event.size(); ++e) {
    out << "e " << ls.phases.phase_of_event[e] << ' ' << ls.local_step[e]
        << ' ' << ls.w[e] << '\n';
  }
  out << "end\n";
}

LogicalStructure read_structure(std::istream& in,
                                const trace::Trace& trace) {
  std::string word;
  int version = 0;
  in >> word >> version;
  if (word != kMagic || version != kVersion)
    throw std::runtime_error("lstruct: bad header");

  LogicalStructure ls;
  std::size_t num_events = 0;
  std::int32_t num_phases = 0;
  in >> word;
  if (word != "counts") throw std::runtime_error("lstruct: missing counts");
  in >> num_events >> num_phases >> ls.max_step >> ls.order_conflicts >>
      ls.phases.initial_partitions >> ls.phases.merges;
  if (num_events != static_cast<std::size_t>(trace.num_events()))
    throw std::runtime_error(
        "lstruct: structure does not match the trace (event count)");

  ls.phases.runtime.assign(static_cast<std::size_t>(num_phases), false);
  ls.phases.leap.assign(static_cast<std::size_t>(num_phases), 0);
  ls.phase_offset.assign(static_cast<std::size_t>(num_phases), 0);
  ls.phase_height.assign(static_cast<std::size_t>(num_phases), 0);
  ls.phases.events.resize(static_cast<std::size_t>(num_phases));
  ls.phases.dag.reset(num_phases);
  ls.phases.phase_of_event.assign(num_events, -1);
  ls.local_step.assign(num_events, 0);
  ls.global_step.assign(num_events, 0);
  ls.w.assign(num_events, 0);

  std::size_t next_event = 0;
  bool saw_end = false;
  while (in >> word) {
    if (word == "phase") {
      std::size_t id;
      int runtime;
      in >> id;
      if (id >= static_cast<std::size_t>(num_phases))
        throw std::runtime_error("lstruct: phase id out of range");
      in >> runtime >> ls.phases.leap[id] >> ls.phase_offset[id] >>
          ls.phase_height[id];
      ls.phases.runtime[id] = runtime != 0;
    } else if (word == "edge") {
      graph::NodeId u, v;
      in >> u >> v;
      if (u < 0 || v < 0 || u >= num_phases || v >= num_phases)
        throw std::runtime_error("lstruct: edge out of range");
      ls.phases.dag.add_edge(u, v);
    } else if (word == "e") {
      if (next_event >= num_events)
        throw std::runtime_error("lstruct: too many event records");
      std::int32_t phase;
      in >> phase >> ls.local_step[next_event] >> ls.w[next_event];
      if (phase < 0 || phase >= num_phases)
        throw std::runtime_error("lstruct: event phase out of range");
      ls.phases.phase_of_event[next_event] = phase;
      ++next_event;
    } else if (word == "end") {
      saw_end = true;
      break;
    } else {
      throw std::runtime_error("lstruct: unknown record '" + word + "'");
    }
    if (!in) throw std::runtime_error("lstruct: parse error");
  }
  if (!saw_end || next_event != num_events)
    throw std::runtime_error("lstruct: truncated file");
  ls.phases.dag.finalize();

  // Re-derive trace-dependent views.
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    auto ph = static_cast<std::size_t>(
        ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    ls.global_step[static_cast<std::size_t>(e)] =
        ls.phase_offset[ph] + ls.local_step[static_cast<std::size_t>(e)];
    ls.phases.events[ph].push_back(e);
  }
  auto by_time = [&trace](trace::EventId a, trace::EventId b) {
    const trace::TimeNs ta = trace.event_time(a);
    const trace::TimeNs tb = trace.event_time(b);
    if (ta != tb) return ta < tb;
    return a < b;
  };
  for (auto& list : ls.phases.events)
    std::sort(list.begin(), list.end(), by_time);

  // Degraded quarantine flags are a pure function of trace + membership,
  // so they are re-derived here rather than serialized.
  ls.phases.degraded.assign(static_cast<std::size_t>(num_phases), false);
  ls.phases.degraded_phases = 0;
  if (trace.num_degraded_chares() > 0) {
    for (std::size_t ph = 0; ph < ls.phases.events.size(); ++ph) {
      for (trace::EventId e : ls.phases.events[ph]) {
        if (trace.is_degraded_chare(trace.event(e).chare)) {
          ls.phases.degraded[ph] = true;
          ++ls.phases.degraded_phases;
          break;
        }
      }
    }
  }

  ls.chare_sequence.assign(static_cast<std::size_t>(trace.num_chares()),
                           {});
  for (trace::EventId e = 0; e < trace.num_events(); ++e)
    ls.chare_sequence[static_cast<std::size_t>(trace.event(e).chare)]
        .push_back(e);
  auto by_step = [&ls](trace::EventId a, trace::EventId b) {
    return ls.global_step[static_cast<std::size_t>(a)] <
           ls.global_step[static_cast<std::size_t>(b)];
  };
  ls.pos_in_chare.assign(num_events, 0);
  for (auto& seq : ls.chare_sequence) {
    std::sort(seq.begin(), seq.end(), by_step);
    for (std::size_t i = 0; i < seq.size(); ++i)
      ls.pos_in_chare[static_cast<std::size_t>(seq[i])] =
          static_cast<std::int32_t>(i);
  }
  return ls;
}

bool save_structure(const LogicalStructure& ls, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_structure(ls, f);
  return static_cast<bool>(f);
}

LogicalStructure load_structure(const std::string& path,
                                const trace::Trace& trace) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open structure file: " + path);
  return read_structure(f, trace);
}

}  // namespace logstruct::order
