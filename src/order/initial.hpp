#pragma once

/// \file initial.hpp
/// Initial partition construction (paper §3.1.1).
///
/// Dependency events are grouped by their (SDAG-absorbed) serial block and
/// split where dependencies cross the application/runtime boundary
/// (paper Fig. 2). Edges: (1) remote-invocation matches, (2) intra-block
/// happened-before between the split runs, (3) SDAG serial-adjacency
/// inference, and — for message-passing traces — per-process physical-time
/// order (§3.4).

#include "order/options.hpp"
#include "order/partition_graph.hpp"
#include "trace/trace.hpp"

namespace logstruct::order {

/// `threads` fans the per-event application/runtime classification (the
/// O(events * fanout) part) out over the shared pool; partition ids and
/// edges are assembled serially so the result is identical for any count.
PartitionGraph build_initial_partitions(const trace::Trace& trace,
                                        const PartitionOptions& opts,
                                        int threads = 1);

}  // namespace logstruct::order
