#include "order/phases.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "graph/leaps.hpp"
#include "obs/obs.hpp"
#include "order/infer.hpp"
#include "order/initial.hpp"
#include "order/merges.hpp"
#include "order/partition_graph.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace logstruct::order {

PhaseResult find_phases(const trace::Trace& trace,
                        const PartitionOptions& opts,
                        PipelineTimings* timings) {
  PipelineTimings local;
  PipelineTimings& tm = timings ? *timings : local;
  util::Stopwatch sw;
  auto lap = [&sw](double& slot) {
    slot += sw.seconds();
    sw.reset();
  };

  OBS_SPAN(span_all, "order/find_phases");
  span_all.attr("events", trace.num_events());

  // Every pass below keeps the invariant: the partition graph is a DAG on
  // entry and exit (cycle merges run inside each pass). Gated stages
  // still emit their (near-zero) span so the telemetry sidecar always
  // carries the full stage taxonomy.
  PhaseResult out;
  std::optional<PartitionGraph> pg_storage;
  {
    OBS_SPAN(span, "order/initial");
    pg_storage.emplace(build_initial_partitions(trace, opts));
    out.initial_partitions = pg_storage->num_partitions();
    pg_storage->cycle_merge();            // raw edges may already cycle
    span.attr("partitions", pg_storage->num_partitions());
  }
  PartitionGraph& pg = *pg_storage;
  lap(tm.initial);
  {
    OBS_SPAN(span, "order/dependency_merge");
    dependency_merge(pg);                 // §3.1.2, Algorithm 1
    span.attr("partitions", pg.num_partitions());
  }
  lap(tm.dependency_merge);
  {
    OBS_SPAN(span, "order/repair");
    if (opts.repair_serial_blocks) repair_merge(pg, opts);  // §3.1.3, Alg 2
    span.attr("partitions", pg.num_partitions());
  }
  lap(tm.repair);
  {
    OBS_SPAN(span, "order/neighbor_serial");
    if (opts.neighbor_serial_merge && opts.sdag_inference)
      neighbor_serial_merge(pg, opts);    // §3.1.3, second rule
    span.attr("partitions", pg.num_partitions());
  }
  lap(tm.neighbor);
  {
    OBS_SPAN(span, "order/infer_source_order");
    if (opts.infer_source_order) infer_source_order(pg);  // §3.1.4, Alg 3
    span.attr("partitions", pg.num_partitions());
  }
  lap(tm.infer_sources);
  {
    OBS_SPAN(span, "order/enforce_leap_property");
    enforce_leap_property(pg, opts);      // §3.1.4, Alg 4 / property 1
    span.attr("partitions", pg.num_partitions());
  }
  lap(tm.leap_property);
  {
    OBS_SPAN(span, "order/enforce_chare_paths");
    enforce_chare_paths(pg);              // §3.1.4, Alg 5 / property 2
    span.attr("partitions", pg.num_partitions());
  }
  lap(tm.chare_paths);

  LS_CHECK_MSG(check_leap_property(pg), "property 1 violated after pipeline");
  OBS_SPAN(span_fin, "order/finalize");

  // Renumber phases by (leap, first event time) for stable, readable ids.
  auto leaps = graph::compute_leaps(pg.dag());
  std::vector<std::int32_t> order(
      static_cast<std::size_t>(pg.num_partitions()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    if (leaps[static_cast<std::size_t>(a)] !=
        leaps[static_cast<std::size_t>(b)])
      return leaps[static_cast<std::size_t>(a)] <
             leaps[static_cast<std::size_t>(b)];
    trace::TimeNs ta = trace.event(pg.events(a).front()).time;
    trace::TimeNs tb = trace.event(pg.events(b).front()).time;
    if (ta != tb) return ta < tb;
    return a < b;
  });
  std::vector<std::int32_t> new_id(
      static_cast<std::size_t>(pg.num_partitions()));
  for (std::size_t i = 0; i < order.size(); ++i)
    new_id[static_cast<std::size_t>(order[i])] =
        static_cast<std::int32_t>(i);

  out.events.resize(static_cast<std::size_t>(pg.num_partitions()));
  out.runtime.resize(static_cast<std::size_t>(pg.num_partitions()));
  out.leap.resize(static_cast<std::size_t>(pg.num_partitions()));
  for (PartId p = 0; p < pg.num_partitions(); ++p) {
    auto n = static_cast<std::size_t>(new_id[static_cast<std::size_t>(p)]);
    out.events[n].assign(pg.events(p).begin(), pg.events(p).end());
    out.runtime[n] = pg.runtime(p);
    out.leap[n] = leaps[static_cast<std::size_t>(p)];
  }
  out.phase_of_event.assign(static_cast<std::size_t>(trace.num_events()),
                            -1);
  for (trace::EventId e = 0; e < trace.num_events(); ++e)
    out.phase_of_event[static_cast<std::size_t>(e)] =
        new_id[static_cast<std::size_t>(pg.part_of(e))];

  out.dag.reset(pg.num_partitions());
  for (auto [u, v] : pg.dag().edges())
    out.dag.add_edge(new_id[static_cast<std::size_t>(u)],
                     new_id[static_cast<std::size_t>(v)]);
  out.dag.finalize();
  out.merges = pg.merges_applied();
  span_all.attr("phases", out.num_phases());
  span_all.attr("merges", out.merges);
  lap(tm.finalize);
  return out;
}

}  // namespace logstruct::order
