#include "order/phases.hpp"

#include <algorithm>
#include <numeric>

#include "obs/obs.hpp"
#include "order/context.hpp"
#include "order/infer.hpp"
#include "order/initial.hpp"
#include "order/merges.hpp"
#include "order/partition_graph.hpp"
#include "order/pass_manager.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::order {

namespace {

/// Renumber phases by (leap, first event time) for stable, readable ids
/// and materialize the PhaseResult into ctx.phases.
void finalize_phases(OrderContext& ctx) {
  PartitionGraph& pg = ctx.pg();
  const trace::Trace& trace = ctx.trace();
  LS_CHECK_MSG(check_leap_property(ctx), "property 1 violated after pipeline");
  const auto& leaps = ctx.leaps();
  PhaseResult& out = ctx.phases;

  std::vector<std::int32_t> order(
      static_cast<std::size_t>(pg.num_partitions()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    if (leaps[static_cast<std::size_t>(a)] !=
        leaps[static_cast<std::size_t>(b)])
      return leaps[static_cast<std::size_t>(a)] <
             leaps[static_cast<std::size_t>(b)];
    trace::TimeNs ta = trace.event(pg.events(a).front()).time;
    trace::TimeNs tb = trace.event(pg.events(b).front()).time;
    if (ta != tb) return ta < tb;
    return a < b;
  });
  std::vector<std::int32_t> new_id(
      static_cast<std::size_t>(pg.num_partitions()));
  for (std::size_t i = 0; i < order.size(); ++i)
    new_id[static_cast<std::size_t>(order[i])] =
        static_cast<std::int32_t>(i);

  // new_id is a bijection, so each iteration below owns its output slot;
  // both fills fan out over the pipeline's thread budget.
  const int threads = ctx.options().effective_threads();
  out.events.resize(static_cast<std::size_t>(pg.num_partitions()));
  out.runtime.resize(static_cast<std::size_t>(pg.num_partitions()));
  out.leap.resize(static_cast<std::size_t>(pg.num_partitions()));
  util::parallel_for(threads, pg.num_partitions(), [&](std::int64_t p) {
    auto n = static_cast<std::size_t>(new_id[static_cast<std::size_t>(p)]);
    out.events[n].assign(pg.events(static_cast<PartId>(p)).begin(),
                         pg.events(static_cast<PartId>(p)).end());
    out.leap[n] = leaps[static_cast<std::size_t>(p)];
  });
  // vector<bool> is bit-packed — adjacent slots share a word, so this
  // fill must stay serial.
  for (PartId p = 0; p < pg.num_partitions(); ++p)
    out.runtime[static_cast<std::size_t>(
        new_id[static_cast<std::size_t>(p)])] = pg.runtime(p);

  // Quarantine: a phase is degraded iff any of its events belongs to a
  // chare whose dependencies trace-level recovery altered. Clean traces
  // (no degraded chares — the overwhelmingly common case) skip the scan.
  out.degraded.assign(static_cast<std::size_t>(pg.num_partitions()), false);
  out.degraded_phases = 0;
  if (trace.num_degraded_chares() > 0) {
    for (PartId p = 0; p < pg.num_partitions(); ++p) {
      bool bad = false;
      for (trace::EventId e : pg.events(p)) {
        if (trace.is_degraded_chare(trace.event(e).chare)) {
          bad = true;
          break;
        }
      }
      if (bad) {
        out.degraded[static_cast<std::size_t>(
            new_id[static_cast<std::size_t>(p)])] = true;
        ++out.degraded_phases;
      }
    }
    OBS_COUNTER_ADD("order/degraded_phases", out.degraded_phases);
  }
  out.phase_of_event.assign(static_cast<std::size_t>(trace.num_events()),
                            -1);
  util::parallel_for(threads, trace.num_events(), [&](std::int64_t e) {
    out.phase_of_event[static_cast<std::size_t>(e)] =
        new_id[static_cast<std::size_t>(
            pg.part_of(static_cast<trace::EventId>(e)))];
  });

  out.dag.reset(pg.num_partitions());
  for (auto [u, v] : pg.dag().edges())
    out.dag.add_edge(new_id[static_cast<std::size_t>(u)],
                     new_id[static_cast<std::size_t>(v)]);
  out.dag.finalize();
  out.merges = pg.merges_applied();
}

}  // namespace

void register_partition_passes(PassManager& pm,
                               const PartitionOptions& opts) {
  // Every pass keeps the invariant: the partition graph is a DAG on entry
  // and exit (cycle merges run inside each pass).
  pm.add({.name = "initial",
          .run =
              [](OrderContext& ctx) {
                ctx.set_pg(build_initial_partitions(
                    ctx.trace(), ctx.options().partition,
                    ctx.options().effective_threads()));
                ctx.phases.initial_partitions = ctx.pg().num_partitions();
                ctx.pg().cycle_merge();  // raw edges may already cycle
              },
          .checks = kCheckDag | kCheckCoverage,
          .parallelism = Parallelism::kPhaseParallel});
  pm.add({.name = "dependency_merge",  // §3.1.2, Algorithm 1
          .run = [](OrderContext& ctx) { dependency_merge(ctx); },
          .checks = kCheckDag | kCheckCoverage});
  pm.add({.name = "repair",  // §3.1.3, Algorithm 2
          .run = [](OrderContext& ctx) { repair_merge(ctx); },
          .enabled = opts.repair_serial_blocks,
          .checks = kCheckDag | kCheckCoverage});
  pm.add({.name = "neighbor_serial",  // §3.1.3, second rule
          .run = [](OrderContext& ctx) { neighbor_serial_merge(ctx); },
          .enabled = opts.neighbor_serial_merge && opts.sdag_inference,
          .checks = kCheckDag | kCheckCoverage});
  pm.add({.name = "infer_source_order",  // §3.1.4, Algorithm 3
          .run = [](OrderContext& ctx) { infer_source_order(ctx); },
          .enabled = opts.infer_source_order,
          .checks = kCheckDag | kCheckCoverage,
          .parallelism = Parallelism::kPhaseParallel});
  pm.add({.name = "enforce_leap_property",  // §3.1.4, Alg 4 / property 1
          .run = [](OrderContext& ctx) { enforce_leap_property(ctx); },
          .checks = kCheckDag | kCheckCoverage | kCheckLeapProperty});
  pm.add({.name = "enforce_chare_paths",  // §3.1.4, Alg 5 / property 2
          .run = [](OrderContext& ctx) { enforce_chare_paths(ctx); },
          .checks = kCheckDag | kCheckCoverage | kCheckLeapProperty |
                    kCheckCharePaths});
  pm.add({.name = "finalize",
          .run = finalize_phases,
          .parallelism = Parallelism::kPhaseParallel});
}

void run_partition_pipeline(OrderContext& ctx, PipelineTimings* timings,
                            std::vector<PassRecord>* records) {
  OBS_SPAN(span_all, "order/find_phases");
  span_all.attr("events", ctx.trace().num_events());

  LS_CHECK_MSG(ctx.options().allow_degraded ||
                   ctx.trace().num_degraded_chares() == 0,
               "degraded (recovery-repaired) trace refused: "
               "Options::allow_degraded is false");

  PassManager pm(ctx.options().partition.check_passes);
  register_partition_passes(pm, ctx.options().partition);
  pm.run(ctx);

  span_all.attr("phases", ctx.phases.num_phases());
  span_all.attr("merges", ctx.phases.merges);

  if (timings) {
    for (const PassRecord& r : pm.records()) {
      if (r.name == "initial") timings->initial += r.seconds;
      else if (r.name == "dependency_merge")
        timings->dependency_merge += r.seconds;
      else if (r.name == "repair") timings->repair += r.seconds;
      else if (r.name == "neighbor_serial") timings->neighbor += r.seconds;
      else if (r.name == "infer_source_order")
        timings->infer_sources += r.seconds;
      else if (r.name == "enforce_leap_property")
        timings->leap_property += r.seconds;
      else if (r.name == "enforce_chare_paths")
        timings->chare_paths += r.seconds;
      else if (r.name == "finalize") timings->finalize += r.seconds;
    }
  }
  if (records)
    records->insert(records->end(), pm.records().begin(),
                    pm.records().end());
}

PhaseResult find_phases(const trace::Trace& trace,
                        const PartitionOptions& opts,
                        PipelineTimings* timings,
                        std::vector<PassRecord>* records) {
  Options all;
  all.partition = opts;
  OrderContext ctx(trace, all);
  run_partition_pipeline(ctx, timings, records);
  return std::move(ctx.phases);
}

}  // namespace logstruct::order
