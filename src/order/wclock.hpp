#pragma once

/// \file wclock.hpp
/// The per-phase replay clock w (paper §3.2.1).
///
/// w simulates an idealized forward replay of each phase: phase-initial
/// sends get w=0, subsequent sends count up along their serial block,
/// receives land one past their matching send, and sends following a
/// receive count up from it. Only relative w values within one chare
/// matter; they drive the reordering of serial blocks.
///
/// Message-passing mode (StepOptions::mpi_mode) pins sends after the
/// receives that physically preceded them on the process:
///   w_send = 1 + max { w_recv | recv -> send in process order },
/// so receives may be replayed earlier but never migrate across a send
/// that followed them.

#include <cstdint>
#include <vector>

#include "order/block_units.hpp"
#include "order/options.hpp"
#include "order/phases.hpp"
#include "trace/trace.hpp"

namespace logstruct::order {

/// w per event. Events outside any phase never occur (every event is
/// partitioned); processing is per phase in physical-time order, which is
/// a valid topological order of the replay constraints because messages
/// and serial blocks only run forward in time.
///
/// Phases are independent (the one cross-event read, w of the matching
/// send, is taken only when the send is in the same phase), so the phase
/// loop fans out over `threads` workers with bit-identical results;
/// threads <= 1 runs serially, 0 follows util::default_parallelism().
std::vector<std::int64_t> compute_w(const trace::Trace& trace,
                                    const PhaseResult& phases,
                                    const BlockUnits& units,
                                    const StepOptions& opts,
                                    int threads = 1);

}  // namespace logstruct::order
