#pragma once

/// \file hbclock.hpp
/// Sparse, clamped vector clocks over serial-block chains.
///
/// The only genuine happened-before chains a Charm++ trace guarantees are
/// its serial blocks: events inside one block execute uninterrupted, so
/// they are totally ordered, while blocks of the same chare (let alone the
/// same PE) are not — the paper's whole point is that physical order is
/// not logical order. A clock entry therefore names a *chain* (a serial
/// block, or a synthetic singleton chain for blockless events) and the
/// length of the prefix of that chain known to have happened before:
/// event `a` happened before `b` iff b's clock covers (chain(a),
/// pos_in_chain(a)).
///
/// Chare- or PE-indexed clocks would be smaller but inexact here (the
/// ancestor set within a chare is not prefix-closed in time order), and an
/// inexact oracle is worse than none: every over-approximation is a false
/// checker alarm. Chain clocks are exact; the price is entry count, which
/// the `max_entries` clamp bounds — an event whose merged clock would
/// exceed the budget stores nothing and is marked *saturated*. Saturated
/// events still answer queries exactly through a bounded backward walk
/// over direct predecessors (order::CausalityOracle::hb), so clamping
/// trades query time for memory, never correctness. See
/// docs/CAUSALITY.md.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace logstruct::order {

/// One covered chain prefix: every event of chain `chain` with position
/// < `len` happened before the clock's owner (or is the owner itself).
struct HbEntry {
  std::int32_t chain = 0;
  std::int32_t len = 0;  ///< covered prefix length (position + 1)
};

/// A sparse vector clock: entries sorted by chain id, at most one entry
/// per chain. Empty + saturated() means "budget exceeded, ask the
/// oracle's fallback"; empty + !saturated() means "no ancestors".
class HbClock {
 public:
  HbClock() = default;

  [[nodiscard]] bool saturated() const { return saturated_; }
  [[nodiscard]] const std::vector<HbEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::int32_t num_entries() const {
    return static_cast<std::int32_t>(entries_.size());
  }

  /// Does this clock cover position `pos` of chain `chain`? Meaningless
  /// (always false) on a saturated clock — callers must branch to the
  /// oracle's fallback first.
  [[nodiscard]] bool covers(std::int32_t chain, std::int32_t pos) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), chain,
        [](const HbEntry& e, std::int32_t c) { return e.chain < c; });
    return it != entries_.end() && it->chain == chain && it->len > pos;
  }

  /// Prefix length covered for `chain` (0 when absent).
  [[nodiscard]] std::int32_t covered_len(std::int32_t chain) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), chain,
        [](const HbEntry& e, std::int32_t c) { return e.chain < c; });
    return it != entries_.end() && it->chain == chain ? it->len : 0;
  }

  /// Merge-max another clock into this one (sorted two-pointer union).
  /// Merging a saturated clock saturates this one.
  void merge(const HbClock& other) {
    if (saturated_) return;
    if (other.saturated_) {
      saturate();
      return;
    }
    if (other.entries_.empty()) return;
    if (entries_.empty()) {
      entries_ = other.entries_;
      return;
    }
    std::vector<HbEntry> merged;
    merged.reserve(entries_.size() + other.entries_.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < entries_.size() && j < other.entries_.size()) {
      const HbEntry& a = entries_[i];
      const HbEntry& b = other.entries_[j];
      if (a.chain < b.chain) {
        merged.push_back(a);
        ++i;
      } else if (b.chain < a.chain) {
        merged.push_back(b);
        ++j;
      } else {
        merged.push_back({a.chain, std::max(a.len, b.len)});
        ++i;
        ++j;
      }
    }
    merged.insert(merged.end(), entries_.begin() + static_cast<long>(i),
                  entries_.end());
    merged.insert(merged.end(),
                  other.entries_.begin() + static_cast<long>(j),
                  other.entries_.end());
    entries_ = std::move(merged);
  }

  /// Raise the covered prefix of one chain to at least `len`.
  void raise(std::int32_t chain, std::int32_t len) {
    if (saturated_) return;
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), chain,
        [](const HbEntry& e, std::int32_t c) { return e.chain < c; });
    if (it != entries_.end() && it->chain == chain)
      it->len = std::max(it->len, len);
    else
      entries_.insert(it, {chain, len});
  }

  /// Drop the entry table and mark the clock saturated. Deterministic:
  /// whether a clock saturates depends only on its predecessors' final
  /// clocks and the budget, never on thread schedule.
  void saturate() {
    saturated_ = true;
    entries_.clear();
    entries_.shrink_to_fit();
  }

  /// Heap bytes held by the entry table (for the obs gauge).
  [[nodiscard]] std::int64_t memory_bytes() const {
    return static_cast<std::int64_t>(entries_.capacity() *
                                     sizeof(HbEntry));
  }

 private:
  std::vector<HbEntry> entries_;
  bool saturated_ = false;
};

}  // namespace logstruct::order
