#pragma once

/// \file stats.hpp
/// Quantitative summaries of a logical structure.
///
/// The paper's evaluation is visual; these statistics give the figure
/// harnesses checkable numbers for the same claims: structure width and
/// occupancy (Figs. 8/10 reordering quality), the per-phase table
/// (Figs. 16/20 phase patterns), and step-range overlap between phases
/// (Fig. 24 missing-dependency effect).

#include <cstdint>
#include <vector>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::order {

struct StructureStats {
  std::int32_t num_phases = 0;
  std::int32_t app_phases = 0;
  std::int32_t runtime_phases = 0;
  std::int32_t width = 0;  ///< max global step + 1
  double avg_phase_height = 0;
  /// Mean events per occupied global step: higher = more parallel
  /// structure recovered (the visual "compactness" of Figs. 8/10).
  double avg_occupancy = 0;
  /// Pairs of same-chare events sharing a global step; 0 iff the phase
  /// DAG properties did their job.
  std::int64_t chare_step_violations = 0;
  std::int32_t order_conflicts = 0;
  std::int32_t initial_partitions = 0;
  std::int64_t merges = 0;
};

StructureStats compute_stats(const trace::Trace& trace,
                             const LogicalStructure& ls);

struct PhaseStat {
  std::int32_t id = 0;
  bool runtime = false;
  std::int32_t events = 0;
  std::int32_t chares = 0;
  std::int32_t leap = 0;
  std::int32_t offset = 0;
  std::int32_t height = 0;
};

/// One row per phase, ordered by (offset, id).
std::vector<PhaseStat> phase_table(const trace::Trace& trace,
                                   const LogicalStructure& ls);

/// Fraction of phase p's global-step range also covered by phase q
/// (0 = disjoint, 1 = p fully inside q's range).
double step_overlap(const LogicalStructure& ls, std::int32_t p,
                    std::int32_t q);

/// Mean over chares of events/(span of occupied steps) inside one phase —
/// 1.0 means every chare's events sit on consecutive steps.
double phase_compactness(const trace::Trace& trace,
                         const LogicalStructure& ls, std::int32_t phase);

/// One classification character per phase in offset order — the compact
/// "phase pattern" the figure harnesses compare against the paper:
///   'r' runtime phase; 'a' abstracted-collective phase (height 1 in a
///   trace with collectives); 't' two-step control phase (height 1, two
///   events per chare); 'p' everything else (point-to-point work).
std::string phase_signature(const trace::Trace& trace,
                            const LogicalStructure& ls);

/// Wall-clock extent of one recovered phase: the earliest and latest
/// event timestamps among its events. Feeds the metrics layer's
/// phase-window slicing (metrics/windows.hpp), where a phase's extent is
/// the denominator of its efficiency ratios.
struct PhaseExtent {
  trace::TimeNs begin = 0;
  trace::TimeNs end = 0;  ///< inclusive latest event time
  [[nodiscard]] trace::TimeNs span() const { return end - begin; }
};

/// One extent per phase, indexed by phase id. Empty phases (impossible
/// after finalize, but tolerated) get begin == end == 0.
std::vector<PhaseExtent> phase_extents(const trace::Trace& trace,
                                       const PhaseResult& phases);

/// A detected repetition in a phase signature: `lead` + `unit` x `repeats`
/// reconstructs the input exactly. Iterative applications expose their
/// iteration structure this way (LULESH-Charm++: lead "p", unit "ppr").
struct PhasePattern {
  std::string lead;
  std::string unit;
  std::int32_t repeats = 0;  ///< 0 = no repetition found (unit empty)
};

/// Find the repetition with the shortest unit (ties: shortest lead) that
/// covers the signature with at least `min_repeats` copies.
PhasePattern detect_pattern(const std::string& signature,
                            std::int32_t min_repeats = 2);

}  // namespace logstruct::order
