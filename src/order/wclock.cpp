#include "order/wclock.hpp"

#include <unordered_map>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::order {

std::vector<std::int64_t> compute_w(const trace::Trace& trace,
                                    const PhaseResult& phases,
                                    const BlockUnits& units,
                                    const StepOptions& opts,
                                    int threads) {
  std::vector<std::int64_t> w(static_cast<std::size_t>(trace.num_events()),
                              0);

  // Collective membership: event -> collective index.
  std::unordered_map<trace::EventId, std::int32_t> coll_of;
  for (std::size_t c = 0; c < trace.collectives().size(); ++c) {
    for (trace::EventId e : trace.collectives()[c].sends)
      coll_of[e] = static_cast<std::int32_t>(c);
    for (trace::EventId e : trace.collectives()[c].recvs)
      coll_of[e] = static_cast<std::int32_t>(c);
  }

  // Each iteration writes w only at this phase's events and reads w only
  // at same-phase senders, so the fan-out is race-free and deterministic.
  util::parallel_for(threads, phases.num_phases(), [&](std::int64_t p) {
    const auto ph = static_cast<std::int32_t>(p);
    // Per-unit last w (Charm++ mode), per-chare max receive w (MPI mode),
    // per-collective max send w — all scoped to this phase.
    std::unordered_map<trace::BlockId, std::int64_t> unit_last;
    std::unordered_map<trace::ChareId, std::int64_t> chare_recv_max;
    std::unordered_map<std::int32_t, std::int64_t> coll_send_max;

    for (trace::EventId e : phases.events[static_cast<std::size_t>(ph)]) {
      const trace::Event& ev = trace.event(e);
      const trace::BlockId unit =
          units.unit_of_event[static_cast<std::size_t>(e)];
      std::int64_t value = 0;

      if (ev.kind == trace::EventKind::Send) {
        if (opts.mpi_mode) {
          auto it = chare_recv_max.find(ev.chare);
          value = it == chare_recv_max.end() ? 0 : it->second + 1;
        } else {
          auto it = unit_last.find(unit);
          value = it == unit_last.end() ? 0 : it->second + 1;
        }
        auto coll = coll_of.find(e);
        if (coll != coll_of.end()) {
          auto& best = coll_send_max[coll->second];
          best = std::max(best, value);
        }
      } else {  // Recv
        std::int64_t base = -1;
        if (ev.partner != trace::kNone &&
            phases.phase_of_event[static_cast<std::size_t>(ev.partner)] ==
                ph) {
          base = w[static_cast<std::size_t>(ev.partner)];
        }
        auto coll = coll_of.find(e);
        if (coll != coll_of.end()) {
          auto it = coll_send_max.find(coll->second);
          if (it != coll_send_max.end()) base = std::max(base, it->second);
        }
        value = base + 1;  // base == -1 (untraced / cross-phase) -> 0
        if (!opts.mpi_mode) {
          auto it = unit_last.find(unit);
          if (it != unit_last.end()) value = std::max(value, it->second + 1);
        }
        if (opts.mpi_mode) {
          auto& best = chare_recv_max[ev.chare];
          auto it = chare_recv_max.find(ev.chare);
          best = it == chare_recv_max.end() ? value : std::max(best, value);
        }
      }

      w[static_cast<std::size_t>(e)] = value;
      if (!opts.mpi_mode) unit_last[unit] = value;
    }
  });
  return w;
}

}  // namespace logstruct::order
