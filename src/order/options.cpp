#include "order/options.hpp"

#include "util/thread_pool.hpp"

namespace logstruct::order {

int Options::effective_threads() const {
  return util::resolve_threads(threads);
}

}  // namespace logstruct::order
