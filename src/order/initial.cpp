#include "order/initial.hpp"

#include <algorithm>
#include <numeric>

#include "obs/progress.hpp"
#include "order/block_units.hpp"
#include "trace/sdag.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::order {

BlockUnits compute_block_units(const trace::Trace& trace,
                               bool sdag_absorption) {
  BlockUnits u;
  if (sdag_absorption) {
    u.rep = trace::compute_sdag_absorption(trace);
  } else {
    u.rep.resize(static_cast<std::size_t>(trace.num_blocks()));
    std::iota(u.rep.begin(), u.rep.end(), 0);
  }
  u.events.assign(static_cast<std::size_t>(trace.num_blocks()), {});
  u.unit_of_event.assign(static_cast<std::size_t>(trace.num_events()),
                         trace::kNone);
  for (trace::BlockId b = 0; b < trace.num_blocks(); ++b) {
    const auto bev = trace.events_of_block(b);
    auto r = static_cast<std::size_t>(u.rep[static_cast<std::size_t>(b)]);
    u.events[r].insert(u.events[r].end(), bev.begin(), bev.end());
    for (trace::EventId e : bev)
      u.unit_of_event[static_cast<std::size_t>(e)] =
          static_cast<trace::BlockId>(r);
  }
  auto by_time = [&trace](trace::EventId a, trace::EventId b) {
    const trace::TimeNs ta = trace.event_time(a);
    const trace::TimeNs tb = trace.event_time(b);
    if (ta != tb) return ta < tb;
    return a < b;
  };
  for (auto& list : u.events) std::sort(list.begin(), list.end(), by_time);
  return u;
}

PartitionGraph build_initial_partitions(const trace::Trace& trace,
                                        const PartitionOptions& opts,
                                        int threads) {
  PartitionGraph pg(trace);
  // Partitioning works on the RAW serial blocks: SDAG absorption (§2.1)
  // contributes happened-before EDGES here (paper Fig. 3 draws the
  // when-relationship as a chare happened-before edge); the event-level
  // merge of a when-execution into its serial only applies to the
  // ordering stage (§3.2).
  BlockUnits units = compute_block_units(trace, /*sdag_absorption=*/false);

  // is_runtime_event walks the event's receiver list, making it the
  // dominant per-event cost of this stage; precompute it in parallel
  // (index-owned writes) and let the serial assembly below read the
  // table, so partition ids come out identical for any thread count.
  // Progress: first half is the parallel is_rt precompute, second half
  // the serial run-splitting assembly; both tick in event units.
  const std::int64_t num_events = trace.num_events();
  obs::Progress progress("order/initial", 2 * num_events);
  std::vector<char> is_rt(static_cast<std::size_t>(trace.num_events()), 0);
  util::parallel_for_chunks(
      threads, trace.num_events(), 8192,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t e = begin; e < end; ++e)
          is_rt[static_cast<std::size_t>(e)] =
              trace.is_runtime_event(static_cast<trace::EventId>(e)) ? 1 : 0;
        obs::Progress::tick(end - begin);
      });

  // Split each block into runs at application/runtime boundaries and
  // chain the runs (edge type 2).
  std::vector<PartId> first_part(units.events.size(), -1);
  std::vector<PartId> last_part(units.events.size(), -1);
  std::int64_t ticked = 0;  // batch progress to keep the loop cheap
  for (std::size_t r = 0; r < units.events.size(); ++r) {
    const auto& events = units.events[r];
    if (events.empty()) continue;
    PartId prev = -1;
    std::size_t i = 0;
    while (i < events.size()) {
      bool kind = is_rt[static_cast<std::size_t>(events[i])] != 0;
      std::size_t j = i + 1;
      if (opts.split_app_runtime) {
        while (j < events.size() &&
               (is_rt[static_cast<std::size_t>(events[j])] != 0) == kind)
          ++j;
      } else {
        j = events.size();
        // Without splitting, the run is "runtime" if anything in it
        // touches the runtime.
        for (std::size_t k = i; k < j && !kind; ++k)
          kind = is_rt[static_cast<std::size_t>(events[k])] != 0;
      }
      PartId p = pg.add_partition(
          std::vector<trace::EventId>(events.begin() +
                                          static_cast<std::ptrdiff_t>(i),
                                      events.begin() +
                                          static_cast<std::ptrdiff_t>(j)),
          kind);
      if (prev != -1) pg.add_edge(prev, p);
      if (first_part[r] == -1) first_part[r] = p;
      prev = p;
      i = j;
    }
    last_part[r] = prev;
    ticked += static_cast<std::int64_t>(events.size());
    if (ticked >= 65536) {
      obs::Progress::tick(ticked);
      ticked = 0;
    }
  }
  if (ticked > 0) obs::Progress::tick(ticked);

  // Edge type 1: remote method invocations.
  trace.for_each_dependency([&](trace::EventId s, trace::EventId rcv) {
    pg.add_edge(pg.part_of(s), pg.part_of(rcv));
  });

  // Edge type 3: SDAG inference. (a) A `when`-triggered execution
  // happened-before the serial it awakened; (b) serial n happened-before
  // the nearest following serial n+1 on the same chare.
  if (opts.sdag_inference) {
    std::vector<trace::BlockId> rep = trace::compute_sdag_absorption(trace);
    for (trace::BlockId b = 0; b < trace.num_blocks(); ++b) {
      auto r = static_cast<std::size_t>(rep[static_cast<std::size_t>(b)]);
      if (r == static_cast<std::size_t>(b)) continue;
      if (last_part[static_cast<std::size_t>(b)] == -1 ||
          first_part[r] == -1)
        continue;
      pg.add_edge(last_part[static_cast<std::size_t>(b)], first_part[r]);
    }
    for (auto [b1, b2] : trace::sdag_happened_before(trace)) {
      if (last_part[static_cast<std::size_t>(b1)] == -1 ||
          first_part[static_cast<std::size_t>(b2)] == -1)
        continue;
      pg.add_edge(last_part[static_cast<std::size_t>(b1)],
                  first_part[static_cast<std::size_t>(b2)]);
    }
  }

  // Message-passing model: per-process physical order is happened-before
  // (§3.4). Strict mode chains every consecutive pair (the Isaacs'13
  // assumption). Relaxed mode reflects the §3.2.1 replay semantics:
  // receives carry no process-order dependency (they may replay earlier),
  // while a send depends on the previous send and every receive between
  // them.
  if (opts.process_order_edges) {
    for (trace::ProcId p = 0; p < trace.num_procs(); ++p) {
      trace::EventId prev = trace::kNone;
      std::vector<trace::EventId> window;  // prev send + later receives
      for (trace::BlockId b : trace.blocks_of_proc(p)) {
        for (trace::EventId e : trace.events_of_block(b)) {
          if (opts.strict_receive_order) {
            if (prev != trace::kNone)
              pg.add_edge(pg.part_of(prev), pg.part_of(e));
            prev = e;
          } else {
            if (trace.event(e).kind == trace::EventKind::Send) {
              for (trace::EventId w : window)
                pg.add_edge(pg.part_of(w), pg.part_of(e));
              window.clear();
              window.push_back(e);
            } else {
              window.push_back(e);
            }
          }
        }
      }
    }
  }

  pg.finalize();
  return pg;
}

}  // namespace logstruct::order
