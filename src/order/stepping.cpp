#include "order/stepping.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/topo.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "order/block_units.hpp"
#include "order/causality.hpp"
#include "order/context.hpp"
#include "order/pass_manager.hpp"
#include "order/wclock.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::order {

namespace {

/// One serial-block unit inside one phase.
struct Unit {
  std::vector<trace::EventId> events;  // in-phase events, time order
  trace::ChareId chare = trace::kNone;
};

/// Comparator state for ordering a chare's units (§3.2.1): w of the
/// initial event, then invoking chare, then recursion into source units,
/// then physical time as the total-order fallback.
class UnitOrder {
 public:
  UnitOrder(const trace::Trace& trace, const BlockUnits& units,
            const std::vector<std::int64_t>& w,
            const std::vector<Unit>& all_units,
            const std::unordered_map<trace::BlockId, std::int32_t>&
                unit_index)
      : trace_(trace),
        units_(units),
        w_(w),
        all_units_(all_units),
        unit_index_(unit_index) {}

  bool less(std::int32_t a, std::int32_t b) const {
    int c = compare(a, b, /*depth=*/8);
    if (c != 0) return c < 0;
    // Total-order fallback: physical time, then event id.
    const trace::EventId ea = first(a);
    const trace::EventId eb = first(b);
    const trace::TimeNs ta = trace_.event_time(ea);
    const trace::TimeNs tb = trace_.event_time(eb);
    if (ta != tb) return ta < tb;
    return ea < eb;
  }

 private:
  [[nodiscard]] trace::EventId first(std::int32_t u) const {
    return all_units_[static_cast<std::size_t>(u)].events.front();
  }

  /// The unit's replay position: the maximum w over its receives — the
  /// binding dependency that lets it start. Charm++ units have (at most)
  /// one receive, and it is the first event, so this matches the paper's
  /// "w of the initial event"; multi-dependency task units must sort by
  /// their last-satisfied dependency or the sequence order can contradict
  /// the message order.
  [[nodiscard]] std::int64_t unit_w(std::int32_t u) const {
    const auto& events = all_units_[static_cast<std::size_t>(u)].events;
    std::int64_t best = w_[static_cast<std::size_t>(events.front())];
    for (trace::EventId e : events) {
      if (trace_.event(e).kind == trace::EventKind::Recv)
        best = std::max(best, w_[static_cast<std::size_t>(e)]);
    }
    return best;
  }

  /// The chare that invoked this unit: the partner chare of its initial
  /// receive (kNone -> -1).
  [[nodiscard]] std::int32_t invoker_chare(std::int32_t u) const {
    const trace::Event& ev = trace_.event(first(u));
    if (ev.kind != trace::EventKind::Recv || ev.partner == trace::kNone)
      return -1;
    return trace_.event(ev.partner).chare;
  }

  /// The unit holding the matching send of this unit's initial receive
  /// (-1 if none or not materialized in this phase).
  [[nodiscard]] std::int32_t invoker_unit(std::int32_t u) const {
    const trace::Event& ev = trace_.event(first(u));
    if (ev.kind != trace::EventKind::Recv || ev.partner == trace::kNone)
      return -1;
    trace::BlockId b =
        units_.unit_of_event[static_cast<std::size_t>(ev.partner)];
    auto it = unit_index_.find(b);
    return it == unit_index_.end() ? -1 : it->second;
  }

  int compare(std::int32_t a, std::int32_t b, int depth) const {
    std::int64_t wa = unit_w(a);
    std::int64_t wb = unit_w(b);
    if (wa != wb) return wa < wb ? -1 : 1;
    std::int32_t ia = invoker_chare(a);
    std::int32_t ib = invoker_chare(b);
    if (ia != ib) return ia < ib ? -1 : 1;
    if (depth > 0) {
      std::int32_t ua = invoker_unit(a);
      std::int32_t ub = invoker_unit(b);
      if (ua >= 0 && ub >= 0 && ua != ub && ua != a && ub != b)
        return compare(ua, ub, depth - 1);
    }
    return 0;
  }

  const trace::Trace& trace_;
  const BlockUnits& units_;
  const std::vector<std::int64_t>& w_;
  const std::vector<Unit>& all_units_;
  const std::unordered_map<trace::BlockId, std::int32_t>& unit_index_;
};

/// "reorder" pass (§3.2.1): fill ctx.w with the idealized-replay clock,
/// or zeros when reordering is disabled (physical-time stepping).
void reorder_pass(OrderContext& ctx) {
  const Options& opts = ctx.options();
  if (opts.step.reorder) {
    const int threads = opts.step.threads >= 1 ? opts.step.threads
                                               : opts.effective_threads();
    ctx.w = compute_w(ctx.trace(), ctx.phases,
                      ctx.units(opts.partition.sdag_inference), opts.step,
                      threads);
  } else {
    ctx.w.assign(static_cast<std::size_t>(ctx.trace().num_events()), 0);
  }
}

/// "stepping" pass (§3.2.2-§3.3): order units per chare, Kahn-assign
/// local steps per phase, stitch global steps via phase offsets.
void stepping_pass(OrderContext& ctx) {
  const trace::Trace& trace = ctx.trace();
  const Options& opts = ctx.options();
  PhaseResult& phases = ctx.phases;

  OBS_SPAN(span, "order/stepping");
  span.attr("phases", phases.num_phases());
  span.attr("events", trace.num_events());
  LogicalStructure& out = ctx.structure;
  const BlockUnits& units = ctx.units(opts.partition.sdag_inference);

  out.w = std::move(ctx.w);
  if (out.w.empty())
    out.w.assign(static_cast<std::size_t>(trace.num_events()), 0);

  // Collective send lists per event for step dependencies.
  std::unordered_map<trace::EventId, std::int32_t> coll_of;
  for (std::size_t c = 0; c < trace.collectives().size(); ++c) {
    for (trace::EventId e : trace.collectives()[c].recvs)
      coll_of[e] = static_cast<std::int32_t>(c);
  }

  out.local_step.assign(static_cast<std::size_t>(trace.num_events()), 0);
  out.global_step.assign(static_cast<std::size_t>(trace.num_events()), 0);
  out.phase_offset.assign(static_cast<std::size_t>(phases.num_phases()), 0);
  out.phase_height.assign(static_cast<std::size_t>(phases.num_phases()), 0);

  // Per-chare sequences per phase; stitched globally after offsets.
  std::vector<std::vector<std::vector<trace::EventId>>> phase_chare_seq(
      static_cast<std::size_t>(phases.num_phases()));

  std::vector<trace::EventId> seq_pred(
      static_cast<std::size_t>(trace.num_events()), trace::kNone);
  std::vector<std::int32_t> conflicts(
      static_cast<std::size_t>(phases.num_phases()), 0);

  // Phases are mutually independent here: every vector indexed below is
  // written at per-phase or per-event (single owning phase) positions, so
  // the loop parallelizes without synchronization (§3.3).
  auto process_phase = [&](std::int32_t ph) {
    const auto& phase_events = phases.events[static_cast<std::size_t>(ph)];

    // Build units restricted to this phase.
    std::vector<Unit> phase_units;
    std::unordered_map<trace::BlockId, std::int32_t> unit_index;
    for (trace::EventId e : phase_events) {
      trace::BlockId u = units.unit_of_event[static_cast<std::size_t>(e)];
      auto [it, inserted] = unit_index.try_emplace(
          u, static_cast<std::int32_t>(phase_units.size()));
      if (inserted) {
        phase_units.emplace_back();
        phase_units.back().chare = trace.event(e).chare;
      }
      phase_units[static_cast<std::size_t>(it->second)].events.push_back(e);
    }

    // Group units by chare and order them.
    std::unordered_map<trace::ChareId, std::vector<std::int32_t>> by_chare;
    for (std::size_t u = 0; u < phase_units.size(); ++u)
      by_chare[phase_units[u].chare].push_back(static_cast<std::int32_t>(u));

    UnitOrder order(trace, units, out.w, phase_units, unit_index);
    auto& seqs = phase_chare_seq[static_cast<std::size_t>(ph)];
    for (auto& [chare, list] : by_chare) {
      if (opts.step.reorder) {
        std::sort(list.begin(), list.end(),
                  [&order](std::int32_t a, std::int32_t b) {
                    return order.less(a, b);
                  });
      } else {
        std::sort(list.begin(), list.end(),
                  [&](std::int32_t a, std::int32_t b) {
                    trace::EventId ea = phase_units[
                        static_cast<std::size_t>(a)].events.front();
                    trace::EventId eb = phase_units[
                        static_cast<std::size_t>(b)].events.front();
                    const trace::TimeNs ta = trace.event_time(ea);
                    const trace::TimeNs tb = trace.event_time(eb);
                    if (ta != tb) return ta < tb;
                    return ea < eb;
                  });
      }
      std::vector<trace::EventId> seq;
      for (std::int32_t u : list) {
        for (trace::EventId e :
             phase_units[static_cast<std::size_t>(u)].events) {
          if (!seq.empty())
            seq_pred[static_cast<std::size_t>(e)] = seq.back();
          seq.push_back(e);
        }
      }
      seqs.push_back(std::move(seq));
    }

    // Local step assignment: Kahn over sequence + message dependencies.
    std::unordered_map<trace::EventId, std::int32_t> indeg;
    std::unordered_map<trace::EventId, std::vector<trace::EventId>> succ;
    auto in_phase = [&](trace::EventId e) {
      return phases.phase_of_event[static_cast<std::size_t>(e)] == ph;
    };
    for (trace::EventId e : phase_events) indeg[e] = 0;
    auto add_dep = [&](trace::EventId from, trace::EventId to) {
      succ[from].push_back(to);
      ++indeg[to];
    };
    for (trace::EventId e : phase_events) {
      if (seq_pred[static_cast<std::size_t>(e)] != trace::kNone)
        add_dep(seq_pred[static_cast<std::size_t>(e)], e);
      const trace::Event& ev = trace.event(e);
      if (ev.kind == trace::EventKind::Recv) {
        if (ev.partner != trace::kNone && in_phase(ev.partner))
          add_dep(ev.partner, e);
        auto coll = coll_of.find(e);
        if (coll != coll_of.end()) {
          for (trace::EventId s :
               trace.collectives()[static_cast<std::size_t>(coll->second)]
                   .sends) {
            if (in_phase(s)) add_dep(s, e);
          }
        }
      }
    }

    std::vector<trace::EventId> ready;
    for (trace::EventId e : phase_events)
      if (indeg[e] == 0) ready.push_back(e);
    std::size_t done = 0;
    std::unordered_map<trace::EventId, bool> processed;
    auto settle = [&](trace::EventId e) {
      if (processed[e]) return;
      std::int32_t step = 0;
      if (seq_pred[static_cast<std::size_t>(e)] != trace::kNone) {
        step = std::max(
            step,
            out.local_step[static_cast<std::size_t>(
                seq_pred[static_cast<std::size_t>(e)])] + 1);
      }
      const trace::Event& ev = trace.event(e);
      if (ev.kind == trace::EventKind::Recv) {
        if (ev.partner != trace::kNone && in_phase(ev.partner))
          step = std::max(
              step,
              out.local_step[static_cast<std::size_t>(ev.partner)] + 1);
        auto coll = coll_of.find(e);
        if (coll != coll_of.end()) {
          for (trace::EventId s :
               trace.collectives()[static_cast<std::size_t>(coll->second)]
                   .sends) {
            if (in_phase(s))
              step = std::max(
                  step, out.local_step[static_cast<std::size_t>(s)] + 1);
          }
        }
      }
      out.local_step[static_cast<std::size_t>(e)] = step;
      processed[e] = true;
      ++done;
      for (trace::EventId nxt : succ[e]) {
        if (--indeg[nxt] == 0) ready.push_back(nxt);
      }
    };
    std::size_t head = 0;
    while (done < phase_events.size()) {
      if (head < ready.size()) {
        settle(ready[head++]);
        continue;
      }
      // Reordering produced a cyclic constraint (possible only with
      // pathological unit orders): break it at the earliest unprocessed
      // event and keep draining normally.
      trace::EventId pick = trace::kNone;
      for (trace::EventId e : phase_events) {
        if (!processed[e] &&
            (pick == trace::kNone ||
             trace.event_time(e) < trace.event_time(pick)))
          pick = e;
      }
      LS_CHECK(pick != trace::kNone);
      ++conflicts[static_cast<std::size_t>(ph)];
      settle(pick);
    }

    if (conflicts[static_cast<std::size_t>(ph)] > 0) {
      // The cycle-breaking fallback can leave constraints unmet. Relax to
      // a fixpoint: every pass only raises steps, so it terminates, and
      // afterwards both invariants (strictly increasing along the chare
      // sequence, receive after send) hold again.
      bool changed = true;
      while (changed) {
        changed = false;
        for (trace::EventId e : phase_events) {
          std::int32_t step = out.local_step[static_cast<std::size_t>(e)];
          if (seq_pred[static_cast<std::size_t>(e)] != trace::kNone) {
            step = std::max(
                step, out.local_step[static_cast<std::size_t>(
                          seq_pred[static_cast<std::size_t>(e)])] + 1);
          }
          const trace::Event& ev = trace.event(e);
          if (ev.kind == trace::EventKind::Recv) {
            if (ev.partner != trace::kNone && in_phase(ev.partner))
              step = std::max(
                  step,
                  out.local_step[static_cast<std::size_t>(ev.partner)] + 1);
            auto coll = coll_of.find(e);
            if (coll != coll_of.end()) {
              for (trace::EventId s2 :
                   trace.collectives()[static_cast<std::size_t>(
                       coll->second)].sends) {
                if (in_phase(s2))
                  step = std::max(
                      step,
                      out.local_step[static_cast<std::size_t>(s2)] + 1);
              }
            }
          }
          if (step != out.local_step[static_cast<std::size_t>(e)]) {
            out.local_step[static_cast<std::size_t>(e)] = step;
            changed = true;
          }
        }
      }
    }

    for (trace::EventId e : phase_events)
      out.phase_height[static_cast<std::size_t>(ph)] = std::max(
          out.phase_height[static_cast<std::size_t>(ph)],
          out.local_step[static_cast<std::size_t>(e)]);
  };

  // step.threads >= 1 is an explicit per-stage override; 0 follows the
  // pipeline-wide Options::threads (and through it --threads).
  const int threads = opts.step.threads >= 1 ? opts.step.threads
                                             : opts.effective_threads();
  span.attr("threads", threads);
  obs::Progress progress("order/stepping", phases.num_phases());
  util::parallel_for(threads, phases.num_phases(), [&](std::int64_t ph) {
    process_phase(static_cast<std::int32_t>(ph));
    obs::Progress::tick();
  });
  for (std::int32_t c : conflicts) out.order_conflicts += c;

  // Phase offsets along the phase DAG.
  for (graph::NodeId p : graph::topological_order(phases.dag)) {
    std::int32_t offset = 0;
    for (graph::NodeId pred : phases.dag.predecessors(p)) {
      offset = std::max(
          offset, out.phase_offset[static_cast<std::size_t>(pred)] +
                      out.phase_height[static_cast<std::size_t>(pred)] + 1);
    }
    out.phase_offset[static_cast<std::size_t>(p)] = offset;
  }

  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    std::int32_t ph = phases.phase_of_event[static_cast<std::size_t>(e)];
    out.global_step[static_cast<std::size_t>(e)] =
        out.phase_offset[static_cast<std::size_t>(ph)] +
        out.local_step[static_cast<std::size_t>(e)];
    out.max_step = std::max(out.max_step,
                            out.global_step[static_cast<std::size_t>(e)]);
  }

  // Global per-chare sequences: phases in offset order.
  out.chare_sequence.assign(static_cast<std::size_t>(trace.num_chares()),
                            {});
  {
    std::vector<std::int32_t> phase_order(
        static_cast<std::size_t>(phases.num_phases()));
    for (std::size_t i = 0; i < phase_order.size(); ++i)
      phase_order[i] = static_cast<std::int32_t>(i);
    std::sort(phase_order.begin(), phase_order.end(),
              [&](std::int32_t a, std::int32_t b) {
                if (out.phase_offset[static_cast<std::size_t>(a)] !=
                    out.phase_offset[static_cast<std::size_t>(b)])
                  return out.phase_offset[static_cast<std::size_t>(a)] <
                         out.phase_offset[static_cast<std::size_t>(b)];
                return a < b;
              });
    for (std::int32_t ph : phase_order) {
      for (const auto& seq :
           phase_chare_seq[static_cast<std::size_t>(ph)]) {
        if (seq.empty()) continue;
        trace::ChareId c = trace.event(seq.front()).chare;
        auto& global = out.chare_sequence[static_cast<std::size_t>(c)];
        global.insert(global.end(), seq.begin(), seq.end());
      }
    }
  }
  out.pos_in_chare.assign(static_cast<std::size_t>(trace.num_events()), 0);
  for (const auto& seq : out.chare_sequence) {
    for (std::size_t i = 0; i < seq.size(); ++i)
      out.pos_in_chare[static_cast<std::size_t>(seq[i])] =
          static_cast<std::int32_t>(i);
  }

  out.phases = std::move(phases);
  span.attr("max_step", out.max_step);
  span.attr("order_conflicts", out.order_conflicts);
  OBS_COUNTER_ADD("order/stepping/order_conflicts", out.order_conflicts);
}

}  // namespace

void run_stepping_pipeline(OrderContext& ctx,
                           std::vector<PassRecord>* records) {
  PassManager pm(ctx.options().partition.check_passes);
  pm.add({.name = "reorder",
          .run = reorder_pass,
          .parallelism = Parallelism::kPhaseParallel});
  pm.add({.name = "stepping",
          .run = stepping_pass,
          .own_span = true,
          .parallelism = Parallelism::kPhaseParallel});
  // Opt-in second oracle (order/causality.hpp): after stepping, verify
  // the finished structure against the vector-clock happened-before
  // relation; abort with event/edge provenance on the first lie.
  pm.add({.name = "check_causality",
          .run = check_causality_pass,
          .enabled =
              ctx.options().check_causality || causality_check_forced(),
          .parallelism = Parallelism::kPhaseParallel});
  pm.run(ctx);
  if (records)
    records->insert(records->end(), pm.records().begin(),
                    pm.records().end());
}

LogicalStructure assign_steps(const trace::Trace& trace, PhaseResult phases,
                              const Options& opts) {
  OrderContext ctx(trace, opts);
  ctx.phases = std::move(phases);
  run_stepping_pipeline(ctx);
  return std::move(ctx.structure);
}

LogicalStructure extract_structure(const trace::Trace& trace,
                                   const Options& opts) {
  OBS_SPAN(span, "order/extract_structure");
  span.attr("events", trace.num_events());
  OrderContext ctx(trace, opts);
  run_partition_pipeline(ctx, nullptr, nullptr);
  run_stepping_pipeline(ctx);
  return std::move(ctx.structure);
}

}  // namespace logstruct::order
