#pragma once

/// \file causality.hpp
/// The vector-clock causality engine: a second ordering oracle.
///
/// The happened-before relation of a trace is the transitive closure of
/// (a) the total order of events inside each serial block and (b) the
/// rows of the frozen dependency table (point-to-point matches, broadcast
/// fan-outs, collective sends x recvs). Everything the pipeline recovers
/// — partition-graph edges, leaps, stepping placements — is a claim about
/// this relation, and the 12 golden hashes can only detect when a claim
/// regresses, never *explain* it. The CausalityOracle answers hb(a, b)
/// exactly and independently of the pipeline, so property tests can use
/// it (not the hashes) as ground truth, and the opt-in `check_causality`
/// pass can point at the precise event pair a broken pass reordered.
///
/// Construction is one parallel topological sweep over the reverse-CSR
/// IncomingDeps view: Kahn level waves (level = longest predecessor
/// chain) followed by a per-wave clock merge. Every event's clock is a
/// pure function of its predecessors' final clocks, so the result is
/// bit-identical for any thread count on either storage backend. Clocks
/// are sparse and clamped (order/hbclock.hpp): events whose merged clock
/// would exceed `max_clock_entries` saturate, and queries against
/// saturated events fall back to a level-pruned backward walk that
/// consults stored clocks en route — exact in all cases, memory bounded
/// in all cases. See docs/CAUSALITY.md.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "order/hbclock.hpp"
#include "order/options.hpp"
#include "order/stepping.hpp"
#include "trace/diagnostics.hpp"
#include "trace/trace.hpp"

namespace logstruct::order {

/// Phase-DAG ancestor bitsets (each phase includes itself), computed in
/// topological order: anc(q) = {q} U anc(p) over every DAG edge p -> q.
/// O(P^2 / 64) words — phases number in the hundreds even on large
/// traces — and a reachability query is one bit test. Shared by the
/// causality checker (phase placement of dependency edges) and the
/// concurrency metric (causally-unordered phase pairs).
class PhaseReachability {
 public:
  explicit PhaseReachability(const graph::Digraph& dag);

  /// True iff p == q or a DAG path p -> ... -> q exists.
  [[nodiscard]] bool reaches(std::int32_t p, std::int32_t q) const {
    const std::uint64_t* row =
        bits_.data() + static_cast<std::size_t>(q) * words_;
    return (row[static_cast<std::size_t>(p) / 64] >> (p % 64)) & 1u;
  }

  /// True iff neither phase reaches the other: the phases are causally
  /// concurrent and could have executed in either order.
  [[nodiscard]] bool concurrent(std::int32_t p, std::int32_t q) const {
    return p != q && !reaches(p, q) && !reaches(q, p);
  }

  [[nodiscard]] std::int32_t num_phases() const { return num_; }

 private:
  std::int32_t num_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

struct CausalityOptions {
  /// Per-event clock entry budget; an event whose merged clock would
  /// carry more chains saturates (exact queries via the fallback walk).
  /// The default keeps million-event traces near events x 32 x 8 bytes
  /// worst case while leaving typical stencil traces unclamped.
  std::int32_t max_clock_entries = 32;

  /// Worker threads for the level waves. 0 = util::default_parallelism().
  int threads = 0;
};

class CausalityOracle {
 public:
  explicit CausalityOracle(const trace::Trace& trace,
                           const CausalityOptions& opts = {});

  /// Exact happened-before: true iff a != b and there is a path from a
  /// to b through intra-block order and dependency rows. Thread-safe
  /// (const; the fallback walk allocates its own scratch).
  [[nodiscard]] bool hb(trace::EventId a, trace::EventId b) const;

  /// True iff neither hb(a, b) nor hb(b, a): the pair is causally
  /// concurrent and could have executed in either order.
  [[nodiscard]] bool concurrent(trace::EventId a, trace::EventId b) const {
    return a != b && !hb(a, b) && !hb(b, a);
  }

  /// Topological level (longest predecessor chain, >= 1). A cheap
  /// necessary condition: hb(a, b) implies level(a) < level(b).
  [[nodiscard]] std::int32_t level(trace::EventId e) const {
    return level_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] std::int32_t max_level() const { return max_level_; }

  /// Chain coordinates of an event (chain = serial block, or a synthetic
  /// singleton chain for blockless events).
  [[nodiscard]] std::int32_t chain_of(trace::EventId e) const {
    return chain_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] std::int32_t pos_in_chain(trace::EventId e) const {
    return pos_[static_cast<std::size_t>(e)];
  }

  [[nodiscard]] const HbClock& clock(trace::EventId e) const {
    return clocks_[static_cast<std::size_t>(e)];
  }

  /// Events whose clock saturated under the entry budget.
  [[nodiscard]] std::int64_t saturated_events() const { return saturated_; }
  /// Stored clock entries across all events.
  [[nodiscard]] std::int64_t total_clock_entries() const {
    return total_entries_;
  }
  /// Heap bytes held by the clock tables.
  [[nodiscard]] std::int64_t memory_bytes() const { return memory_bytes_; }
  [[nodiscard]] std::int32_t num_events() const {
    return static_cast<std::int32_t>(level_.size());
  }

 private:
  /// Direct predecessors of e: intra-chain predecessor (implicit) plus
  /// the incoming dependency senders [pred_begin_[e], pred_begin_[e+1]).
  [[nodiscard]] bool walk_hb(trace::EventId a, trace::EventId b) const;

  const trace::Trace* trace_;
  std::vector<std::int32_t> chain_;
  std::vector<std::int32_t> pos_;
  std::vector<trace::EventId> chain_pred_;  ///< kNone at chain heads
  std::vector<std::int64_t> pred_begin_;    ///< CSR over pred_senders_
  std::vector<trace::EventId> pred_senders_;
  std::vector<std::int32_t> level_;
  std::vector<HbClock> clocks_;
  std::int32_t max_level_ = 0;
  std::int64_t saturated_ = 0;
  std::int64_t total_entries_ = 0;
  std::int64_t memory_bytes_ = 0;
};

/// One structure claim the recovered output makes that contradicts
/// happened-before, with exact provenance.
struct CausalityViolation {
  enum class Kind : std::uint8_t {
    StepOrder,       ///< dep edge (a, b) but global_step(a) >= step(b)
    PhaseOrder,      ///< dep edge crosses phases with no phase-DAG path
    BlockStepOrder,  ///< intra-block successor stepped before predecessor
    BlockPhaseOrder, ///< intra-block successor's phase not reachable
    LeapOrder,       ///< phase-DAG edge (p, q) but leap(p) >= leap(q)
    OffsetOrder,     ///< phase-DAG edge but offsets overlap
  };
  Kind kind = Kind::StepOrder;
  trace::EventId a = trace::kNone;  ///< kNone for phase-level violations
  trace::EventId b = trace::kNone;
  std::int32_t phase_a = -1;
  std::int32_t phase_b = -1;
  std::string detail;  ///< human-readable specifics (steps, leaps, ...)
};

const char* causality_violation_kind_name(CausalityViolation::Kind kind);

/// What check_causality() verified and what it found. Violations are
/// capped at `max_stored` (counts stay exact).
struct CausalityReport {
  std::int64_t edges_checked = 0;      ///< dep rows + intra-block pairs
  std::int64_t phase_edges_checked = 0;
  std::int64_t skipped_degraded = 0;   ///< edges quarantined, not judged
  std::int64_t skipped_non_hb = 0;     ///< rows the oracle refused to certify
  std::int64_t total_violations = 0;
  std::vector<CausalityViolation> violations;  ///< first max_stored

  [[nodiscard]] bool clean() const { return total_violations == 0; }

  /// Mirror the violations into a trace::RecoveryReport as
  /// DiagCode::CausalityViolation diagnostics (structured provenance for
  /// sidecars and tests).
  void to_diagnostics(trace::RecoveryReport& report) const;
};

/// Verify that a recovered LogicalStructure respects happened-before.
/// Sound and complete over the *generating* HB edges: every dependency
/// row and every consecutive intra-block pair is checked for step
/// monotonicity and phase reachability, and every phase-DAG edge for
/// leap and offset monotonicity; transitivity extends the guarantee to
/// all HB pairs, so a clean report means no HB pair is mis-ordered.
/// Edges touching a degraded phase are skipped and counted (repaired
/// dependencies are not ground truth). `max_stored` caps the stored
/// violation list.
CausalityReport check_causality(const trace::Trace& trace,
                                const LogicalStructure& ls,
                                std::size_t max_stored = 64);

/// Same, against an already-built oracle (the pass reuses the oracle it
/// constructed for the `order/causality/*` counters).
CausalityReport check_causality(const trace::Trace& trace,
                                const LogicalStructure& ls,
                                const CausalityOracle& oracle,
                                std::size_t max_stored = 64);

class OrderContext;

/// The "check_causality" pass body: builds the oracle over ctx.trace()
/// (publishing the `order/causality/*` counters), runs check_causality
/// over ctx.structure, and aborts with the first violations' provenance
/// on stderr when the structure is not causality-clean — the same
/// fail-loud contract as LOGSTRUCT_CHECK_PASSES. Registered by
/// run_stepping_pipeline after "stepping"; enabled by
/// Options::check_causality or the LOGSTRUCT_CHECK_CAUSALITY env var.
void check_causality_pass(OrderContext& ctx);

/// True when LOGSTRUCT_CHECK_CAUSALITY forces the pass on (same
/// convention as PassManager::invariant_check_forced: set and not "0").
bool causality_check_forced();

}  // namespace logstruct::order
