#pragma once

/// \file phases.hpp
/// Phase-finding driver (paper §3.1): registers the partition passes with
/// the PassManager, runs them over an OrderContext, and returns the phases
/// plus the phase DAG.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "order/options.hpp"
#include "order/pass.hpp"
#include "trace/trace.hpp"

namespace logstruct::order {

class OrderContext;
class PassManager;

/// Wall-clock seconds per pipeline stage (Fig. 19's analysis: the paper
/// attributes the super-linear tail to the §3.1.4 merge).
struct PipelineTimings {
  double initial = 0;
  double dependency_merge = 0;
  double repair = 0;
  double neighbor = 0;
  double infer_sources = 0;
  double leap_property = 0;   ///< §3.1.4 merge/order fixpoint
  double chare_paths = 0;
  double finalize = 0;
  [[nodiscard]] double total() const {
    return initial + dependency_merge + repair + neighbor + infer_sources +
           leap_property + chare_paths + finalize;
  }
};

struct PhaseResult {
  /// Per phase: its events, time-sorted. Phases are numbered by
  /// (leap, earliest event) so ids read roughly in execution order.
  std::vector<std::vector<trace::EventId>> events;
  std::vector<bool> runtime;             ///< runtime phase flag (§3.1)
  std::vector<std::int32_t> phase_of_event;
  graph::Digraph dag;                    ///< happened-before between phases
  std::vector<std::int32_t> leap;        ///< final leap per phase

  /// Quarantine flags: phase touches a chare whose dependencies were
  /// altered by trace-level recovery (Trace::is_degraded_chare). Its
  /// structure is a best-effort reconstruction, not ground truth; metrics
  /// carry the count through so degraded regions stay visible. Empty
  /// (like `runtime` is not) only before finalize runs.
  std::vector<bool> degraded;
  std::int32_t degraded_phases = 0;      ///< number of flagged phases

  // Pipeline statistics (bench/micro reporting).
  std::int32_t initial_partitions = 0;
  std::int64_t merges = 0;

  [[nodiscard]] std::int32_t num_phases() const {
    return static_cast<std::int32_t>(events.size());
  }

  [[nodiscard]] bool is_degraded(std::int32_t phase) const {
    return !degraded.empty() && degraded[static_cast<std::size_t>(phase)];
  }
};

/// Register the §3.1 partition passes (initial, dependency merge, repair,
/// neighbor serial, source-order inference, leap property, chare paths,
/// finalize) onto pm. Options gate each pass; the "finalize" pass fills
/// ctx.phases. Cycle merges run inside each pass per the paper's
/// discipline.
void register_partition_passes(PassManager& pm, const PartitionOptions& opts);

/// Run the partition passes over an existing context (shared with the
/// stepping passes by extract_structure). Emits the "order/find_phases"
/// span; optionally reports per-stage timings and raw pass records.
void run_partition_pipeline(OrderContext& ctx, PipelineTimings* timings,
                            std::vector<PassRecord>* records);

/// Run the paper's §3.1 pipeline: initial partitions, dependency merge,
/// serial-block repair, neighbor-serial merge, source-order inference,
/// leap-property enforcement (merge or order), chare-path enforcement.
/// Each heuristic is gated by opts.
PhaseResult find_phases(const trace::Trace& trace,
                        const PartitionOptions& opts,
                        PipelineTimings* timings = nullptr,
                        std::vector<PassRecord>* records = nullptr);

}  // namespace logstruct::order
