#include "order/partition_graph.hpp"

#include <algorithm>

#include "graph/scc.hpp"
#include "graph/union_find.hpp"
#include "util/check.hpp"

namespace logstruct::order {

PartitionGraph::PartitionGraph(const trace::Trace& trace)
    : trace_(&trace),
      part_of_(static_cast<std::size_t>(trace.num_events()), -1) {}

PartId PartitionGraph::add_partition(std::vector<trace::EventId> events,
                                     bool runtime) {
  LS_CHECK(!finalized_);
  LS_CHECK_MSG(!events.empty(), "empty partition");
  PartId id = static_cast<PartId>(events_.size());
  for (trace::EventId e : events) {
    LS_CHECK_MSG(part_of_[static_cast<std::size_t>(e)] == -1,
                 "event assigned to two partitions");
    part_of_[static_cast<std::size_t>(e)] = id;
  }
  events_.push_back(std::move(events));
  runtime_.push_back(runtime);
  return id;
}

void PartitionGraph::add_edge(PartId from, PartId to) {
  if (from == to) return;
  edges_.emplace_back(from, to);
}

void PartitionGraph::finalize() {
  LS_CHECK(!finalized_);
  finalized_ = true;
  for (trace::EventId e = 0; e < trace_->num_events(); ++e) {
    LS_CHECK_MSG(part_of_[static_cast<std::size_t>(e)] != -1,
                 "event not covered by any initial partition");
  }
  dag_guard_.dirty.store(true, std::memory_order_release);
  epoch_ = 1;

  chares_.assign(events_.size(), {});
  for (std::int32_t p = 0; p < num_partitions(); ++p) {
    auto& cs = chares_[static_cast<std::size_t>(p)];
    for (trace::EventId e : events_[static_cast<std::size_t>(p)])
      cs.push_back(trace_->event(e).chare);
    std::sort(cs.begin(), cs.end());
    cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
  }
}

void PartitionGraph::ensure_dag() const {
  // Double-checked: the acquire load pairs with the release store below,
  // so a reader that sees `dirty == false` also sees the materialized
  // dag_/edges_. Concurrent first readers serialize on the mutex.
  if (!dag_guard_.dirty.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(dag_guard_.mu);
  if (!dag_guard_.dirty.load(std::memory_order_relaxed)) return;
  dag_.reset(num_partitions());
  for (auto [u, v] : edges_) dag_.add_edge(u, v);
  dag_.finalize();
  // Compact: the adjacency is deduplicated, so shrink the flat list back
  // to the unique edges to keep future remaps proportional to |E|.
  edges_ = dag_.edges();
  dag_guard_.dirty.store(false, std::memory_order_release);
}

trace::EventId PartitionGraph::first_event_of_chare(PartId p,
                                                    trace::ChareId c) const {
  for (trace::EventId e : events_[static_cast<std::size_t>(p)]) {
    if (trace_->event(e).chare == c) return e;
  }
  return trace::kNone;
}

void PartitionGraph::add_edges_bulk(
    std::span<const std::pair<PartId, PartId>> edges) {
  LS_CHECK(finalized_);
  if (edges.empty()) return;
  for (auto [u, v] : edges) {
    if (u != v) edges_.emplace_back(u, v);
  }
  dag_guard_.dirty.store(true, std::memory_order_release);
  ++epoch_;
}

bool PartitionGraph::apply_merges(
    std::span<const std::pair<PartId, PartId>> pairs) {
  LS_CHECK(finalized_);
  if (pairs.empty()) return false;
  graph::UnionFind uf(static_cast<std::size_t>(num_partitions()));
  for (auto [p, q] : pairs) uf.unite(p, q);
  if (uf.num_sets() == static_cast<std::size_t>(num_partitions()))
    return false;
  auto label = uf.dense_labels();
  relabel(label, static_cast<std::int32_t>(uf.num_sets()));
  return true;
}

bool PartitionGraph::cycle_merge() {
  LS_CHECK(finalized_);
  ensure_dag();
  graph::SccResult scc = graph::strongly_connected_components(dag_);
  if (scc.num_components == num_partitions()) return false;
  relabel(scc.component, scc.num_components);
  return true;
}

void PartitionGraph::relabel(const std::vector<std::int32_t>& label,
                             std::int32_t num_new) {
  merges_ += num_partitions() - num_new;
  const trace::Trace& tr = *trace_;
  auto by_time = [&tr](trace::EventId a, trace::EventId b) {
    const trace::TimeNs ta = tr.event_time(a);
    const trace::TimeNs tb = tr.event_time(b);
    if (ta != tb) return ta < tb;
    return a < b;
  };

  // The first member of each group donates its vectors; later members
  // merge in. Member event lists are already time-sorted, so each merge
  // is a sorted-run inplace_merge — partitions untouched by this batch
  // cost only a vector move.
  std::vector<std::vector<trace::EventId>> new_events(
      static_cast<std::size_t>(num_new));
  std::vector<std::vector<trace::ChareId>> new_chares(
      static_cast<std::size_t>(num_new));
  std::vector<bool> new_runtime(static_cast<std::size_t>(num_new), false);
  for (std::int32_t p = 0; p < num_partitions(); ++p) {
    auto nl = static_cast<std::size_t>(label[static_cast<std::size_t>(p)]);
    auto& dst = new_events[nl];
    auto& src = events_[static_cast<std::size_t>(p)];
    if (dst.empty()) {
      dst = std::move(src);
      new_chares[nl] = std::move(chares_[static_cast<std::size_t>(p)]);
    } else {
      auto mid = static_cast<std::ptrdiff_t>(dst.size());
      dst.insert(dst.end(), src.begin(), src.end());
      std::inplace_merge(dst.begin(), dst.begin() + mid, dst.end(), by_time);
      auto& cs = new_chares[nl];
      auto& add = chares_[static_cast<std::size_t>(p)];
      auto cmid = static_cast<std::ptrdiff_t>(cs.size());
      cs.insert(cs.end(), add.begin(), add.end());
      std::inplace_merge(cs.begin(), cs.begin() + cmid, cs.end());
      cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
    }
    if (runtime_[static_cast<std::size_t>(p)]) new_runtime[nl] = true;
  }
  events_ = std::move(new_events);
  chares_ = std::move(new_chares);
  runtime_ = std::move(new_runtime);

  for (auto& po : part_of_)
    po = label[static_cast<std::size_t>(po)];

  // Remap the flat edge list in place, dropping collapsed self-edges;
  // dedup is deferred to the next dag() materialization.
  std::size_t w = 0;
  for (auto [u, v] : edges_) {
    std::int32_t nu = label[static_cast<std::size_t>(u)];
    std::int32_t nv = label[static_cast<std::size_t>(v)];
    if (nu != nv) edges_[w++] = {nu, nv};
  }
  edges_.resize(w);
  dag_guard_.dirty.store(true, std::memory_order_release);
  ++epoch_;
}

std::int64_t PartitionGraph::memory_bytes() const {
  std::int64_t b = edge_capacity_bytes();
  b += static_cast<std::int64_t>(part_of_.capacity() * sizeof(PartId));
  b += static_cast<std::int64_t>(events_.capacity() *
                                 sizeof(std::vector<trace::EventId>));
  for (const auto& v : events_)
    b += static_cast<std::int64_t>(v.capacity() * sizeof(trace::EventId));
  b += static_cast<std::int64_t>(chares_.capacity() *
                                 sizeof(std::vector<trace::ChareId>));
  for (const auto& v : chares_)
    b += static_cast<std::int64_t>(v.capacity() * sizeof(trace::ChareId));
  return b;
}

}  // namespace logstruct::order
