#include "order/partition_graph.hpp"

#include <algorithm>

#include "graph/scc.hpp"
#include "graph/union_find.hpp"
#include "util/check.hpp"

namespace logstruct::order {

PartitionGraph::PartitionGraph(const trace::Trace& trace)
    : trace_(&trace),
      part_of_(static_cast<std::size_t>(trace.num_events()), -1) {}

PartId PartitionGraph::add_partition(std::vector<trace::EventId> events,
                                     bool runtime) {
  LS_CHECK(!finalized_);
  LS_CHECK_MSG(!events.empty(), "empty partition");
  PartId id = static_cast<PartId>(events_.size());
  for (trace::EventId e : events) {
    LS_CHECK_MSG(part_of_[static_cast<std::size_t>(e)] == -1,
                 "event assigned to two partitions");
    part_of_[static_cast<std::size_t>(e)] = id;
  }
  events_.push_back(std::move(events));
  runtime_.push_back(runtime);
  return id;
}

void PartitionGraph::add_edge(PartId from, PartId to) {
  if (from == to) return;
  pending_edges_.emplace_back(from, to);
}

void PartitionGraph::finalize() {
  LS_CHECK(!finalized_);
  finalized_ = true;
  for (trace::EventId e = 0; e < trace_->num_events(); ++e) {
    LS_CHECK_MSG(part_of_[static_cast<std::size_t>(e)] != -1,
                 "event not covered by any initial partition");
  }
  dag_.reset(num_partitions());
  for (auto [u, v] : pending_edges_) dag_.add_edge(u, v);
  pending_edges_.clear();
  dag_.finalize();

  chares_.assign(events_.size(), {});
  for (std::int32_t p = 0; p < num_partitions(); ++p) {
    auto& cs = chares_[static_cast<std::size_t>(p)];
    for (trace::EventId e : events_[static_cast<std::size_t>(p)])
      cs.push_back(trace_->event(e).chare);
    std::sort(cs.begin(), cs.end());
    cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
  }
}

trace::EventId PartitionGraph::first_event_of_chare(PartId p,
                                                    trace::ChareId c) const {
  for (trace::EventId e : events_[static_cast<std::size_t>(p)]) {
    if (trace_->event(e).chare == c) return e;
  }
  return trace::kNone;
}

void PartitionGraph::add_edges_bulk(
    std::span<const std::pair<PartId, PartId>> edges) {
  LS_CHECK(finalized_);
  if (edges.empty()) return;
  // The digraph deduplicates on finalize; rebuild it wholesale.
  graph::Digraph next(num_partitions());
  for (auto [u, v] : dag_.edges()) next.add_edge(u, v);
  for (auto [u, v] : edges) {
    if (u != v) next.add_edge(u, v);
  }
  next.finalize();
  dag_ = std::move(next);
}

bool PartitionGraph::apply_merges(
    std::span<const std::pair<PartId, PartId>> pairs) {
  LS_CHECK(finalized_);
  if (pairs.empty()) return false;
  graph::UnionFind uf(static_cast<std::size_t>(num_partitions()));
  for (auto [p, q] : pairs) uf.unite(p, q);
  if (uf.num_sets() == static_cast<std::size_t>(num_partitions()))
    return false;
  auto label = uf.dense_labels();
  rebuild(label, static_cast<std::int32_t>(uf.num_sets()));
  return true;
}

bool PartitionGraph::cycle_merge() {
  LS_CHECK(finalized_);
  graph::SccResult scc = graph::strongly_connected_components(dag_);
  if (scc.num_components == num_partitions()) return false;
  rebuild(scc.component, scc.num_components);
  return true;
}

void PartitionGraph::rebuild(const std::vector<std::int32_t>& label,
                             std::int32_t num_new) {
  merges_ += num_partitions() - num_new;

  std::vector<std::vector<trace::EventId>> new_events(
      static_cast<std::size_t>(num_new));
  std::vector<bool> new_runtime(static_cast<std::size_t>(num_new), false);

  // Reserve, then merge event lists keeping time order (merge of sorted
  // runs via stable sort on (time, id) — lists are small relative to total).
  for (std::int32_t p = 0; p < num_partitions(); ++p) {
    auto nl = static_cast<std::size_t>(label[static_cast<std::size_t>(p)]);
    auto& src = events_[static_cast<std::size_t>(p)];
    new_events[nl].insert(new_events[nl].end(), src.begin(), src.end());
    if (runtime_[static_cast<std::size_t>(p)]) new_runtime[nl] = true;
  }
  const trace::Trace& tr = *trace_;
  for (auto& list : new_events) {
    std::sort(list.begin(), list.end(),
              [&tr](trace::EventId a, trace::EventId b) {
                if (tr.event(a).time != tr.event(b).time)
                  return tr.event(a).time < tr.event(b).time;
                return a < b;
              });
  }

  graph::Digraph new_dag(num_new);
  for (auto [u, v] : dag_.edges()) {
    std::int32_t nu = label[static_cast<std::size_t>(u)];
    std::int32_t nv = label[static_cast<std::size_t>(v)];
    if (nu != nv) new_dag.add_edge(nu, nv);
  }
  new_dag.finalize();

  std::vector<std::vector<trace::ChareId>> new_chares(
      static_cast<std::size_t>(num_new));
  for (std::int32_t p = 0; p < num_new; ++p) {
    auto& cs = new_chares[static_cast<std::size_t>(p)];
    for (trace::EventId e : new_events[static_cast<std::size_t>(p)])
      cs.push_back(tr.event(e).chare);
    std::sort(cs.begin(), cs.end());
    cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
  }

  events_ = std::move(new_events);
  runtime_ = std::move(new_runtime);
  chares_ = std::move(new_chares);
  dag_ = std::move(new_dag);
  for (trace::EventId e = 0; e < tr.num_events(); ++e) {
    part_of_[static_cast<std::size_t>(e)] =
        label[static_cast<std::size_t>(part_of_[static_cast<std::size_t>(e)])];
  }
}

}  // namespace logstruct::order
