#pragma once

/// \file infer.hpp
/// Missing-dependency inference and DAG-property enforcement (§3.1.4).
///
/// Charm++ traces lack many control dependencies (runtime-internal control
/// flow is not recorded), so the partition DAG can be too disconnected to
/// order. Three passes fix this:
///  - Algorithm 3: physical-time order of partition-initial source events
///    per chare implies happened-before between their partitions.
///  - Algorithm 4 + property 1: partitions overlapping in chares at the
///    same leap are merged (same kind) or forced into sequence by
///    initial-source time (application vs runtime — or any pair when leap
///    merging is disabled, the Fig. 17 ablation).
///  - Algorithm 5 / property 2: every partition's chares must be covered
///    by its successors, so no two events of one chare can land on the
///    same global step.
///
/// The OrderContext overloads are the pipeline's pass bodies: they serve
/// leaps and leap groups from the context's epoch-keyed cache instead of
/// recomputing per call. The PartitionGraph overloads wrap them for
/// standalone use (tests, external callers).

#include "order/options.hpp"
#include "order/partition_graph.hpp"

namespace logstruct::order {

class OrderContext;

/// Algorithm 3 (+ cycle merge).
void infer_source_order(OrderContext& ctx);
void infer_source_order(PartitionGraph& pg);

/// Fixpoint establishing property 1: no leap has two partitions sharing a
/// chare. Same-kind overlaps merge when opts.leap_merge, otherwise they —
/// like app/runtime overlaps always — get an inferred physical-time order
/// edge.
void enforce_leap_property(OrderContext& ctx);
void enforce_leap_property(PartitionGraph& pg, const PartitionOptions& opts);

/// Algorithm 5: add forward edges so each partition's chares appear in its
/// successors (property 2). Requires property 1 to hold.
void enforce_chare_paths(OrderContext& ctx);
void enforce_chare_paths(PartitionGraph& pg);

/// True iff no two partitions at the same leap share a chare (property 1).
/// The context overload reads the cached leap groups.
bool check_leap_property(OrderContext& ctx);
bool check_leap_property(const PartitionGraph& pg);

/// True iff property 2 holds: for every partition p and chare c of p,
/// either some direct successor of p contains c or no later leap does.
bool check_chare_paths(const PartitionGraph& pg);

}  // namespace logstruct::order
