#pragma once

/// \file validate.hpp
/// Public validation of a computed logical structure.
///
/// Mirrors trace::validate: returns human-readable problems instead of
/// aborting, so tools can sanity-check structures loaded from disk or
/// produced by experimental option combinations. An empty result means
/// every guarantee of the paper's phase-DAG properties holds:
///   - every event has a phase and a step within its phase's height,
///   - receives step strictly after their sends,
///   - no two events of one chare share a global step,
///   - the phase DAG is acyclic and offsets respect it,
///   - each chare's final sequence is strictly increasing in steps.

#include <string>
#include <vector>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::order {

std::vector<std::string> validate_structure(const trace::Trace& trace,
                                            const LogicalStructure& ls);

}  // namespace logstruct::order
