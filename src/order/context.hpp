#pragma once

/// \file context.hpp
/// Shared state threaded through the extraction pipeline passes.
///
/// The OrderContext owns (or borrows) the PartitionGraph and caches the
/// derived values passes keep re-deriving — leaps, leap groups, serial
/// block units — keyed on the graph's structural epoch so a cache entry
/// survives exactly as long as no pass mutates the graph. It also holds
/// arena-style scratch buffers (cleared, never freed, between passes) and
/// the pipeline products (PhaseResult, LogicalStructure).
///
/// Ownership rules:
///  - set_pg() moves a graph into the context (the "initial" pass does
///    this); the context owns it for the rest of the run.
///  - attach_pg() borrows an externally owned graph — used by the legacy
///    free-function pass wrappers; the caller keeps ownership and the
///    graph must outlive the context.
/// Invalidation rules:
///  - leaps()/leap_groups() recompute iff pg().epoch() moved since the
///    cached copy; any merge or bulk edge addition moves the epoch.
///  - units(flavor) depends only on the immutable trace, so it is
///    computed at most once per flavor per context.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "order/block_units.hpp"
#include "order/options.hpp"
#include "order/partition_graph.hpp"
#include "order/phases.hpp"
#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::order {

class OrderContext {
 public:
  OrderContext(const trace::Trace& trace, const Options& opts)
      : trace_(&trace), opts_(opts) {}

  OrderContext(const OrderContext&) = delete;
  OrderContext& operator=(const OrderContext&) = delete;

  [[nodiscard]] const trace::Trace& trace() const { return *trace_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  // --- partition graph ------------------------------------------------
  [[nodiscard]] bool has_pg() const { return pg_ != nullptr; }
  [[nodiscard]] PartitionGraph& pg();
  [[nodiscard]] const PartitionGraph& pg() const;

  /// Take ownership of a freshly built graph (the "initial" pass).
  void set_pg(PartitionGraph&& pg);

  /// Borrow an externally owned graph (legacy free-function wrappers).
  void attach_pg(PartitionGraph& pg);

  // --- epoch-cached derived state --------------------------------------
  /// Leap of every partition; recomputed only when the graph epoch moved.
  [[nodiscard]] const std::vector<std::int32_t>& leaps();

  /// Partitions grouped by leap; same invalidation as leaps().
  [[nodiscard]] const std::vector<std::vector<graph::NodeId>>& leap_groups();

  /// Serial-block units (computed once per absorption flavor; the trace
  /// is immutable so these never invalidate).
  [[nodiscard]] const BlockUnits& units(bool sdag_absorption);

  // --- arena scratch ----------------------------------------------------
  /// Reusable merge-pair buffer; returned cleared.
  [[nodiscard]] std::vector<std::pair<PartId, PartId>>& scratch_pairs();

  /// Reusable edge buffer; returned cleared. Distinct from
  /// scratch_pairs() so a pass may hold both at once.
  [[nodiscard]] std::vector<std::pair<PartId, PartId>>& scratch_edges();

  /// Approximate heap footprint (capacity, not size) of the context's
  /// arena scratch and epoch caches. Feeds the
  /// `order/context/arena_hwm_bytes` high-water gauge the PassManager
  /// refreshes at every pass boundary.
  [[nodiscard]] std::int64_t arena_bytes() const;

  // --- pipeline products ------------------------------------------------
  PhaseResult phases;          ///< filled by the "finalize" pass
  LogicalStructure structure;  ///< filled by the "stepping" pass
  std::vector<std::int64_t> w;  ///< replay clock from the "reorder" pass

 private:
  const trace::Trace* trace_;
  Options opts_;

  std::optional<PartitionGraph> pg_storage_;
  PartitionGraph* pg_ = nullptr;

  std::vector<std::int32_t> leaps_;
  std::uint64_t leaps_epoch_ = 0;
  std::vector<std::vector<graph::NodeId>> groups_;
  std::uint64_t groups_epoch_ = 0;

  std::optional<BlockUnits> units_raw_;
  std::optional<BlockUnits> units_absorbed_;

  std::vector<std::pair<PartId, PartId>> scratch_pairs_;
  std::vector<std::pair<PartId, PartId>> scratch_edges_;
};

}  // namespace logstruct::order
