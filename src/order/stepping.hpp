#pragma once

/// \file stepping.hpp
/// Step assignment (paper §3.2) and the LogicalStructure result.
///
/// Within each phase: serial-block units are ordered per chare (by the w
/// replay clock when reordering, by physical time otherwise), then every
/// event gets a local step — one past the maximum of its happened-before
/// events (the prior event along its chare, and its matching send if it is
/// a receive). Phase offsets from the phase DAG turn local steps into
/// global ones.

#include <cstdint>
#include <vector>

#include "order/options.hpp"
#include "order/phases.hpp"
#include "trace/trace.hpp"

namespace logstruct::order {

/// The complete logical structure: the paper's end product.
struct LogicalStructure {
  PhaseResult phases;

  std::vector<std::int64_t> w;             ///< replay clock (reorder mode)
  std::vector<std::int32_t> local_step;    ///< per event, within its phase
  std::vector<std::int32_t> global_step;   ///< per event
  std::vector<std::int32_t> phase_offset;  ///< per phase
  std::vector<std::int32_t> phase_height;  ///< max local step per phase

  /// Per chare: its events in final logical order (phases in DAG order,
  /// units as sorted, events in unit order).
  std::vector<std::vector<trace::EventId>> chare_sequence;
  std::vector<std::int32_t> pos_in_chare;  ///< per event

  std::int32_t max_step = 0;
  /// Ordering conflicts broken during stepping (cycles introduced by
  /// aggressive reordering; 0 in practice).
  std::int32_t order_conflicts = 0;

  [[nodiscard]] std::int32_t num_phases() const {
    return phases.num_phases();
  }
};

class OrderContext;

/// Run the §3.2 passes ("reorder" then "stepping") over ctx: consumes
/// ctx.phases and fills ctx.structure. Shared by assign_steps and
/// extract_structure so the stepping passes reuse the context's cached
/// serial-block units. Appends the per-pass records when asked.
void run_stepping_pipeline(OrderContext& ctx,
                           std::vector<PassRecord>* records = nullptr);

/// Assign steps to already-found phases.
LogicalStructure assign_steps(const trace::Trace& trace, PhaseResult phases,
                              const Options& opts);

/// The full pipeline: the partition passes + the stepping passes over one
/// shared OrderContext.
LogicalStructure extract_structure(const trace::Trace& trace,
                                   const Options& opts);

}  // namespace logstruct::order
