#include "order/causality.hpp"

#include <cstdio>
#include <cstdlib>

#include "graph/topo.hpp"
#include "obs/obs.hpp"
#include "order/context.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::order {

PhaseReachability::PhaseReachability(const graph::Digraph& dag)
    : num_(dag.num_nodes()),
      words_((static_cast<std::size_t>(num_) + 63) / 64),
      bits_(static_cast<std::size_t>(num_) * words_, 0) {
  for (graph::NodeId q : graph::topological_order(dag)) {
    std::uint64_t* row =
        bits_.data() + static_cast<std::size_t>(q) * words_;
    row[static_cast<std::size_t>(q) / 64] |= 1ull << (q % 64);
    for (graph::NodeId p : dag.predecessors(q)) {
      const std::uint64_t* prow =
          bits_.data() + static_cast<std::size_t>(p) * words_;
      for (std::size_t w = 0; w < words_; ++w) row[w] |= prow[w];
    }
  }
}

CausalityOracle::CausalityOracle(const trace::Trace& trace,
                                 const CausalityOptions& opts)
    : trace_(&trace) {
  OBS_SPAN(span, "order/causality/build");
  const auto n = static_cast<std::size_t>(trace.num_events());
  span.attr("events", trace.num_events());

  // Chain coordinates: one chain per serial block (events_of_block is
  // already the block's total order), a synthetic singleton chain per
  // blockless event.
  chain_.assign(n, -1);
  pos_.assign(n, 0);
  chain_pred_.assign(n, trace::kNone);
  for (trace::BlockId b = 0; b < trace.num_blocks(); ++b) {
    trace::EventId prev = trace::kNone;
    std::int32_t pos = 0;
    for (trace::EventId e : trace.events_of_block(b)) {
      chain_[static_cast<std::size_t>(e)] = b;
      pos_[static_cast<std::size_t>(e)] = pos++;
      chain_pred_[static_cast<std::size_t>(e)] = prev;
      prev = e;
    }
  }
  std::int32_t next_chain = trace.num_blocks();
  for (std::size_t e = 0; e < n; ++e)
    if (chain_[e] < 0) chain_[e] = next_chain++;

  // Reverse-CSR dependency view (the IncomingDeps layout): counting sort
  // of the frozen SoA columns, chunk-streamed under the blocked backend.
  pred_begin_.assign(n + 1, 0);
  trace.for_each_dependency([&](trace::EventId, trace::EventId recv) {
    ++pred_begin_[static_cast<std::size_t>(recv) + 1];
  });
  for (std::size_t i = 1; i < pred_begin_.size(); ++i)
    pred_begin_[i] += pred_begin_[i - 1];
  pred_senders_.resize(
      static_cast<std::size_t>(trace.num_dependencies()));
  {
    std::vector<std::int64_t> cursor(pred_begin_.begin(),
                                     pred_begin_.end() - 1);
    trace.for_each_dependency([&](trace::EventId send,
                                  trace::EventId recv) {
      pred_senders_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(recv)]++)] = send;
    });
  }

  // Kahn levels: level(e) = 1 + max level over direct predecessors.
  // Serial — O(V + E) — so wave membership is trivially deterministic;
  // only the clock merges below fan out.
  level_.assign(n, 0);
  std::vector<std::int32_t> indeg(n, 0);
  std::vector<std::int64_t> out_begin(n + 1, 0);
  for (std::size_t e = 0; e < n; ++e) {
    indeg[e] = static_cast<std::int32_t>(pred_begin_[e + 1] -
                                         pred_begin_[e]) +
               (chain_pred_[e] != trace::kNone ? 1 : 0);
    for (std::int64_t i = pred_begin_[e];
         i < pred_begin_[e + 1]; ++i)
      ++out_begin[static_cast<std::size_t>(
                      pred_senders_[static_cast<std::size_t>(i)]) +
                  1];
  }
  for (std::size_t i = 1; i < out_begin.size(); ++i)
    out_begin[i] += out_begin[i - 1];
  std::vector<trace::EventId> out_succ(pred_senders_.size());
  std::vector<trace::EventId> chain_succ(n, trace::kNone);
  {
    std::vector<std::int64_t> cursor(out_begin.begin(),
                                     out_begin.end() - 1);
    for (std::size_t e = 0; e < n; ++e) {
      if (chain_pred_[e] != trace::kNone)
        chain_succ[static_cast<std::size_t>(chain_pred_[e])] =
            static_cast<trace::EventId>(e);
      for (std::int64_t i = pred_begin_[e];
           i < pred_begin_[e + 1]; ++i) {
        const auto s = static_cast<std::size_t>(
            pred_senders_[static_cast<std::size_t>(i)]);
        out_succ[static_cast<std::size_t>(cursor[s]++)] =
            static_cast<trace::EventId>(e);
      }
    }
  }
  std::vector<trace::EventId> queue;
  queue.reserve(n);
  for (std::size_t e = 0; e < n; ++e)
    if (indeg[e] == 0) {
      level_[e] = 1;
      queue.push_back(static_cast<trace::EventId>(e));
    }
  std::size_t head = 0;
  auto relax = [&](trace::EventId u, trace::EventId v) {
    const auto uu = static_cast<std::size_t>(u);
    const auto vv = static_cast<std::size_t>(v);
    if (level_[uu] + 1 > level_[vv]) level_[vv] = level_[uu] + 1;
    if (--indeg[vv] == 0) queue.push_back(v);
  };
  while (head < queue.size()) {
    const trace::EventId u = queue[head++];
    const auto uu = static_cast<std::size_t>(u);
    if (chain_succ[uu] != trace::kNone) relax(u, chain_succ[uu]);
    for (std::int64_t i = out_begin[uu]; i < out_begin[uu + 1]; ++i)
      relax(u, out_succ[static_cast<std::size_t>(i)]);
  }
  // A cycle (contradictory input: only possible in hand-built or
  // corrupted traces) leaves events unqueued. Give them a sentinel
  // level past every acyclic one; their clocks saturate, and the
  // fallback walk's visited set keeps queries terminating.
  std::int32_t acyclic_max = 0;
  for (std::size_t e = 0; e < n; ++e)
    acyclic_max = std::max(acyclic_max, level_[e]);
  bool cyclic = queue.size() < n;
  if (cyclic) {
    for (std::size_t e = 0; e < n; ++e)
      if (indeg[e] > 0) level_[e] = acyclic_max + 1;
  }
  max_level_ = cyclic ? acyclic_max + 1 : acyclic_max;

  // Group events into level waves (counting sort, ascending event id
  // within a wave) and merge clocks one wave at a time: every event in
  // wave k has all predecessors in waves < k, so each clock is a pure
  // function of final predecessor clocks — index-owned writes, bit-
  // identical for any thread count.
  std::vector<std::int64_t> wave_begin(
      static_cast<std::size_t>(max_level_) + 2, 0);
  for (std::size_t e = 0; e < n; ++e)
    ++wave_begin[static_cast<std::size_t>(level_[e]) + 1];
  for (std::size_t i = 1; i < wave_begin.size(); ++i)
    wave_begin[i] += wave_begin[i - 1];
  std::vector<trace::EventId> wave_events(n);
  {
    std::vector<std::int64_t> cursor(wave_begin.begin(),
                                     wave_begin.end() - 1);
    for (std::size_t e = 0; e < n; ++e)
      wave_events[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(level_[e])]++)] =
          static_cast<trace::EventId>(e);
  }

  clocks_.assign(n, HbClock{});
  const int threads = util::resolve_threads(opts.threads);
  const std::int32_t budget = std::max(1, opts.max_clock_entries);
  span.attr("threads", threads);
  span.attr("levels", max_level_);
  for (std::int32_t lvl = 1; lvl <= max_level_; ++lvl) {
    const std::int64_t lo = wave_begin[static_cast<std::size_t>(lvl)];
    const std::int64_t hi =
        wave_begin[static_cast<std::size_t>(lvl) + 1];
    util::parallel_for(threads, hi - lo, [&](std::int64_t i) {
      const trace::EventId e =
          wave_events[static_cast<std::size_t>(lo + i)];
      const auto ee = static_cast<std::size_t>(e);
      HbClock& c = clocks_[ee];
      if (cyclic && indeg[ee] > 0) {
        c.saturate();  // cycle member: no well-defined ancestor set
        return;
      }
      if (chain_pred_[ee] != trace::kNone)
        c.merge(clocks_[static_cast<std::size_t>(chain_pred_[ee])]);
      for (std::int64_t d = pred_begin_[ee];
           !c.saturated() && d < pred_begin_[ee + 1]; ++d)
        c.merge(clocks_[static_cast<std::size_t>(
            pred_senders_[static_cast<std::size_t>(d)])]);
      if (!c.saturated()) c.raise(chain_[ee], pos_[ee] + 1);
      if (c.num_entries() > budget) c.saturate();
    });
  }

  for (std::size_t e = 0; e < n; ++e) {
    if (clocks_[e].saturated()) ++saturated_;
    total_entries_ += clocks_[e].num_entries();
    memory_bytes_ += clocks_[e].memory_bytes();
  }
  memory_bytes_ += static_cast<std::int64_t>(
      clocks_.capacity() * sizeof(HbClock) +
      (chain_.capacity() + pos_.capacity() + level_.capacity()) *
          sizeof(std::int32_t) +
      (chain_pred_.capacity() + pred_senders_.capacity()) *
          sizeof(trace::EventId) +
      pred_begin_.capacity() * sizeof(std::int64_t));
  span.attr("saturated", saturated_);
  span.attr("clock_entries", total_entries_);
  OBS_COUNTER_ADD("order/causality/clock_builds", 1);
  OBS_COUNTER_ADD("order/causality/saturated_clocks", saturated_);
  OBS_COUNTER_ADD("order/causality/clock_entries", total_entries_);
}

bool CausalityOracle::hb(trace::EventId a, trace::EventId b) const {
  if (a == b || a == trace::kNone || b == trace::kNone) return false;
  const auto aa = static_cast<std::size_t>(a);
  const auto bb = static_cast<std::size_t>(b);
  if (chain_[aa] == chain_[bb]) return pos_[aa] < pos_[bb];
  if (level_[aa] >= level_[bb]) return false;
  if (!clocks_[bb].saturated())
    return clocks_[bb].covers(chain_[aa], pos_[aa]);
  return walk_hb(a, b);
}

/// Level-pruned backward DFS for queries whose target clock saturated:
/// expand direct predecessors, answer from any non-saturated clock met
/// on the way (exact, so no expansion past it), prune below level(a).
/// Bounded by the saturated region's size; the visited set keeps even
/// contradictory (cyclic) inputs terminating.
bool CausalityOracle::walk_hb(trace::EventId a, trace::EventId b) const {
  const auto aa = static_cast<std::size_t>(a);
  const std::int32_t a_chain = chain_[aa];
  const std::int32_t a_pos = pos_[aa];
  const std::int32_t a_level = level_[aa];
  std::vector<bool> visited(level_.size(), false);
  std::vector<trace::EventId> stack;
  stack.push_back(b);
  visited[static_cast<std::size_t>(b)] = true;
  auto consider = [&](trace::EventId p) -> int {
    if (p == trace::kNone) return 0;
    const auto pp = static_cast<std::size_t>(p);
    if (p == a) return 1;
    if (chain_[pp] == a_chain) return pos_[pp] > a_pos ? 1 : 0;
    if (level_[pp] <= a_level) return 0;  // a cannot be an ancestor
    if (!clocks_[pp].saturated())
      return clocks_[pp].covers(a_chain, a_pos) ? 1 : 0;
    if (!visited[pp]) {
      visited[pp] = true;
      stack.push_back(p);
    }
    return 0;
  };
  while (!stack.empty()) {
    const trace::EventId x = stack.back();
    stack.pop_back();
    const auto xx = static_cast<std::size_t>(x);
    if (consider(chain_pred_[xx]) == 1) return true;
    for (std::int64_t i = pred_begin_[xx]; i < pred_begin_[xx + 1];
         ++i) {
      if (consider(pred_senders_[static_cast<std::size_t>(i)]) == 1)
        return true;
    }
  }
  return false;
}

const char* causality_violation_kind_name(CausalityViolation::Kind kind) {
  switch (kind) {
    case CausalityViolation::Kind::StepOrder: return "step_order";
    case CausalityViolation::Kind::PhaseOrder: return "phase_order";
    case CausalityViolation::Kind::BlockStepOrder:
      return "block_step_order";
    case CausalityViolation::Kind::BlockPhaseOrder:
      return "block_phase_order";
    case CausalityViolation::Kind::LeapOrder: return "leap_order";
    case CausalityViolation::Kind::OffsetOrder: return "offset_order";
  }
  return "unknown";
}

void CausalityReport::to_diagnostics(trace::RecoveryReport& report) const {
  for (const CausalityViolation& v : violations) {
    std::string detail = std::string(causality_violation_kind_name(v.kind));
    if (v.a != trace::kNone)
      detail += " events " + std::to_string(v.a) + " -> " +
                std::to_string(v.b);
    detail += " phases " + std::to_string(v.phase_a) + " -> " +
              std::to_string(v.phase_b) + ": " + v.detail;
    report.add(trace::DiagCode::CausalityViolation,
               trace::Severity::Error, std::move(detail));
  }
  // Past the storage cap the counts must stay exact, like the reader
  // reports do.
  for (std::int64_t i = static_cast<std::int64_t>(violations.size());
       i < total_violations; ++i)
    report.add(trace::DiagCode::CausalityViolation,
               trace::Severity::Error, std::string());
}

CausalityReport check_causality(const trace::Trace& trace,
                                const LogicalStructure& ls,
                                std::size_t max_stored) {
  CausalityOracle oracle(trace);
  return check_causality(trace, ls, oracle, max_stored);
}

CausalityReport check_causality(const trace::Trace& trace,
                                const LogicalStructure& ls,
                                const CausalityOracle& oracle,
                                std::size_t max_stored) {
  OBS_SPAN(span, "order/causality/check");
  CausalityReport out;
  const PhaseResult& phases = ls.phases;
  PhaseReachability reach(phases.dag);

  auto phase_of = [&](trace::EventId e) {
    return phases.phase_of_event[static_cast<std::size_t>(e)];
  };
  auto degraded = [&](std::int32_t p) { return phases.is_degraded(p); };
  auto record = [&](CausalityViolation v) {
    ++out.total_violations;
    if (out.violations.size() < max_stored)
      out.violations.push_back(std::move(v));
  };

  // Generating HB edge (a, b): the structure must step a strictly before
  // b and place b's phase at-or-after a's along the phase DAG. By
  // transitivity over the generating edges this extends to every HB
  // pair, so checking only generators is complete.
  auto check_edge = [&](trace::EventId a, trace::EventId b,
                        CausalityViolation::Kind step_kind,
                        CausalityViolation::Kind phase_kind) {
    const std::int32_t pa = phase_of(a);
    const std::int32_t pb = phase_of(b);
    if (degraded(pa) || degraded(pb)) {
      ++out.skipped_degraded;
      return;
    }
    // The oracle, not the raw table row, is the ground truth: only judge
    // the structure against edges it certifies as happened-before (a
    // duplicate or contradictory row in a hand-built trace is skipped
    // rather than turned into a false alarm).
    if (!oracle.hb(a, b)) {
      ++out.skipped_non_hb;
      return;
    }
    ++out.edges_checked;
    const std::int32_t sa = ls.global_step[static_cast<std::size_t>(a)];
    const std::int32_t sb = ls.global_step[static_cast<std::size_t>(b)];
    if (sa >= sb) {
      CausalityViolation v;
      v.kind = step_kind;
      v.a = a;
      v.b = b;
      v.phase_a = pa;
      v.phase_b = pb;
      v.detail = "global_step " + std::to_string(sa) +
                 " !< " + std::to_string(sb);
      record(std::move(v));
    }
    if (pa != pb && !reach.reaches(pa, pb)) {
      CausalityViolation v;
      v.kind = phase_kind;
      v.a = a;
      v.b = b;
      v.phase_a = pa;
      v.phase_b = pb;
      v.detail = "no phase-DAG path";
      record(std::move(v));
    }
  };

  trace.for_each_dependency([&](trace::EventId send, trace::EventId recv) {
    if (send == recv) return;
    check_edge(send, recv, CausalityViolation::Kind::StepOrder,
               CausalityViolation::Kind::PhaseOrder);
  });

  // The intra-block total order: consecutive events of one serial block
  // are the other family of generating edges.
  for (trace::BlockId b = 0; b < trace.num_blocks(); ++b) {
    trace::EventId prev = trace::kNone;
    for (trace::EventId e : trace.events_of_block(b)) {
      if (prev != trace::kNone)
        check_edge(prev, e, CausalityViolation::Kind::BlockStepOrder,
                   CausalityViolation::Kind::BlockPhaseOrder);
      prev = e;
    }
  }

  // Phase-DAG edges: leaps (longest-path levels) and stepping offsets
  // must both be strictly monotone along every recovered HB edge.
  for (auto [p, q] : phases.dag.edges()) {
    if (degraded(p) || degraded(q)) {
      ++out.skipped_degraded;
      continue;
    }
    ++out.phase_edges_checked;
    const auto lp = phases.leap[static_cast<std::size_t>(p)];
    const auto lq = phases.leap[static_cast<std::size_t>(q)];
    if (lp >= lq) {
      CausalityViolation v;
      v.kind = CausalityViolation::Kind::LeapOrder;
      v.phase_a = p;
      v.phase_b = q;
      v.detail =
          "leap " + std::to_string(lp) + " !< " + std::to_string(lq);
      record(std::move(v));
    }
    const auto off_p = ls.phase_offset[static_cast<std::size_t>(p)];
    const auto off_q = ls.phase_offset[static_cast<std::size_t>(q)];
    const auto ht_p = ls.phase_height[static_cast<std::size_t>(p)];
    if (off_q < off_p + ht_p + 1) {
      CausalityViolation v;
      v.kind = CausalityViolation::Kind::OffsetOrder;
      v.phase_a = p;
      v.phase_b = q;
      v.detail = "offset " + std::to_string(off_q) + " < " +
                 std::to_string(off_p) + " + height " +
                 std::to_string(ht_p) + " + 1";
      record(std::move(v));
    }
  }

  span.attr("edges", out.edges_checked);
  span.attr("violations", out.total_violations);
  OBS_COUNTER_ADD("order/causality/edges_checked", out.edges_checked);
  OBS_COUNTER_ADD("order/causality/phase_edges_checked",
                  out.phase_edges_checked);
  OBS_COUNTER_ADD("order/causality/skipped_degraded",
                  out.skipped_degraded);
  OBS_COUNTER_ADD("order/causality/violations", out.total_violations);
  return out;
}

bool causality_check_forced() {
  static const bool forced = [] {
    const char* v = std::getenv("LOGSTRUCT_CHECK_CAUSALITY");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
  }();
  return forced;
}

void check_causality_pass(OrderContext& ctx) {
  const LogicalStructure& ls = ctx.structure;
  LS_CHECK(!ls.global_step.empty() || ctx.trace().num_events() == 0);
  CausalityOptions copts;
  copts.threads = ctx.options().effective_threads();
  CausalityOracle oracle(ctx.trace(), copts);
  CausalityReport report = check_causality(ctx.trace(), ls, oracle);
  if (report.clean()) return;
  std::fprintf(stderr,
               "causality violated after order/stepping: %lld violation(s) "
               "over %lld edges\n",
               static_cast<long long>(report.total_violations),
               static_cast<long long>(report.edges_checked));
  for (std::size_t i = 0; i < report.violations.size() && i < 8; ++i) {
    const CausalityViolation& v = report.violations[i];
    std::fprintf(stderr,
                 "  [%s] events %lld -> %lld phases %d -> %d: %s\n",
                 causality_violation_kind_name(v.kind),
                 static_cast<long long>(v.a),
                 static_cast<long long>(v.b), v.phase_a, v.phase_b,
                 v.detail.c_str());
  }
  std::abort();
}

}  // namespace logstruct::order
