#include "order/validate.hpp"

#include <set>
#include <sstream>

#include "graph/scc.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"

namespace logstruct::order {

namespace {

template <typename... Args>
void problem(std::vector<std::string>& out, Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  out.push_back(os.str());
}

}  // namespace

std::vector<std::string> validate_structure(const trace::Trace& trace,
                                            const LogicalStructure& ls) {
  OBS_SPAN_ANON("order/validate_structure");
  std::vector<std::string> out;

  if (ls.phases.phase_of_event.size() !=
      static_cast<std::size_t>(trace.num_events())) {
    problem(out, "phase_of_event has ", ls.phases.phase_of_event.size(),
            " entries for ", trace.num_events(), " events");
    obs::log(obs::Level::Warn, "order/validate",
             "logical structure failed validation",
             {{"problems", static_cast<std::int64_t>(out.size())},
              {"first", out.front()}});
    return out;  // sizes are wrong: nothing below is safe
  }

  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    std::int32_t ph = ls.phases.phase_of_event[static_cast<std::size_t>(e)];
    if (ph < 0 || ph >= ls.num_phases()) {
      problem(out, "event ", e, " has invalid phase ", ph);
      continue;
    }
    std::int32_t local = ls.local_step[static_cast<std::size_t>(e)];
    if (local < 0 ||
        local > ls.phase_height[static_cast<std::size_t>(ph)])
      problem(out, "event ", e, " local step ", local,
              " outside its phase height");
    if (ls.global_step[static_cast<std::size_t>(e)] !=
        ls.phase_offset[static_cast<std::size_t>(ph)] + local)
      problem(out, "event ", e, " global step inconsistent with offset");
  }

  trace.for_each_dependency([&](trace::EventId s, trace::EventId r) {
    if (ls.global_step[static_cast<std::size_t>(s)] >=
        ls.global_step[static_cast<std::size_t>(r)])
      problem(out, "recv ", r, " not strictly after its send ", s);
  });

  std::set<std::pair<trace::ChareId, std::int32_t>> seen;
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    auto key = std::make_pair(
        trace.event(e).chare, ls.global_step[static_cast<std::size_t>(e)]);
    if (!seen.insert(key).second)
      problem(out, "chare ", key.first, " has two events at step ",
              key.second);
  }

  if (!graph::is_dag(ls.phases.dag)) problem(out, "phase DAG has a cycle");
  for (auto [u, v] : ls.phases.dag.edges()) {
    if (ls.phase_offset[static_cast<std::size_t>(v)] <
        ls.phase_offset[static_cast<std::size_t>(u)] +
            ls.phase_height[static_cast<std::size_t>(u)] + 1)
      problem(out, "phase ", v, " offset overlaps its predecessor ", u);
  }

  for (std::size_t c = 0; c < ls.chare_sequence.size(); ++c) {
    const auto& seq = ls.chare_sequence[c];
    for (std::size_t i = 1; i < seq.size(); ++i) {
      if (ls.global_step[static_cast<std::size_t>(seq[i - 1])] >=
          ls.global_step[static_cast<std::size_t>(seq[i])])
        problem(out, "chare ", c, " sequence not strictly increasing at ",
                i);
    }
  }
  if (!out.empty()) {
    obs::log(obs::Level::Warn, "order/validate",
             "logical structure failed validation",
             {{"problems", static_cast<std::int64_t>(out.size())},
              {"first", out.front()}});
  }
  return out;
}

}  // namespace logstruct::order
