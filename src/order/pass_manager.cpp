#include "order/pass_manager.hpp"

#include <cstdio>
#include <cstdlib>

#include "graph/scc.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "order/context.hpp"
#include "order/infer.hpp"
#include "util/stopwatch.hpp"

namespace logstruct::order {

PassManager::PassManager(bool check_invariants)
    : check_(check_invariants || invariant_check_forced()) {}

void PassManager::add(Pass pass) { passes_.push_back(std::move(pass)); }

bool PassManager::invariant_check_forced() {
  static const bool forced = [] {
    const char* v = std::getenv("LOGSTRUCT_CHECK_PASSES");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
  }();
  return forced;
}

void PassManager::run(OrderContext& ctx) {
  records_.clear();
  records_.reserve(passes_.size());
  for (const Pass& pass : passes_) {
    obs::AllocScope allocs;  // ordinary API: zero deltas without the hook
    // Pass-level progress scope (indeterminate): a crash dump or a
    // /metrics scrape mid-pass always names the running pass even when
    // the pass body opens no finer-grained Progress of its own.
    obs::Progress progress("order/" + pass.name, 0);
    util::Stopwatch sw;
    [[maybe_unused]] const std::int64_t merges_before =
        ctx.has_pg() ? ctx.pg().merges_applied() : 0;
    // What the pass may fan out over; the body resolves the same value
    // internally, so the record stays honest.
    const int threads = pass.parallelism == Parallelism::kPhaseParallel
                            ? ctx.options().effective_threads()
                            : 1;
    if (pass.own_span) {
      if (pass.enabled) pass.run(ctx);
    } else {
      // Disabled passes still open their span so telemetry sidecars
      // always carry the full stage taxonomy.
      OBS_SPAN(span, "order/" + pass.name);
      if (pass.enabled) pass.run(ctx);
      if (ctx.has_pg()) span.attr("partitions", ctx.pg().num_partitions());
      if (threads > 1) span.attr("threads", threads);
    }
    PassRecord rec;
    rec.name = pass.name;
    rec.seconds = sw.seconds();
    rec.ran = pass.enabled;
    rec.partitions = ctx.has_pg() ? ctx.pg().num_partitions() : -1;
    rec.alloc_bytes = allocs.delta().bytes;
    rec.threads = threads;
    records_.push_back(std::move(rec));
#if LOGSTRUCT_OBS
    if (pass.enabled) {
      // Runtime-composed names bypass the static-handle macro; still
      // behind the compile-time kill switch.
      auto& reg = obs::Registry::global();
      reg.counter("order/pass/" + pass.name + "/runs").add(1);
      if (ctx.has_pg())
        reg.counter("order/pass/" + pass.name + "/merges")
            .add(ctx.pg().merges_applied() - merges_before);
    }
    // High-water gauges over the pipeline's big owners, refreshed at
    // every pass boundary (memory peaks live at stage edges, not inside).
    auto raise = [](obs::Gauge& g, std::int64_t v) {
      if (v > g.value()) g.set(v);
    };
    raise(obs::Registry::global().gauge("order/context/arena_hwm_bytes"),
          ctx.arena_bytes());
    if (ctx.has_pg()) {
      raise(obs::Registry::global().gauge(
                "order/partition_graph/edge_capacity_bytes"),
            ctx.pg().edge_capacity_bytes());
      raise(obs::Registry::global().gauge(
                "order/partition_graph/footprint_bytes"),
            ctx.pg().memory_bytes());
    }
#endif
    if (check_ && pass.enabled) verify(pass, ctx);
  }
}

void PassManager::verify(const Pass& pass, OrderContext& ctx) const {
  if (pass.checks == kCheckNone || !ctx.has_pg()) return;
  const PartitionGraph& pg = ctx.pg();
  auto fail = [&pass](const char* what) {
    std::fprintf(stderr, "pass invariant violated after order/%s: %s\n",
                 pass.name.c_str(), what);
    std::abort();
  };
  if ((pass.checks & kCheckDag) && !graph::is_dag(pg.dag()))
    fail("partition graph is not a DAG");
  if (pass.checks & kCheckCoverage) {
    std::int64_t total = 0;
    for (PartId p = 0; p < pg.num_partitions(); ++p) {
      auto evs = pg.events(p);
      if (evs.empty()) fail("empty partition");
      total += static_cast<std::int64_t>(evs.size());
      for (trace::EventId e : evs) {
        if (pg.part_of(e) != p) fail("event->partition index out of sync");
      }
    }
    if (total != pg.trace().num_events())
      fail("events not covered exactly once");
  }
  if ((pass.checks & kCheckLeapProperty) && !check_leap_property(pg))
    fail("property 1 (leap property) violated");
  if ((pass.checks & kCheckCharePaths) && !check_chare_paths(pg))
    fail("property 2 (chare paths) violated");
}

}  // namespace logstruct::order
