#include "order/merges.hpp"

#include <map>
#include <utility>
#include <vector>

#include "order/block_units.hpp"
#include "order/context.hpp"
#include "trace/sdag.hpp"

namespace logstruct::order {

void dependency_merge(OrderContext& ctx) {
  PartitionGraph& pg = ctx.pg();
  auto& pairs = ctx.scratch_pairs();
  pg.trace().for_each_dependency([&](trace::EventId s, trace::EventId r) {
    PartId p = pg.part_of(s);
    PartId q = pg.part_of(r);
    // Matching ends of an invocation always classify identically (both
    // sides see the same chare pair), so the same-kind guard is a no-op
    // for point-to-point messages but protects against mixed partitions
    // produced by earlier cycle merges.
    if (p != q && pg.runtime(p) == pg.runtime(q)) pairs.emplace_back(p, q);
  });
  pg.apply_merges(pairs);
  pg.cycle_merge();
}

void dependency_merge(PartitionGraph& pg) {
  OrderContext ctx(pg.trace(), Options{});
  ctx.attach_pg(pg);
  dependency_merge(ctx);
}

void repair_merge(OrderContext& ctx) {
  PartitionGraph& pg = ctx.pg();
  // Raw serial blocks: the repair restores merges broken by the
  // app/runtime split within one block (paper Fig. 4).
  const BlockUnits& units = ctx.units(/*sdag_absorption=*/false);

  // Paper Algorithm 2, literally: an event's "serial happened-before" is
  // the adjacent previous event in its block; merge their partitions when
  // the partitions carry the SAME app/runtime kind. Adjacent events of
  // the same classification always start in one run, so this only fires
  // after earlier cycle merges produced mixed (runtime-flagged)
  // partitions on one side of a split — it re-attaches the pieces those
  // merges stranded. Reaching back across the runtime run instead (a
  // plausible alternative reading of Fig. 4) would also weld, e.g., a
  // LASSEN control self-send onto the halo receives of its block and
  // erase the paper's observed two-step phases.
  auto& pairs = ctx.scratch_pairs();
  for (const auto& events : units.events) {
    for (std::size_t i = 1; i < events.size(); ++i) {
      PartId q = pg.part_of(events[i - 1]);
      PartId p = pg.part_of(events[i]);
      if (p != q && pg.runtime(p) == pg.runtime(q)) pairs.emplace_back(p, q);
    }
  }
  pg.apply_merges(pairs);
  pg.cycle_merge();
}

void repair_merge(PartitionGraph& pg, const PartitionOptions& opts) {
  Options all;
  all.partition = opts;
  OrderContext ctx(pg.trace(), all);
  ctx.attach_pg(pg);
  repair_merge(ctx);
}

void neighbor_serial_merge(OrderContext& ctx) {
  PartitionGraph& pg = ctx.pg();
  const trace::Trace& trace = pg.trace();
  const BlockUnits& units = ctx.units(/*sdag_absorption=*/false);

  // For each (partition of serial n, serial number n+1): the partitions in
  // which the group's chares continue. If one multi-chare partition flows
  // into several successor partitions, those successors belong together.
  std::map<std::pair<PartId, std::int32_t>, std::vector<PartId>> flows;
  for (auto [b1, b2] : trace::sdag_happened_before(trace)) {
    auto r1 = static_cast<std::size_t>(
        units.rep[static_cast<std::size_t>(b1)]);
    auto r2 = static_cast<std::size_t>(
        units.rep[static_cast<std::size_t>(b2)]);
    if (units.events[r1].empty() || units.events[r2].empty()) continue;
    PartId p = pg.part_of(units.events[r1].back());
    PartId q = pg.part_of(units.events[r2].front());
    std::int32_t serial =
        trace.entry(trace.block(static_cast<trace::BlockId>(b2)).entry)
            .sdag_serial;
    flows[{p, serial}].push_back(q);
  }

  auto& pairs = ctx.scratch_pairs();
  for (auto& [key, succs] : flows) {
    if (pg.chares(key.first).size() < 2) continue;  // not a chare group
    for (std::size_t i = 1; i < succs.size(); ++i) {
      if (succs[i] != succs[0] &&
          pg.runtime(succs[i]) == pg.runtime(succs[0]))
        pairs.emplace_back(succs[0], succs[i]);
    }
  }
  pg.apply_merges(pairs);
  pg.cycle_merge();
}

void neighbor_serial_merge(PartitionGraph& pg,
                           const PartitionOptions& opts) {
  Options all;
  all.partition = opts;
  OrderContext ctx(pg.trace(), all);
  ctx.attach_pg(pg);
  neighbor_serial_merge(ctx);
}

}  // namespace logstruct::order
