#pragma once

/// \file pass.hpp
/// A named pipeline pass over a shared OrderContext.
///
/// Every stage of the extraction pipeline (paper §3.1-§3.2) registers as
/// a Pass with the PassManager instead of being hard-wired into a driver
/// function. A pass declares its name (which becomes its obs span
/// `order/<name>`), whether the current Options enable it, and which
/// structural invariants it promises on exit — the manager verifies those
/// after the pass when invariant checking is on, so regressions surface
/// at the pass boundary rather than at the end of the pipeline.
///
/// Ablations (`mpi_baseline13`, the Fig. 17 no-inference run) are pure
/// pass selections: the same pass list is registered every time and
/// Options decide which passes run. Disabled passes still emit their
/// (near-zero) span so telemetry sidecars always carry the full stage
/// taxonomy.

#include <cstdint>
#include <functional>
#include <string>

namespace logstruct::order {

class OrderContext;

/// Invariants a pass promises on its exit state (bit flags).
enum : unsigned {
  kCheckNone = 0,
  /// The partition graph is acyclic.
  kCheckDag = 1u << 0,
  /// Every trace event belongs to exactly one non-empty partition and
  /// the event→partition index agrees with the partition event lists.
  kCheckCoverage = 1u << 1,
  /// Property 1 (§3.1.4): no leap has two partitions sharing a chare.
  kCheckLeapProperty = 1u << 2,
  /// Property 2 (§3.1.4): each partition's chares are covered by its
  /// direct successors (no chare path escapes).
  kCheckCharePaths = 1u << 3,
};

/// How a pass body uses worker threads. Declarative: the body performs
/// its own fan-out (through util::parallel_for with the thread count
/// resolved from Options), but the capability lets the PassManager
/// record and annotate honest per-pass thread counts without inspecting
/// pass internals.
enum class Parallelism {
  /// Single-threaded body; records threads = 1 regardless of Options.
  kSerial,
  /// Body fans independent work (phases, partitions, events) out over
  /// the shared pool; results are bit-identical for any thread count.
  kPhaseParallel,
};

struct Pass {
  /// Short stage name; the obs span is `order/<name>`.
  std::string name;
  /// The stage body. Runs only when `enabled`.
  std::function<void(OrderContext&)> run;
  /// Options-driven gate; disabled passes still record a span + record.
  bool enabled = true;
  /// kCheck* flags verified after the pass under invariant checking.
  unsigned checks = kCheckNone;
  /// True when the body emits its own obs span (legacy span names kept
  /// by stages like stepping); the manager then skips emitting one.
  bool own_span = false;
  /// Thread-usage capability (see Parallelism).
  Parallelism parallelism = Parallelism::kSerial;
};

/// Per-pass execution record: what ran, how long it took, how much it
/// allocated, and the partition count afterwards (-1 before the graph
/// exists). Drives PipelineTimings and the BENCH_pipeline.json perf
/// trajectory (schema v2 carries alloc_bytes alongside seconds).
struct PassRecord {
  std::string name;
  double seconds = 0;
  bool ran = false;
  std::int32_t partitions = -1;
  /// Bytes allocated during the pass — including worker-thread
  /// allocations, which the pool credits back to the executing thread;
  /// 0 when the obs alloc hook is not linked (see obs/memstats.hpp).
  std::int64_t alloc_bytes = 0;
  /// Worker threads the pass was entitled to: Options::effective_threads
  /// for kPhaseParallel passes, 1 for serial ones.
  int threads = 1;
};

}  // namespace logstruct::order
