#pragma once

/// \file pass_manager.hpp
/// Runs registered passes over an OrderContext in order.
///
/// For every pass the manager: opens the pass's obs span (unless the pass
/// emits its own), runs the body when enabled, attaches the resulting
/// partition count, bumps the pass's run/merge counters, records a
/// PassRecord (name, seconds, ran, partitions) for PipelineTimings and
/// the perf-trajectory file, and — when invariant checking is on — dies
/// loudly if a declared invariant does not hold on the pass's exit state.
///
/// Invariant checking is enabled per run via
/// PartitionOptions::check_passes or globally via the
/// LOGSTRUCT_CHECK_PASSES environment variable.

#include <vector>

#include "order/pass.hpp"

namespace logstruct::order {

class OrderContext;

class PassManager {
 public:
  explicit PassManager(bool check_invariants = false);

  /// Register a pass; passes run in registration order.
  void add(Pass pass);

  /// Execute all passes against ctx.
  void run(OrderContext& ctx);

  [[nodiscard]] const std::vector<PassRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool checking() const { return check_; }

  /// True when LOGSTRUCT_CHECK_PASSES is set (to anything but "0") in the
  /// environment; read once per process.
  static bool invariant_check_forced();

 private:
  void verify(const Pass& pass, OrderContext& ctx) const;

  std::vector<Pass> passes_;
  std::vector<PassRecord> records_;
  bool check_;
};

}  // namespace logstruct::order
