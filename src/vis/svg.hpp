#pragma once

/// \file svg.hpp
/// SVG rendering of logical-structure and physical-time views, in the
/// style of the paper's Ravel figures: one lane per timeline (application
/// chares on top, runtime chares below a divider), boxes per event or
/// serial block, colorable by phase or by a per-event metric, recorded
/// idle drawn as thin black bars in the physical view.

#include <string>
#include <vector>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::vis {

struct SvgOptions {
  double cell_w = 14;
  double cell_h = 12;
  double lane_gap = 3;
  /// Optional per-event values (e.g. a metric); when non-empty, cells are
  /// colored on the white->red ramp by value/max instead of by phase.
  std::vector<double> values;
  /// Draw message arcs (one line per dependency-table row: matches gray,
  /// fanout copies blue, collective closures orange).
  bool draw_messages = false;
};

std::string render_logical_svg(const trace::Trace& trace,
                               const order::LogicalStructure& ls,
                               const SvgOptions& opts = {});

std::string render_physical_svg(const trace::Trace& trace,
                                const order::LogicalStructure& ls,
                                const SvgOptions& opts = {});

}  // namespace logstruct::vis
