#pragma once

/// \file html.hpp
/// Self-contained interactive HTML viewer for a logical structure.
///
/// Produces a single .html file (no external assets) with both views the
/// paper juxtaposes — logical steps and physical time — on a zoomable
/// canvas: wheel zooms the x-axis, drag pans, hovering an event shows its
/// chare, step, phase, timestamp, and (optionally) a metric value. Rows
/// follow the paper's layout: application chares on top, runtime chares
/// below a divider.

#include <string>
#include <vector>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::vis {

struct HtmlOptions {
  std::string title = "logical structure";
  /// Optional per-event metric for ramp coloring and tooltips.
  std::vector<double> metric;
  std::string metric_name = "metric";
};

std::string render_html(const trace::Trace& trace,
                        const order::LogicalStructure& ls,
                        const HtmlOptions& opts = {});

/// Convenience: render and write; returns false on I/O failure.
bool save_html(const trace::Trace& trace, const order::LogicalStructure& ls,
               const std::string& path, const HtmlOptions& opts = {});

}  // namespace logstruct::vis
