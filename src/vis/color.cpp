#include "vis/color.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace logstruct::vis {

std::string Rgb::hex() const {
  char buf[8];
  std::snprintf(buf, sizeof buf, "#%02x%02x%02x", r, g, b);
  return buf;
}

namespace {

Rgb hsl_to_rgb(double h, double s, double l) {
  auto f = [&](double n) {
    double k = std::fmod(n + h / 30.0, 12.0);
    double a = s * std::min(l, 1 - l);
    double v = l - a * std::max(-1.0, std::min({k - 3, 9 - k, 1.0}));
    return static_cast<std::uint8_t>(std::lround(255 * v));
  };
  return Rgb{f(0), f(8), f(4)};
}

}  // namespace

Rgb categorical_color(std::int32_t i) {
  // Golden-angle hue walk; alternate lightness bands to separate
  // neighbors further.
  double hue = std::fmod(static_cast<double>(i) * 137.50776, 360.0);
  double light = (i % 3 == 0) ? 0.55 : (i % 3 == 1 ? 0.42 : 0.68);
  return hsl_to_rgb(hue, 0.62, light);
}

Rgb ramp_color(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // white (t=0) -> orange -> dark red (t=1)
  double r = 1.0 - 0.25 * t;
  double g = 1.0 - 0.85 * t;
  double b = 1.0 - 0.95 * t;
  return Rgb{static_cast<std::uint8_t>(std::lround(255 * r)),
             static_cast<std::uint8_t>(std::lround(255 * g)),
             static_cast<std::uint8_t>(std::lround(255 * b))};
}

char categorical_glyph(std::int32_t i) {
  if (i < 0) return '?';
  if (i < 26) return static_cast<char>('A' + i);
  if (i < 52) return static_cast<char>('a' + (i - 26));
  if (i < 62) return static_cast<char>('0' + (i - 52));
  return '#';
}

}  // namespace logstruct::vis
