#pragma once

/// \file cluster.hpp
/// Chare-timeline clustering (paper §9: "new visualization techniques are
/// needed that scale to large numbers of parallel tasks").
///
/// Chares whose logical behaviour is identical — same phases, same event
/// counts, same step envelope per phase — collapse into one cluster row.
/// Regular applications compress drastically (a 2D Jacobi's 64 chares
/// reduce to corner/edge/interior classes), letting the logical view stay
/// readable at chare counts where one-row-per-chare cannot.

#include <cstdint>
#include <string>
#include <vector>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::vis {

struct ChareCluster {
  /// Member chares, ascending id. The first member is the exemplar drawn
  /// for the whole cluster.
  std::vector<trace::ChareId> chares;
  bool runtime = false;
  [[nodiscard]] trace::ChareId exemplar() const { return chares.front(); }
};

/// Cluster key granularity.
enum class ClusterBy {
  /// (phase, #events, first step, last step) per phase the chare touches.
  StepEnvelope,
  /// Exact per-event (phase, local step) sequences — only bit-identical
  /// timelines merge.
  ExactSteps,
};

/// Partition all chares into clusters; clusters are ordered like the
/// timeline views (application first, runtime last, then by exemplar).
std::vector<ChareCluster> cluster_chares(
    const trace::Trace& trace, const order::LogicalStructure& ls,
    ClusterBy by = ClusterBy::StepEnvelope);

/// Logical-structure ASCII view with one row per cluster: the exemplar's
/// timeline annotated with the cluster's size.
std::string render_clustered_ascii(const trace::Trace& trace,
                                   const order::LogicalStructure& ls,
                                   ClusterBy by = ClusterBy::StepEnvelope,
                                   std::int32_t max_cols = 160);

}  // namespace logstruct::vis
