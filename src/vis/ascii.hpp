#pragma once

/// \file ascii.hpp
/// Terminal rendering of logical structure and physical timelines.
///
/// Rows are timelines — application chares first (by array and index),
/// runtime chares grouped at the bottom as in the paper's figures. In the
/// logical view, columns are global steps and cells show the phase glyph;
/// in the physical view, columns are time bins.

#include <span>
#include <string>

#include "order/stepping.hpp"
#include "trace/trace.hpp"

namespace logstruct::vis {

struct AsciiOptions {
  std::int32_t max_cols = 160;  ///< wider structures are range-compressed
  bool show_legend = true;
};

/// Logical-structure view: chare x global-step grid colored by phase.
std::string render_logical_ascii(const trace::Trace& trace,
                                 const order::LogicalStructure& ls,
                                 const AsciiOptions& opts = {});

/// Physical-time view: chare x time-bin grid colored by phase.
std::string render_physical_ascii(const trace::Trace& trace,
                                  const order::LogicalStructure& ls,
                                  const AsciiOptions& opts = {});

/// Metric view (the paper's Figs. 12/14/15 colorings in ASCII): events
/// drawn at their logical (or physical) position with a 1-9 intensity
/// glyph scaled to the metric's maximum ('.' = zero/absent).
std::string render_metric_ascii(const trace::Trace& trace,
                                const order::LogicalStructure& ls,
                                std::span<const double> values,
                                bool logical = true,
                                const AsciiOptions& opts = {});

}  // namespace logstruct::vis
