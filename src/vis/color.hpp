#pragma once

/// \file color.hpp
/// Color assignment for structure views: categorical colors per phase
/// (golden-angle hue walk) and a sequential ramp for metric values.

#include <cstdint>
#include <string>

namespace logstruct::vis {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
  [[nodiscard]] std::string hex() const;
};

/// Distinct, stable color for category index i.
Rgb categorical_color(std::int32_t i);

/// Sequential white->orange->red ramp for t in [0, 1].
Rgb ramp_color(double t);

/// Single printable glyph for category i ('A'-'Z', 'a'-'z', '0'-'9', then
/// '#').
char categorical_glyph(std::int32_t i);

}  // namespace logstruct::vis
