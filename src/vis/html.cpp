#include "vis/html.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "vis/color.hpp"

namespace logstruct::vis {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::vector<trace::ChareId> lane_order(const trace::Trace& trace) {
  std::vector<trace::ChareId> rows;
  for (trace::ChareId c = 0; c < trace.num_chares(); ++c) rows.push_back(c);
  std::stable_sort(rows.begin(), rows.end(),
                   [&](trace::ChareId a, trace::ChareId b) {
                     const auto& ca = trace.chare(a);
                     const auto& cb = trace.chare(b);
                     if (ca.runtime != cb.runtime) return cb.runtime;
                     if (ca.array != cb.array) return ca.array < cb.array;
                     if (ca.index != cb.index) return ca.index < cb.index;
                     return a < b;
                   });
  return rows;
}

// The entire viewer: data is substituted for the __DATA__ marker.
constexpr const char* kTemplate = R"HTML(<!doctype html>
<html><head><meta charset="utf-8"><title>__TITLE__</title>
<style>
 body{margin:0;font:13px sans-serif;background:#fafafa}
 #bar{padding:6px 10px;background:#222;color:#eee;display:flex;gap:14px;align-items:center}
 #bar b{font-size:14px}
 #bar button{background:#444;color:#eee;border:1px solid #666;padding:3px 10px;cursor:pointer}
 #bar button.on{background:#0a6}
 #tip{position:fixed;pointer-events:none;background:#222;color:#fff;padding:4px 8px;
      border-radius:3px;display:none;white-space:pre;font:12px monospace;z-index:9}
 canvas{display:block}
</style></head><body>
<div id="bar"><b>__TITLE__</b>
 <button id="mode" class="on">logical steps</button>
 <button id="color">color: phase</button>
 <span id="info"></span>
 <span style="margin-left:auto;opacity:.7">wheel = zoom x &nbsp; drag = pan &nbsp; hover = details</span>
</div>
<div id="tip"></div><canvas id="cv"></canvas>
<script>
const D = __DATA__;
const cv = document.getElementById('cv'), ctx = cv.getContext('2d');
const tip = document.getElementById('tip');
let logical = true, byMetric = false;
let zoom = 1, panX = 0, drag = null;
const LANE = 16, TOP = 4, NAMEW = 170;
function resize(){ cv.width = innerWidth; cv.height = D.lanes.length*LANE + TOP + 20; draw(); }
function xmax(){ return logical ? D.maxStep+1 : D.endTime; }
function ex(e){ return logical ? e[1] : e[3]; }
function X(v){ return NAMEW + (v/xmax())*(cv.width-NAMEW-10)*zoom + panX; }
function draw(){
  ctx.clearRect(0,0,cv.width,cv.height);
  ctx.fillStyle='#fff'; ctx.fillRect(0,0,cv.width,cv.height);
  ctx.font='11px monospace';
  for(let i=0;i<D.lanes.length;i++){
    const y = TOP + i*LANE;
    if(D.lanes[i][1] && (i===0 || !D.lanes[i-1][1])){
      ctx.strokeStyle='#888'; ctx.setLineDash([5,4]);
      ctx.beginPath(); ctx.moveTo(0,y-1); ctx.lineTo(cv.width,y-1); ctx.stroke();
      ctx.setLineDash([]);
    }
    ctx.fillStyle = D.lanes[i][1] ? '#a55' : '#333';
    ctx.fillText(D.lanes[i][0].slice(0,24), 4, y+11);
  }
  for(const e of D.events){
    const x = X(ex(e)); if(x < NAMEW-14 || x > cv.width) continue;
    const y = TOP + e[0]*LANE;
    ctx.fillStyle = byMetric ? D.ramp[e[5]] : D.pal[e[2] % D.pal.length];
    ctx.fillRect(x, y+1, Math.max(3, 12*zoom**.25), LANE-4);
  }
  document.getElementById('info').textContent =
    D.events.length+' events, '+D.phases+' phases, '+(D.maxStep+1)+' steps';
}
function hit(mx,my){
  const lane = Math.floor((my-TOP)/LANE);
  let best=null, bd=14;
  for(const e of D.events){
    if(e[0]!==lane) continue;
    const d = Math.abs(X(ex(e))-mx);
    if(d<bd){bd=d;best=e;}
  }
  return best;
}
cv.onmousemove = ev=>{
  if(drag){ panX += ev.clientX-drag; drag=ev.clientX; draw(); return; }
  const e = hit(ev.clientX, ev.clientY-cv.getBoundingClientRect().top);
  if(!e){ tip.style.display='none'; return; }
  tip.style.display='block';
  tip.style.left=(ev.clientX+14)+'px'; tip.style.top=(ev.clientY+8)+'px';
  tip.textContent = D.lanes[e[0]][0]+'\nstep '+e[1]+'  phase '+e[2]+
    '\nt = '+(e[3]/1000).toFixed(2)+' us  '+(e[4]? 'recv':'send')+
    (D.metricName ? '\n'+D.metricName+' = '+e[6] : '');
};
cv.onmousedown = ev=>{ drag = ev.clientX; };
window.onmouseup = ()=>{ drag=null; };
cv.onwheel = ev=>{ ev.preventDefault();
  const f = ev.deltaY<0 ? 1.2 : 1/1.2;
  const ax = ev.clientX - NAMEW - panX;
  zoom = Math.max(1, Math.min(2000, zoom*f));
  panX = ev.clientX - NAMEW - ax*f*(zoom>1?1:0) - (zoom===1?0:0);
  if(zoom===1) panX=0;
  draw();
};
document.getElementById('mode').onclick = function(){
  logical=!logical; this.textContent = logical?'logical steps':'physical time';
  this.classList.toggle('on',logical); zoom=1; panX=0; draw();
};
document.getElementById('color').onclick = function(){
  byMetric=!byMetric; this.textContent = 'color: '+(byMetric?D.metricName:'phase');
  draw();
};
window.onresize = resize; resize();
</script></body></html>
)HTML";

}  // namespace

std::string render_html(const trace::Trace& trace,
                        const order::LogicalStructure& ls,
                        const HtmlOptions& opts) {
  auto lanes = lane_order(trace);
  std::vector<std::int32_t> lane_of(
      static_cast<std::size_t>(trace.num_chares()), 0);
  for (std::size_t i = 0; i < lanes.size(); ++i)
    lane_of[static_cast<std::size_t>(lanes[i])] =
        static_cast<std::int32_t>(i);

  double vmax = 0;
  for (double v : opts.metric) vmax = std::max(vmax, v);

  std::ostringstream data;
  data << "{\"lanes\":[";
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const auto& info = trace.chare(lanes[i]);
    data << (i ? "," : "") << "[\"" << json_escape(info.name) << "\","
         << (info.runtime ? 1 : 0) << "]";
  }
  data << "],\"events\":[";
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    const auto& ev = trace.event(e);
    double metric =
        opts.metric.empty() ? 0.0
                            : opts.metric[static_cast<std::size_t>(e)];
    int ramp_idx =
        vmax > 0 ? static_cast<int>(metric / vmax * 15.0) : 0;
    ramp_idx = std::clamp(ramp_idx, 0, 15);
    data << (e ? "," : "") << "["
         << lane_of[static_cast<std::size_t>(ev.chare)] << ","
         << ls.global_step[static_cast<std::size_t>(e)] << ","
         << ls.phases.phase_of_event[static_cast<std::size_t>(e)] << ","
         << ev.time << ","
         << (ev.kind == trace::EventKind::Recv ? 1 : 0) << "," << ramp_idx
         << "," << metric << "]";
  }
  data << "],\"pal\":[";
  for (int i = 0; i < 24; ++i)
    data << (i ? "," : "") << "\"" << categorical_color(i).hex() << "\"";
  data << "],\"ramp\":[";
  for (int i = 0; i < 16; ++i)
    data << (i ? "," : "") << "\"" << ramp_color(i / 15.0).hex() << "\"";
  data << "],\"maxStep\":" << ls.max_step
       << ",\"endTime\":" << std::max<trace::TimeNs>(trace.end_time(), 1)
       << ",\"phases\":" << ls.num_phases() << ",\"metricName\":\""
       << (opts.metric.empty() ? "" : json_escape(opts.metric_name))
       << "\"}";

  std::string html = kTemplate;
  auto replace_all = [&html](const std::string& from, const std::string& to) {
    for (std::size_t pos = 0;
         (pos = html.find(from, pos)) != std::string::npos;
         pos += to.size()) {
      html.replace(pos, from.size(), to);
    }
  };
  replace_all("__TITLE__", json_escape(opts.title));
  replace_all("__DATA__", data.str());
  return html;
}

bool save_html(const trace::Trace& trace, const order::LogicalStructure& ls,
               const std::string& path, const HtmlOptions& opts) {
  std::ofstream f(path);
  if (!f) return false;
  f << render_html(trace, ls, opts);
  return static_cast<bool>(f);
}

}  // namespace logstruct::vis
