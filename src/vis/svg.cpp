#include "vis/svg.hpp"

#include <algorithm>
#include <sstream>

#include "vis/color.hpp"

namespace logstruct::vis {

namespace {

std::vector<trace::ChareId> lane_order(const trace::Trace& trace) {
  std::vector<trace::ChareId> rows;
  for (trace::ChareId c = 0; c < trace.num_chares(); ++c) rows.push_back(c);
  std::stable_sort(rows.begin(), rows.end(),
                   [&](trace::ChareId a, trace::ChareId b) {
                     const auto& ca = trace.chare(a);
                     const auto& cb = trace.chare(b);
                     if (ca.runtime != cb.runtime) return cb.runtime;
                     if (ca.array != cb.array) return ca.array < cb.array;
                     if (ca.index != cb.index) return ca.index < cb.index;
                     return a < b;
                   });
  return rows;
}

std::string fill_for(const trace::Trace&, const order::LogicalStructure& ls,
                     const SvgOptions& opts, trace::EventId e,
                     double value_max) {
  if (!opts.values.empty()) {
    double v = opts.values[static_cast<std::size_t>(e)];
    double t = value_max > 0 ? v / value_max : 0.0;
    return ramp_color(t).hex();
  }
  return categorical_color(
             ls.phases.phase_of_event[static_cast<std::size_t>(e)])
      .hex();
}

struct LaneMap {
  std::vector<std::int32_t> lane_of;
  std::size_t lanes = 0;
  std::int32_t first_runtime_lane = -1;
};

LaneMap build_lanes(const trace::Trace& trace) {
  LaneMap m;
  auto order = lane_order(trace);
  m.lane_of.assign(static_cast<std::size_t>(trace.num_chares()), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    m.lane_of[static_cast<std::size_t>(order[i])] =
        static_cast<std::int32_t>(i);
    if (m.first_runtime_lane < 0 && trace.chare(order[i]).runtime)
      m.first_runtime_lane = static_cast<std::int32_t>(i);
  }
  m.lanes = order.size();
  return m;
}

std::string svg_header(double width, double height) {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
     << height << "\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  return os.str();
}

void divider(std::ostringstream& os, const LaneMap& lanes, double width,
             double lane_h) {
  if (lanes.first_runtime_lane < 0) return;
  double y = lanes.first_runtime_lane * lane_h - 1;
  os << "<line x1=\"0\" y1=\"" << y << "\" x2=\"" << width << "\" y2=\""
     << y << "\" stroke=\"#666\" stroke-dasharray=\"4 3\"/>\n";
}

const char* arc_stroke(trace::DepKind kind) {
  switch (kind) {
    case trace::DepKind::Fanout: return "#3465a4";
    case trace::DepKind::Collective: return "#e08020";
    case trace::DepKind::Match: break;
  }
  return "#888";
}

/// Message arcs straight off the frozen dependency table: one line per
/// row, send endpoint to receive endpoint, colored by row kind. The
/// coordinate of an event is supplied by the caller (step space or time
/// space), so both views share the loop.
template <typename XOf, typename YOf>
void message_arcs(std::ostringstream& os, const trace::Trace& trace,
                  XOf&& x_of, YOf&& y_of) {
  const auto sends = trace.dep_sends();
  const auto recvs = trace.dep_recvs();
  const auto kinds = trace.dep_kinds();
  for (std::size_t i = 0; i < sends.size(); ++i) {
    os << "<line x1=\"" << x_of(sends[i]) << "\" y1=\"" << y_of(sends[i])
       << "\" x2=\"" << x_of(recvs[i]) << "\" y2=\"" << y_of(recvs[i])
       << "\" stroke=\"" << arc_stroke(kinds[i])
       << "\" stroke-width=\"0.6\" opacity=\"0.6\"/>\n";
  }
}

}  // namespace

std::string render_logical_svg(const trace::Trace& trace,
                               const order::LogicalStructure& ls,
                               const SvgOptions& opts) {
  LaneMap lanes = build_lanes(trace);
  const double lane_h = opts.cell_h + opts.lane_gap;
  const double width = (ls.max_step + 1) * opts.cell_w;
  const double height = static_cast<double>(lanes.lanes) * lane_h;
  double vmax = 0;
  for (double v : opts.values) vmax = std::max(vmax, v);

  std::ostringstream os;
  os << svg_header(width, height);
  divider(os, lanes, width, lane_h);
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    double x = ls.global_step[static_cast<std::size_t>(e)] * opts.cell_w;
    double y = lanes.lane_of[static_cast<std::size_t>(
                   trace.event(e).chare)] *
               lane_h;
    os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\""
       << opts.cell_w - 2 << "\" height=\"" << opts.cell_h << "\" fill=\""
       << fill_for(trace, ls, opts, e, vmax) << "\"/>\n";
  }
  if (opts.draw_messages) {
    message_arcs(
        os, trace,
        [&](trace::EventId e) {
          return ls.global_step[static_cast<std::size_t>(e)] * opts.cell_w +
                 opts.cell_w / 2;
        },
        [&](trace::EventId e) {
          return lanes.lane_of[static_cast<std::size_t>(
                     trace.event(e).chare)] *
                     lane_h +
                 opts.cell_h / 2;
        });
  }
  os << "</svg>\n";
  return os.str();
}

std::string render_physical_svg(const trace::Trace& trace,
                                const order::LogicalStructure& ls,
                                const SvgOptions& opts) {
  LaneMap lanes = build_lanes(trace);
  const double lane_h = opts.cell_h + opts.lane_gap;
  const double width = 1200;
  const double height = static_cast<double>(lanes.lanes) * lane_h;
  const double end = static_cast<double>(
      std::max<trace::TimeNs>(trace.end_time(), 1));
  auto x_of = [&](trace::TimeNs t) {
    return static_cast<double>(t) / end * width;
  };
  double vmax = 0;
  for (double v : opts.values) vmax = std::max(vmax, v);

  std::ostringstream os;
  os << svg_header(width, height);
  divider(os, lanes, width, lane_h);

  // Serial blocks as boxes colored by their first event.
  for (trace::BlockId b = 0; b < trace.num_blocks(); ++b) {
    const auto blk = trace.block(b);
    const auto bev = trace.events_of_block(b);
    if (bev.empty()) continue;
    double x0 = x_of(blk.begin);
    double x1 = std::max(x_of(blk.end), x0 + 1.0);
    double y = lanes.lane_of[static_cast<std::size_t>(blk.chare)] * lane_h;
    os << "<rect x=\"" << x0 << "\" y=\"" << y << "\" width=\"" << x1 - x0
       << "\" height=\"" << opts.cell_h << "\" fill=\""
       << fill_for(trace, ls, opts, bev.front(), vmax)
       << "\" stroke=\"#333\" stroke-width=\"0.3\"/>\n";
  }
  // Recorded idle: thin black bars on the processor's chares' lanes is
  // ambiguous; draw them at the bottom edge of the plot per processor.
  for (const auto& span : trace.idles()) {
    double x0 = x_of(span.begin);
    double x1 = std::max(x_of(span.end), x0 + 0.5);
    double y = height - 4.0 - span.proc * 1.5;
    os << "<rect x=\"" << x0 << "\" y=\"" << y << "\" width=\"" << x1 - x0
       << "\" height=\"1\" fill=\"black\"/>\n";
  }
  if (opts.draw_messages) {
    message_arcs(
        os, trace, [&](trace::EventId e) { return x_of(trace.event(e).time); },
        [&](trace::EventId e) {
          return lanes.lane_of[static_cast<std::size_t>(
                     trace.event(e).chare)] *
                     lane_h +
                 opts.cell_h / 2;
        });
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace logstruct::vis
