#include "vis/cluster.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "vis/color.hpp"

namespace logstruct::vis {

namespace {

/// Cluster key: a flat integer sequence describing the chare's logical
/// behaviour at the requested granularity.
std::vector<std::int64_t> key_of(const trace::Trace& trace,
                                 const order::LogicalStructure& ls,
                                 trace::ChareId c, ClusterBy by) {
  std::vector<std::int64_t> key;
  key.push_back(trace.chare(c).runtime ? 1 : 0);
  const auto& seq = ls.chare_sequence[static_cast<std::size_t>(c)];
  if (by == ClusterBy::ExactSteps) {
    for (trace::EventId e : seq) {
      key.push_back(ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
      key.push_back(ls.local_step[static_cast<std::size_t>(e)]);
      key.push_back(trace.event(e).kind == trace::EventKind::Recv);
    }
    return key;
  }
  // StepEnvelope: per touched phase (in sequence order): phase id, event
  // count, first and last local steps.
  std::int32_t cur_phase = -1;
  std::int64_t count = 0, first = 0, last = 0;
  auto flush = [&] {
    if (cur_phase < 0) return;
    key.push_back(cur_phase);
    key.push_back(count);
    key.push_back(first);
    key.push_back(last);
  };
  for (trace::EventId e : seq) {
    std::int32_t ph = ls.phases.phase_of_event[static_cast<std::size_t>(e)];
    std::int32_t st = ls.local_step[static_cast<std::size_t>(e)];
    if (ph != cur_phase) {
      flush();
      cur_phase = ph;
      count = 0;
      first = st;
    }
    ++count;
    last = st;
  }
  flush();
  return key;
}

}  // namespace

std::vector<ChareCluster> cluster_chares(const trace::Trace& trace,
                                         const order::LogicalStructure& ls,
                                         ClusterBy by) {
  std::map<std::vector<std::int64_t>, ChareCluster> buckets;
  for (trace::ChareId c = 0; c < trace.num_chares(); ++c) {
    ChareCluster& cluster = buckets[key_of(trace, ls, c, by)];
    cluster.chares.push_back(c);
    cluster.runtime = trace.chare(c).runtime;
  }
  std::vector<ChareCluster> out;
  out.reserve(buckets.size());
  for (auto& [key, cluster] : buckets) out.push_back(std::move(cluster));
  std::sort(out.begin(), out.end(),
            [](const ChareCluster& a, const ChareCluster& b) {
              if (a.runtime != b.runtime) return b.runtime;
              return a.exemplar() < b.exemplar();
            });
  return out;
}

std::string render_clustered_ascii(const trace::Trace& trace,
                                   const order::LogicalStructure& ls,
                                   ClusterBy by, std::int32_t max_cols) {
  auto clusters = cluster_chares(trace, ls, by);
  std::int32_t cols = std::min(ls.max_step + 1, max_cols);
  auto squeeze = [&](std::int32_t col) {
    if (ls.max_step + 1 <= max_cols) return col;
    return static_cast<std::int32_t>(static_cast<std::int64_t>(col) * cols /
                                     (ls.max_step + 1));
  };

  std::ostringstream os;
  os << "clustered logical structure (" << clusters.size()
     << " classes for " << trace.num_chares() << " chares)\n";
  bool rt_rule = false;
  for (const ChareCluster& cluster : clusters) {
    if (cluster.runtime && !rt_rule) {
      os << std::string(30 + static_cast<std::size_t>(cols), '-') << '\n';
      rt_rule = true;
    }
    std::string row(static_cast<std::size_t>(cols), '.');
    for (trace::EventId e :
         ls.chare_sequence[static_cast<std::size_t>(cluster.exemplar())]) {
      row[static_cast<std::size_t>(squeeze(
          ls.global_step[static_cast<std::size_t>(e)]))] =
          categorical_glyph(
              ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    }
    std::ostringstream label;
    label << trace.chare(cluster.exemplar()).name << " x"
          << cluster.chares.size();
    std::string name = label.str().substr(0, 28);
    os << name << std::string(30 - name.size(), ' ') << row << '\n';
  }
  return os.str();
}

}  // namespace logstruct::vis
