#include "vis/ascii.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "vis/color.hpp"

namespace logstruct::vis {

namespace {

/// Row order: application chares by (array, index, id), runtime chares at
/// the bottom (paper's convention).
std::vector<trace::ChareId> row_order(const trace::Trace& trace) {
  std::vector<trace::ChareId> rows;
  for (trace::ChareId c = 0; c < trace.num_chares(); ++c) rows.push_back(c);
  std::stable_sort(rows.begin(), rows.end(),
                   [&](trace::ChareId a, trace::ChareId b) {
                     const auto& ca = trace.chare(a);
                     const auto& cb = trace.chare(b);
                     if (ca.runtime != cb.runtime) return cb.runtime;
                     if (ca.array != cb.array) return ca.array < cb.array;
                     if (ca.index != cb.index) return ca.index < cb.index;
                     return a < b;
                   });
  return rows;
}

std::string legend(const trace::Trace&,
                   const order::LogicalStructure& ls) {
  std::ostringstream os;
  os << "phases: ";
  std::int32_t shown = 0;
  for (std::int32_t p = 0; p < ls.num_phases() && shown < 20; ++p, ++shown) {
    os << categorical_glyph(p) << "=" << p
       << (ls.phases.runtime[static_cast<std::size_t>(p)] ? "(rt)" : "")
       << ' ';
  }
  if (ls.num_phases() > 20) os << "... (" << ls.num_phases() << " total)";
  os << '\n';
  return os.str();
}

std::string render_grid(const trace::Trace& trace,
                        const order::LogicalStructure& ls,
                        const AsciiOptions& opts,
                        const std::vector<std::int32_t>& col_of_event,
                        std::int32_t num_cols, const std::string& title) {
  std::int32_t cols = std::min(num_cols, opts.max_cols);
  auto squeeze = [&](std::int32_t col) {
    if (num_cols <= opts.max_cols) return col;
    return static_cast<std::int32_t>(
        static_cast<std::int64_t>(col) * cols / num_cols);
  };

  std::vector<trace::ChareId> rows = row_order(trace);
  std::vector<std::int32_t> row_of(static_cast<std::size_t>(
                                       trace.num_chares()),
                                   -1);
  for (std::size_t i = 0; i < rows.size(); ++i)
    row_of[static_cast<std::size_t>(rows[i])] = static_cast<std::int32_t>(i);

  std::vector<std::string> grid(
      rows.size(), std::string(static_cast<std::size_t>(cols), '.'));
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    std::int32_t col = squeeze(col_of_event[static_cast<std::size_t>(e)]);
    std::int32_t row = row_of[static_cast<std::size_t>(trace.event(e).chare)];
    char glyph = categorical_glyph(
        ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
        glyph;
  }

  std::size_t name_w = 0;
  for (trace::ChareId c : rows)
    name_w = std::max(name_w, trace.chare(c).name.size());
  name_w = std::min<std::size_t>(name_w, 22);

  std::ostringstream os;
  os << title << '\n';
  bool printed_rt_rule = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& info = trace.chare(rows[i]);
    if (info.runtime && !printed_rt_rule) {
      os << std::string(name_w + 2 + static_cast<std::size_t>(cols), '-')
         << '\n';
      printed_rt_rule = true;
    }
    std::string name = info.name.substr(0, name_w);
    os << name << std::string(name_w - name.size() + 2, ' ') << grid[i]
       << '\n';
  }
  if (opts.show_legend) os << legend(trace, ls);
  return os.str();
}

}  // namespace

std::string render_logical_ascii(const trace::Trace& trace,
                                 const order::LogicalStructure& ls,
                                 const AsciiOptions& opts) {
  std::vector<std::int32_t> col(ls.global_step.begin(),
                                ls.global_step.end());
  return render_grid(trace, ls, opts, col, ls.max_step + 1,
                     "logical structure (cols = global steps)");
}

std::string render_metric_ascii(const trace::Trace& trace,
                                const order::LogicalStructure& ls,
                                std::span<const double> values,
                                bool logical, const AsciiOptions& opts) {
  double vmax = 0;
  for (double v : values) vmax = std::max(vmax, v);

  std::int32_t num_cols = logical ? ls.max_step + 1 : opts.max_cols;
  std::int32_t cols = std::min(num_cols, opts.max_cols);
  trace::TimeNs end = std::max<trace::TimeNs>(trace.end_time(), 1);
  auto col_of = [&](trace::EventId e) {
    std::int32_t col =
        logical ? ls.global_step[static_cast<std::size_t>(e)]
                : static_cast<std::int32_t>(trace.event(e).time *
                                            (opts.max_cols - 1) / end);
    if (num_cols <= opts.max_cols) return col;
    return static_cast<std::int32_t>(static_cast<std::int64_t>(col) * cols /
                                     num_cols);
  };

  std::vector<trace::ChareId> rows = row_order(trace);
  std::vector<std::int32_t> row_of(
      static_cast<std::size_t>(trace.num_chares()), -1);
  for (std::size_t i = 0; i < rows.size(); ++i)
    row_of[static_cast<std::size_t>(rows[i])] = static_cast<std::int32_t>(i);

  std::vector<std::string> grid(
      rows.size(), std::string(static_cast<std::size_t>(cols), '.'));
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    double v = values[static_cast<std::size_t>(e)];
    char glyph = '0';
    if (v > 0 && vmax > 0) {
      int bucket = 1 + static_cast<int>(v / vmax * 8.0);
      glyph = static_cast<char>('0' + std::min(bucket, 9));
    }
    char& cell = grid[static_cast<std::size_t>(row_of[static_cast<
        std::size_t>(trace.event(e).chare)])][static_cast<std::size_t>(
        col_of(e))];
    if (glyph > cell || cell == '.') cell = glyph == '0' ? '0' : glyph;
  }

  std::size_t name_w = 0;
  for (trace::ChareId c : rows)
    name_w = std::max(name_w, trace.chare(c).name.size());
  name_w = std::min<std::size_t>(name_w, 22);

  std::ostringstream os;
  os << (logical ? "metric over logical steps" : "metric over physical time")
     << " (0 = zero, 9 = max)\n";
  bool rt_rule = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& info = trace.chare(rows[i]);
    if (info.runtime && !rt_rule) {
      os << std::string(name_w + 2 + static_cast<std::size_t>(cols), '-')
         << '\n';
      rt_rule = true;
    }
    std::string name = info.name.substr(0, name_w);
    os << name << std::string(name_w - name.size() + 2, ' ') << grid[i]
       << '\n';
  }
  return os.str();
}

std::string render_physical_ascii(const trace::Trace& trace,
                                  const order::LogicalStructure& ls,
                                  const AsciiOptions& opts) {
  trace::TimeNs end = std::max<trace::TimeNs>(trace.end_time(), 1);
  std::int32_t cols = opts.max_cols;
  std::vector<std::int32_t> col(static_cast<std::size_t>(trace.num_events()),
                                0);
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    col[static_cast<std::size_t>(e)] = static_cast<std::int32_t>(
        trace.event(e).time * (cols - 1) / end);
  }
  AsciiOptions local = opts;
  return render_grid(trace, ls, local, col, cols,
                     "physical time (cols = time bins)");
}

}  // namespace logstruct::vis
